"""Feature gate for the two-level replay scheduler and macro-chunk
coalescing.

``REPRO_SCHED=1`` (the default) enables two coordinated replay-engine
optimizations:

* the two-level event scheduler in :mod:`repro.events`: a
  same-timestamp FIFO run queue (channel rendezvous resumes through a
  deque append instead of a heap push/pop pair) in front of a calendar
  queue of per-timestamp buckets, plus a sole-runner fast-forward that
  advances ``now`` directly when the only runnable process yields
  ``Delay``; and
* analytic macro-chunk coalescing in :mod:`repro.runtime.fastsim`: an
  offload run whose process network is statically provable free of
  shared-port contention and cross-process cache-set interference is
  replayed with per-process widened memory-system batches and a
  closed-form marked-graph schedule instead of discrete events.

``REPRO_SCHED=0`` keeps the single tuple-heap reference engine and the
event-per-yield offload replay. Both settings produce bit-identical
results — timelines, traces and every timing/energy/traffic counter —
which is enforced by ``tests/runtime/test_sched_equiv.py`` and the
differential oracle (:mod:`repro.testing.oracle`).

The variable is consulted at every simulation entry (once per
``Simulator`` / offload run, never per event), so tests can flip it
in-process with ``monkeypatch.setenv``. The variable itself is declared
in :mod:`repro.envcfg`, the authoritative ``REPRO_*`` registry.
"""

from __future__ import annotations

from . import envcfg
from .envcfg import sched_path_enabled

ENV_VAR = envcfg.REPRO_SCHED.name

__all__ = ["ENV_VAR", "sched_path_enabled"]

"""DFG partitioning with the paper's iteration strategy (§V-A-3).

Accessor nodes are first grouped per memory object (one supernode per
object — "the compiler groups the accessors based on the underlying memory
object ... This ensures object-level memory access ordering"). Graph
partitioning is then iterated with an increasing partition count until
each partition holds at most one data structure (or the node count is
reached), and the best recorded solution — fewest objects per partition,
then lowest inter-partition communication cost — is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..dfg.graph import Dfg
from ..dfg.node import AccessNode
from ..errors import PartitionError
from .metis_like import partition_graph
from .problem import PartitionProblem


@dataclass
class DfgPartitioning:
    """A legal partitioning of one DFG."""

    dfg: Dfg
    #: DFG node id -> partition index (0..num_partitions-1, all non-empty)
    assignment: Dict[int, int]
    num_partitions: int
    cut_cost_bits: int
    #: partition index -> memory objects anchored there
    objects: Dict[int, Set[str]]

    @property
    def max_objects_per_partition(self) -> int:
        return max((len(s) for s in self.objects.values()), default=0)

    def nodes_of(self, part: int) -> List[int]:
        return [nid for nid, p in self.assignment.items() if p == part]

    def anchor_object(self, part: int) -> Optional[str]:
        """The single memory object of a partition (None for compute-only)."""
        objs = self.objects.get(part, set())
        if len(objs) > 1:
            raise PartitionError(
                f"partition {part} anchors {len(objs)} objects: {objs}"
            )
        return next(iter(objs)) if objs else None

    def safe_anchor(self, part: int) -> Optional[str]:
        """Like :meth:`anchor_object`, but None for multi-object partitions
        (monolithic configurations centralize several objects on purpose)."""
        objs = self.objects.get(part, set())
        return next(iter(objs)) if len(objs) == 1 else None

    def cross_edges(self):
        return self.dfg.cut_edges(self.assignment)


def partition_dfg(dfg: Dfg, max_partitions: Optional[int] = None,
                  seed: int = 17) -> DfgPartitioning:
    """Partition a DFG per the paper's iterated-Metis strategy."""
    if not dfg.nodes:
        raise PartitionError("cannot partition an empty DFG")
    grouping = _ObjectGrouping(dfg)
    kmax = max_partitions or grouping.num_groups
    kmax = max(1, min(kmax, grouping.num_groups))

    solutions: List[Tuple[int, int, int, List[int]]] = []
    for k in range(1, kmax + 1):
        fixed = grouping.fixed_for(k)
        problem = PartitionProblem(
            num_nodes=grouping.num_groups,
            edges=grouping.edges,
            node_weights=grouping.weights,
            fixed=fixed,
        )
        # communication cost dominates for offload partitioning; hardware
        # capacity is enforced later (CGRA II / microcode size), so the
        # balance slack is nearly unconstrained
        raw = partition_graph(problem, k, epsilon=8.0, seed=seed)
        assignment = grouping.expand(raw)
        objs = dfg.partition_objects(assignment)
        max_objs = max((len(s) for s in objs.values()), default=0)
        cut = dfg.cut_cost_bits(assignment)
        solutions.append((max_objs, cut, k, assignment))
        if max_objs <= 1:
            break

    max_objs, cut, k, assignment = min(
        solutions, key=lambda s: (s[0], s[1], s[2])
    )
    assignment, num_parts = _renumber(assignment)
    return DfgPartitioning(
        dfg=dfg,
        assignment=assignment,
        num_partitions=num_parts,
        cut_cost_bits=dfg.cut_cost_bits(assignment),
        objects=dfg.partition_objects(assignment),
    )


class _ObjectGrouping:
    """Contract all access nodes of one object into a supernode."""

    def __init__(self, dfg: Dfg):
        self.dfg = dfg
        self.group_of: Dict[int, int] = {}
        self.object_groups: Dict[str, int] = {}
        next_group = 0
        for node in dfg.nodes.values():
            if isinstance(node, AccessNode):
                if node.obj not in self.object_groups:
                    self.object_groups[node.obj] = next_group
                    next_group += 1
                self.group_of[node.id] = self.object_groups[node.obj]
        for node in dfg.nodes.values():
            if node.id not in self.group_of:
                self.group_of[node.id] = next_group
                next_group += 1
        self.num_groups = next_group
        self.weights = [0] * next_group
        for nid, group in self.group_of.items():
            node = dfg.nodes[nid]
            cost = 1 + getattr(node, "addr_ops", 0)
            self.weights[group] += cost
        self.edges = [
            (self.group_of[e.src], self.group_of[e.dst], max(e.width_bits, 1))
            for e in dfg.edges
            if self.group_of[e.src] != self.group_of[e.dst]
        ]

    def fixed_for(self, k: int) -> Dict[int, int]:
        """Pin object supernodes to distinct partitions when k allows."""
        if k < len(self.object_groups):
            return {}
        return {
            group: idx
            for idx, group in enumerate(sorted(self.object_groups.values()))
        }

    def expand(self, group_assignment: List[int]) -> Dict[int, int]:
        return {
            nid: group_assignment[group]
            for nid, group in self.group_of.items()
        }


def _renumber(assignment: Dict[int, int]) -> Tuple[Dict[int, int], int]:
    """Drop empty partitions, keeping relative order."""
    used = sorted(set(assignment.values()))
    remap = {old: new for new, old in enumerate(used)}
    return {nid: remap[p] for nid, p in assignment.items()}, len(used)

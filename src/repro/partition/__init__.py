"""Graph partitioning for offload extraction (paper §V-A-3).

:mod:`metis_like` is a from-scratch multilevel k-way partitioner in the
same algorithm family as Metis [38]: heavy-edge-matching coarsening, seeded
greedy initial partitioning, and Fiduccia–Mattheyses boundary refinement.

:mod:`iterate` wraps it with the paper's strategy: accessors are grouped
per memory object, the partition count is iterated upward, and the
solution with the fewest data structures per partition (then the lowest
communication cost) wins.
"""

from .problem import PartitionProblem
from .metis_like import partition_graph
from .iterate import DfgPartitioning, partition_dfg

__all__ = [
    "PartitionProblem",
    "partition_graph",
    "DfgPartitioning",
    "partition_dfg",
]

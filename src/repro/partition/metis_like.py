"""Multilevel k-way graph partitioner (Metis-family algorithm).

Three phases, exactly as in [38]:

1. **Coarsening** — heavy-edge matching merges strongly connected node
   pairs until the graph is small; fixed nodes with different pins never
   merge.
2. **Initial partitioning** — fixed nodes seed their partitions; the rest
   are grown greedily onto the partition where they have the most edge
   affinity, subject to a balance bound.
3. **Uncoarsening + refinement** — the assignment is projected back level
   by level, running Fiduccia–Mattheyses-style boundary passes (best-gain
   single-node moves with balance constraints) at each level.

DFGs here have tens of nodes, so clarity wins over asymptotic tricks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import PartitionError
from .problem import PartitionProblem


def partition_graph(problem: PartitionProblem, k: int,
                    epsilon: float = 0.7, seed: int = 17,
                    refine_passes: int = 6) -> List[int]:
    """Partition into ``k`` parts; returns node -> partition assignment.

    ``epsilon`` is the balance slack: each partition's node weight may not
    exceed ``(1 + epsilon) * total / k`` (fixed seeds exempt).
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if any(p >= k for p in problem.fixed.values()):
        raise PartitionError("fixed partition id >= k")
    if k == 1:
        return [0] * problem.num_nodes

    rng = random.Random(seed)
    levels = _coarsen(problem, target=max(2 * k, 10))
    coarsest = levels[-1][0]
    assignment = _initial_partition(coarsest, k, epsilon, rng)
    assignment = _refine(coarsest, assignment, k, epsilon, refine_passes)
    # project back through the levels, refining at each
    for idx in range(len(levels) - 1, 0, -1):
        _, mapping = levels[idx]
        finer_problem = levels[idx - 1][0]
        projected = [assignment[mapping[node]]
                     for node in range(finer_problem.num_nodes)]
        assignment = _refine(finer_problem, projected, k, epsilon,
                             refine_passes)
    return assignment


# ----------------------------------------------------------------------
# phase 1: coarsening
# ----------------------------------------------------------------------
def _coarsen(problem: PartitionProblem, target: int
             ) -> List[Tuple[PartitionProblem, Optional[List[int]]]]:
    """Returns [(level0, None), (level1, map0->1), (level2, map1->2), ...]."""
    levels: List[Tuple[PartitionProblem, Optional[List[int]]]] = [
        (problem, None)
    ]
    current = problem
    while current.num_nodes > target:
        mapping = _heavy_edge_matching(current)
        coarse_n = max(mapping) + 1
        if coarse_n >= current.num_nodes:  # no progress
            break
        coarse = _contract(current, mapping, coarse_n)
        levels.append((coarse, mapping))
        current = coarse
    # restructure: level i stores the map from level i-1's nodes
    return levels


def _heavy_edge_matching(problem: PartitionProblem) -> List[int]:
    """Match each node with its heaviest unmatched neighbor."""
    adj = problem.adjacency()
    order = sorted(
        range(problem.num_nodes),
        key=lambda n: -sum(w for _, w in adj.get(n, ())),
    )
    match = [-1] * problem.num_nodes
    for node in order:
        if match[node] != -1:
            continue
        best, best_w = -1, -1
        for nbr, w in sorted(adj.get(node, ()), key=lambda t: (-t[1], t[0])):
            if match[nbr] != -1 or nbr == node:
                continue
            if not _mergeable(problem, node, nbr):
                continue
            if w > best_w:
                best, best_w = nbr, w
        if best >= 0:
            match[node] = best
            match[best] = node
        else:
            match[node] = node
    mapping = [-1] * problem.num_nodes
    next_id = 0
    for node in range(problem.num_nodes):
        if mapping[node] != -1:
            continue
        mapping[node] = next_id
        partner = match[node]
        if partner != node and partner != -1 and mapping[partner] == -1:
            mapping[partner] = next_id
        next_id += 1
    return mapping


def _mergeable(problem: PartitionProblem, a: int, b: int) -> bool:
    pa, pb = problem.fixed.get(a), problem.fixed.get(b)
    return pa is None or pb is None or pa == pb


def _contract(problem: PartitionProblem, mapping: List[int],
              coarse_n: int) -> PartitionProblem:
    weights = [0] * coarse_n
    for node, coarse in enumerate(mapping):
        weights[coarse] += problem.node_weights[node]
    edges: Dict[Tuple[int, int], int] = {}
    for u, v, w in problem.edges:
        cu, cv = mapping[u], mapping[v]
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        edges[key] = edges.get(key, 0) + w
    fixed: Dict[int, int] = {}
    for node, part in problem.fixed.items():
        coarse = mapping[node]
        if coarse in fixed and fixed[coarse] != part:
            raise PartitionError("coarsening merged conflicting fixed nodes")
        fixed[coarse] = part
    return PartitionProblem(
        num_nodes=coarse_n,
        edges=[(u, v, w) for (u, v), w in edges.items()],
        node_weights=weights,
        fixed=fixed,
    )


# ----------------------------------------------------------------------
# phase 2: initial partitioning
# ----------------------------------------------------------------------
def _initial_partition(problem: PartitionProblem, k: int, epsilon: float,
                       rng: random.Random) -> List[int]:
    limit = _balance_limit(problem, k, epsilon)
    assignment = [-1] * problem.num_nodes
    loads = [0] * k
    for node, part in problem.fixed.items():
        assignment[node] = part
        loads[part] += problem.node_weights[node]
    adj = problem.adjacency()
    unassigned = [n for n in range(problem.num_nodes) if assignment[n] == -1]
    # seed each empty partition with a node far from everything assigned,
    # so greedy growth cannot pile the whole graph onto partition 0
    for part in range(k):
        if loads[part] > 0 or not unassigned:
            continue

        def seed_score(n: int) -> tuple:
            attached = sum(
                w for nbr, w in adj.get(n, ()) if assignment[nbr] != -1
            )
            degree = sum(w for _, w in adj.get(n, ()))
            return (attached, -degree, n)

        node = min(unassigned, key=seed_score)
        assignment[node] = part
        loads[part] += problem.node_weights[node]
        unassigned.remove(node)
    # repeatedly pick the unassigned node with the strongest affinity
    while unassigned:
        best_node, best_part, best_gain = None, None, -1
        for node in unassigned:
            affinity = [0] * k
            for nbr, w in adj.get(node, ()):
                if assignment[nbr] != -1:
                    affinity[assignment[nbr]] += w
            order = sorted(range(k), key=lambda p: (-affinity[p], loads[p]))
            for part in order:
                if loads[part] + problem.node_weights[node] <= limit:
                    if affinity[part] > best_gain:
                        best_node, best_part = node, part
                        best_gain = affinity[part]
                    break
        if best_node is None:
            # everything is over-limit: place on the lightest partition
            best_node = unassigned[0]
            best_part = min(range(k), key=lambda p: loads[p])
        assignment[best_node] = best_part
        loads[best_part] += problem.node_weights[best_node]
        unassigned.remove(best_node)
    return assignment


def _balance_limit(problem: PartitionProblem, k: int,
                   epsilon: float) -> float:
    return (1.0 + epsilon) * problem.total_node_weight() / k


# ----------------------------------------------------------------------
# phase 3: FM-style refinement
# ----------------------------------------------------------------------
def _refine(problem: PartitionProblem, assignment: List[int], k: int,
            epsilon: float, passes: int) -> List[int]:
    limit = _balance_limit(problem, k, epsilon)
    adj = problem.adjacency()
    assignment = list(assignment)
    loads = problem.partition_weights(assignment, k)
    counts = [0] * k
    for part in assignment:
        counts[part] += 1
    for _ in range(passes):
        improved = False
        for node in range(problem.num_nodes):
            if node in problem.fixed:
                continue
            here = assignment[node]
            if counts[here] <= 1:
                continue  # never empty a partition
            affinity = [0] * k
            for nbr, w in adj.get(node, ()):
                affinity[assignment[nbr]] += w
            best_part, best_gain = here, 0
            for part in range(k):
                if part == here:
                    continue
                if loads[part] + problem.node_weights[node] > limit:
                    continue
                gain = affinity[part] - affinity[here]
                if gain > best_gain:
                    best_part, best_gain = part, gain
            if best_part != here:
                assignment[node] = best_part
                loads[here] -= problem.node_weights[node]
                loads[best_part] += problem.node_weights[node]
                counts[here] -= 1
                counts[best_part] += 1
                improved = True
        if not improved:
            break
    return assignment

"""Weighted-graph partitioning problem representation."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PartitionError


@dataclass
class PartitionProblem:
    """An undirected weighted graph plus optional pre-assigned nodes.

    Edges are (u, v, weight); parallel edges are merged by weight
    addition. ``fixed`` pins nodes to partitions (used to anchor each
    memory object's accessor group to its own partition).
    """

    num_nodes: int
    edges: Sequence[Tuple[int, int, int]] = ()
    node_weights: Optional[Sequence[int]] = None
    fixed: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise PartitionError(f"num_nodes must be >= 1: {self.num_nodes}")
        if self.node_weights is None:
            self.node_weights = [1] * self.num_nodes
        if len(self.node_weights) != self.num_nodes:
            raise PartitionError("node_weights length mismatch")
        merged: Dict[Tuple[int, int], int] = defaultdict(int)
        for u, v, w in self.edges:
            self._check_node(u)
            self._check_node(v)
            if u == v:
                continue  # self loops never affect cuts
            if w < 0:
                raise PartitionError(f"negative edge weight on ({u},{v})")
            key = (min(u, v), max(u, v))
            merged[key] += w
        self.edges = [(u, v, w) for (u, v), w in sorted(merged.items())]
        for node, part in self.fixed.items():
            self._check_node(node)
            if part < 0:
                raise PartitionError(f"negative partition for fixed node {node}")
        self._adj: Optional[Dict[int, List[Tuple[int, int]]]] = None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise PartitionError(f"node {node} out of range")

    def adjacency(self) -> Dict[int, List[Tuple[int, int]]]:
        if self._adj is None:
            adj: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
            for u, v, w in self.edges:
                adj[u].append((v, w))
                adj[v].append((u, w))
            self._adj = dict(adj)
        return self._adj

    def total_node_weight(self) -> int:
        return sum(self.node_weights)

    def cut_cost(self, assignment: Sequence[int]) -> int:
        if len(assignment) != self.num_nodes:
            raise PartitionError("assignment length mismatch")
        return sum(
            w for u, v, w in self.edges if assignment[u] != assignment[v]
        )

    def partition_weights(self, assignment: Sequence[int],
                          k: int) -> List[int]:
        weights = [0] * k
        for node, part in enumerate(assignment):
            if not (0 <= part < k):
                raise PartitionError(
                    f"node {node} assigned to invalid partition {part}"
                )
            weights[part] += self.node_weights[node]
        return weights

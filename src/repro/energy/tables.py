"""Per-event dynamic energy table at 32 nm.

Each entry is the energy in picojoules charged for one occurrence of an
event. Magnitudes follow the published 32/45 nm characterizations used by
McPAT [51], Cacti [52], and the near-data-processing literature the paper
builds on:

* An out-of-order pipeline spends far more energy on instruction overhead
  (fetch/decode/rename/ROB/wakeup/commit) than on the ALU operation itself
  (~45 pJ vs ~1 pJ) — the classic "overhead wall" motivating accelerators.
* SRAM access energy grows with array size: ~20 pJ (32 KB L1) → ~50 pJ
  (128 KB L2) → ~100 pJ (256 KB L3 slice); a small 4 KB access-unit
  buffer is ~3 pJ — the reason near-data buffering wins.
* Off-chip LPDDR access costs ~20 pJ/byte → ~1.3 nJ per 64 B line.
* On-chip interconnect costs ~1 pJ per byte per hop plus router overhead.

The :class:`EnergyTable` dataclass itself lives in :mod:`repro.params`
(it is part of a machine description: every :class:`~repro.params.
MachineParams` carries its own ``energy`` charge sheet, and machine
documents may override individual entries). This module re-exports it
for backward compatibility and keeps the default-table constructor.
"""

from __future__ import annotations

from ..params import EnergyTable

__all__ = ["EnergyTable", "default_energy_table"]


def default_energy_table() -> EnergyTable:
    """The calibrated 32 nm table used for all paper reproductions."""
    return EnergyTable()

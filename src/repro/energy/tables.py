"""Per-event dynamic energy table at 32 nm.

Each entry is the energy in picojoules charged for one occurrence of an
event. Magnitudes follow the published 32/45 nm characterizations used by
McPAT [51], Cacti [52], and the near-data-processing literature the paper
builds on:

* An out-of-order pipeline spends far more energy on instruction overhead
  (fetch/decode/rename/ROB/wakeup/commit) than on the ALU operation itself
  (~45 pJ vs ~1 pJ) — the classic "overhead wall" motivating accelerators.
* SRAM access energy grows with array size: ~20 pJ (32 KB L1) → ~50 pJ
  (128 KB L2) → ~100 pJ (256 KB L3 slice); a small 4 KB access-unit
  buffer is ~3 pJ — the reason near-data buffering wins.
* Off-chip LPDDR access costs ~20 pJ/byte → ~1.3 nJ per 64 B line.
* On-chip interconnect costs ~1 pJ per byte per hop plus router overhead.

The table is a frozen dataclass so experiments can tweak entries with
``dataclasses.replace`` for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyTable:
    """Dynamic energy per event, in picojoules (pJ)."""

    # --- host OoO core -------------------------------------------------
    #: per-instruction pipeline overhead (fetch/decode/rename/ROB/commit)
    ooo_inst_overhead: float = 45.0
    #: per-instruction overhead of a lightweight single-issue in-order core
    io_inst_overhead: float = 6.0
    #: per-op energy of a CGRA PE (op + local operand routing, no fetch)
    cgra_op: float = 2.0
    #: CGRA static-configuration load, per 64-bit config word
    cgra_config_word: float = 4.0

    # --- functional units (charged on top of pipeline overheads) -------
    int_op: float = 0.9
    float_op: float = 3.5
    complex_op: float = 14.0  # div / sqrt / exp-class
    reg_access: float = 1.0

    # --- memory hierarchy (per access of one line / element) -----------
    l1_access: float = 20.0
    l2_access: float = 50.0
    l3_access: float = 100.0
    #: private accelerator cache in Mono-CA (8 KB)
    private_cache_access: float = 8.0
    #: DRAM access per 64-byte line
    dram_line_access: float = 1300.0
    #: access-unit SRAM buffer, per element (<= 8 B) access
    buffer_access: float = 3.0
    #: ACP lookup (1 KB, 1-way)
    acp_access: float = 2.0
    #: TLB/translation-block lookup
    translation_lookup: float = 1.5

    # --- interconnect ---------------------------------------------------
    #: per byte per mesh hop (link traversal)
    noc_byte_hop: float = 1.0
    #: per flit per router traversal
    noc_router_flit: float = 0.6
    #: MMIO register write/read at an accelerator (config/ctrl intrinsics)
    mmio_access: float = 2.5

    # --- miscellaneous ---------------------------------------------------
    #: stride-FSM address generation step
    fsm_step: float = 0.4
    #: hardware-scheduler buffer-allocation-table lookup/update
    sched_table_access: float = 1.2


def default_energy_table() -> EnergyTable:
    """The calibrated 32 nm table used for all paper reproductions."""
    return EnergyTable()

"""Dynamic-energy and area models (McPAT/Cacti substitute, 32 nm).

The paper models dynamic energy for processor, caches, interconnect,
accelerators, access buffers and memory using McPAT and Cacti at 32 nm.
We replace those tools with per-event energy tables whose magnitudes come
from the same published sources, and an area table reproducing the
Section VI-E overhead analysis.
"""

from .tables import EnergyTable, default_energy_table
from .model import EnergyLedger
from .area import AreaModel, default_area_model

__all__ = [
    "EnergyTable",
    "default_energy_table",
    "EnergyLedger",
    "AreaModel",
    "default_area_model",
]

"""Area model reproducing the Section VI-E overhead analysis.

The paper (via McPAT, Yosys + FreePDK45 scaled to 32 nm [58]) reports:

* one lightweight in-order accelerator core = **1.9 %** of an L3 cluster's
  area (0.3 % of the whole chip), and
* one 5x5 heterogeneous CGRA tile + buffers + ACP = **2.9 %** per cluster
  (0.48 % of the chip).

We reproduce those percentages from component areas (mm^2 at 32 nm) of
McPAT/Cacti magnitude. An L3 cluster here is 256 KB of SRAM plus bank
control and a router share; the chip additionally has the OoO core, its
L1/L2, and uncore.
"""

from __future__ import annotations

from ..params import AreaTable, CgraParams, MachineParams

__all__ = ["AreaTable", "AreaModel", "default_area_model"]


class AreaModel:
    """Computes accelerator area overheads per cluster and per chip.

    ``table`` defaults to the machine's own ``area`` charge sheet
    (document-sourced; see :mod:`repro.machine`)."""

    def __init__(self, machine: MachineParams, table: AreaTable | None = None):
        self.machine = machine
        self.table = table or machine.area

    # -- aggregates ------------------------------------------------------
    def chip_area(self) -> float:
        """Baseline chip area (no accelerators), mm^2."""
        t = self.table
        return (
            t.ooo_core + t.l2 + t.uncore_misc
            + self.machine.l3_clusters * t.l3_cluster
        )

    def access_unit_area(self) -> float:
        t = self.table
        return t.access_buffer_4kb + t.acp_1kb + t.stride_fsm

    def io_overhead_per_cluster(self) -> float:
        """IO-core accelerator area as a fraction of one L3 cluster."""
        area = self.table.io_accel_core
        return area / self.table.l3_cluster

    def cgra_area(self, cgra: CgraParams | None = None) -> float:
        """Area of one heterogeneous CGRA fabric, mm^2."""
        c = cgra or self.machine.cgra
        t = self.table
        return (
            c.int_alus * t.cgra_pe_int
            + c.float_alus * t.cgra_pe_float
            + c.complex_alus * t.cgra_pe_complex
            + c.num_pes * t.cgra_network_per_pe
        )

    def cgra_overhead_per_cluster(self, cgra: CgraParams | None = None,
                                  with_access_unit: bool = True) -> float:
        """CGRA (+ buffers + ACP) area as a fraction of one L3 cluster."""
        area = self.cgra_area(cgra)
        if with_access_unit:
            area += self.access_unit_area()
        return area / self.table.l3_cluster

    def chip_overhead(self, per_cluster_area: float) -> float:
        """Fraction of the whole chip for one unit replicated per cluster."""
        total = per_cluster_area * self.machine.l3_clusters
        return total / (self.chip_area() + total)

    # -- headline numbers (Section VI-E) ----------------------------------
    def io_report(self) -> dict:
        per_cluster = self.io_overhead_per_cluster()
        return {
            "per_cluster_pct": 100.0 * per_cluster,
            "chip_pct": 100.0 * self.chip_overhead(self.table.io_accel_core),
        }

    def cgra_report(self) -> dict:
        per_cluster = self.cgra_overhead_per_cluster()
        unit_area = self.cgra_area() + self.access_unit_area()
        return {
            "per_cluster_pct": 100.0 * per_cluster,
            "chip_pct": 100.0 * self.chip_overhead(unit_area),
        }


def default_area_model(machine: MachineParams | None = None) -> AreaModel:
    from ..params import default_machine

    return AreaModel(machine or default_machine())

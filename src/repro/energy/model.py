"""Energy accounting ledger.

Every simulated component charges events into a shared
:class:`EnergyLedger`. The ledger keeps (component, event) counts and
converts them to picojoules through an :class:`EnergyTable`, giving both a
total and a per-component breakdown for the energy-efficiency figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple

from .tables import EnergyTable, default_energy_table

#: canonical component names used in breakdowns
COMPONENTS = (
    "core", "l1", "l2", "l3", "dram", "noc",
    "accel", "access_unit", "scheduler", "host_iface",
)


class EnergyLedger:
    """Accumulates event counts and converts them to energy.

    ``charge(component, event, count)`` looks ``event`` up as an attribute
    of the energy table; unknown events raise ``AttributeError`` eagerly so
    a typo cannot silently drop energy.
    """

    def __init__(self, table: EnergyTable | None = None):
        self.table = table or default_energy_table()
        self._counts: Dict[Tuple[str, str], float] = defaultdict(float)

    def charge(self, component: str, event: str, count: float = 1.0) -> None:
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        getattr(self.table, event)  # validate event name eagerly
        self._counts[(component, event)] += count

    def count(self, component: str, event: str) -> float:
        return self._counts.get((component, event), 0.0)

    def counts(self) -> Mapping[Tuple[str, str], float]:
        return dict(self._counts)

    # Summaries iterate the count dict in *sorted key order*: dict
    # insertion order depends on which code path charged a (component,
    # event) pair first, and the batched replay paths (REPRO_FAST=1)
    # charge pooled counts in a different order than the scalar reference.
    # The per-pair counts are identical exact integers either way; a
    # deterministic summation order makes the float totals bit-identical
    # too.
    def total_pj(self) -> float:
        return sum(
            getattr(self.table, event) * n
            for (_, event), n in sorted(self._counts.items())
        )

    def total_nj(self) -> float:
        return self.total_pj() / 1000.0

    def by_component(self) -> Dict[str, float]:
        """Energy in pJ per component."""
        out: Dict[str, float] = defaultdict(float)
        for (component, event), n in sorted(self._counts.items()):
            out[component] += getattr(self.table, event) * n
        return dict(out)

    def by_event(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for (_, event), n in sorted(self._counts.items()):
            out[event] += getattr(self.table, event) * n
        return dict(out)

    def merge(self, others: Iterable["EnergyLedger"]) -> None:
        """Fold other ledgers (e.g. per-thread) into this one."""
        for other in others:
            for key, n in other._counts.items():
                self._counts[key] += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EnergyLedger total={self.total_nj():.2f} nJ>"

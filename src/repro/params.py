"""Simulated machine parameters (paper Table III).

All structural and timing parameters of the simulated system live here as
frozen dataclasses, so a configuration is an immutable value that can be
copied with :func:`dataclasses.replace` for sensitivity sweeps.

Paper reference (Table III):

* OoO core: 2 GHz, 2x4 decode/issue, x86, 5-way Ice Lake-like.
* L1 D/I: 8-way 32 KB, 8 MSHRs, latency 2.
* L2: 128 KB 16-way, 16 MSHRs, latency 4, stride prefetcher.
* L3: 2 MB static NUCA (256 KB per cluster), 8 clusters (4 banks each) on a
  mesh NoC, 16-way, 64 MSHRs, latency 10.
* Memory: LPDDR 2 GB.
* Accelerators: CGRA @ 1 GHz or 1-issue in-order @ 2 GHz, 4 KB buffer per
  L3 cluster, ACP 1-way 1 KB.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Callable, Dict, Mapping, Tuple

from .errors import ConfigError

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int
    mshrs: int
    line_bytes: int = CACHE_LINE_BYTES
    writeback: bool = True

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )


@dataclass(frozen=True)
class NocParams:
    """Mesh NoC parameters.

    Nodes are numbered row-major over an arbitrary ``mesh_cols x
    mesh_rows`` rectangle. The host tile attaches at ``host_node`` (it
    must be co-located with an L3 cluster, i.e. ``host_node <
    l3_clusters``); the memory controller attaches at ``mc_node`` (any
    mesh node). Table III: 8 clusters on a 4x2 mesh, host at node 0,
    memory controller at node 3. Link width is in bytes per flit.
    """

    mesh_cols: int = 4
    mesh_rows: int = 2
    hop_latency_cycles: int = 2
    flit_bytes: int = 16
    credits_per_link: int = 8
    #: mesh node where the host core (and its L1/L2) attaches
    host_node: int = 0
    #: mesh node where the memory controller attaches; ``-1`` resolves
    #: to the east end of the top row (node 3 on the default 4x2 mesh)
    mc_node: int = -1

    @property
    def num_nodes(self) -> int:
        return self.mesh_cols * self.mesh_rows

    def __post_init__(self) -> None:
        if self.mesh_cols < 1 or self.mesh_rows < 1:
            raise ValueError(
                f"mesh must be at least 1x1: "
                f"{self.mesh_cols}x{self.mesh_rows}"
            )
        if self.flit_bytes < 1:
            raise ValueError(f"flit_bytes must be positive: {self.flit_bytes}")
        if self.mc_node == -1:
            object.__setattr__(self, "mc_node", self.mesh_cols - 1)
        n = self.num_nodes
        for label, node in (("host_node", self.host_node),
                            ("mc_node", self.mc_node)):
            if not 0 <= node < n:
                raise ValueError(
                    f"{label} {node} outside the "
                    f"{self.mesh_cols}x{self.mesh_rows} mesh ({n} nodes)"
                )


@dataclass(frozen=True)
class DramParams:
    """LPDDR main-memory model."""

    size_bytes: int = 2 * 1024**3
    latency_cycles: int = 120
    bandwidth_bytes_per_cycle: float = 12.8  # ~25.6 GB/s at 2 GHz


@dataclass(frozen=True)
class CoreParams:
    """Host out-of-order core (5-way Ice Lake-like in the paper)."""

    freq_ghz: float = 2.0
    issue_width: int = 5
    rob_entries: int = 224
    mem_level_parallelism: int = 6


@dataclass(frozen=True)
class InOrderParams:
    """Lightweight single-issue in-order accelerator core."""

    freq_ghz: float = 2.0
    issue_width: int = 1
    mem_level_parallelism: int = 1
    sw_prefetch: bool = False


@dataclass(frozen=True)
class CgraParams:
    """Statically-mapped heterogeneous CGRA fabric (per L3 cluster).

    The paper provisions a 5x5 tile per L3 cluster for Dist-DA-F (four
    float, four complex, fifteen integer ALUs) and an 8x8 fabric for
    Mono-DA-F.
    """

    freq_ghz: float = 1.0
    rows: int = 5
    cols: int = 5
    int_alus: int = 15
    float_alus: int = 4
    complex_alus: int = 4

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class AccessUnitParams:
    """Per-cluster access unit: local SRAM buffers + stride FSM + ACP."""

    buffer_bytes: int = 4096
    acp_ways: int = 1
    acp_bytes: int = 1024
    fill_burst_elems: int = 8
    max_buffers: int = 16


@dataclass(frozen=True)
class EnergyTable:
    """Dynamic energy per event, in picojoules (pJ) at 32 nm.

    Magnitudes follow the published 32/45 nm characterizations used by
    McPAT [51], Cacti [52], and the near-data-processing literature (see
    :mod:`repro.energy.tables`). Part of :class:`MachineParams` so a
    machine-description document sources per-access energies alongside
    the structural parameters; experiments tweak entries with
    ``dataclasses.replace`` for sensitivity studies.
    """

    # --- host OoO core -------------------------------------------------
    #: per-instruction pipeline overhead (fetch/decode/rename/ROB/commit)
    ooo_inst_overhead: float = 45.0
    #: per-instruction overhead of a lightweight single-issue in-order core
    io_inst_overhead: float = 6.0
    #: per-op energy of a CGRA PE (op + local operand routing, no fetch)
    cgra_op: float = 2.0
    #: CGRA static-configuration load, per 64-bit config word
    cgra_config_word: float = 4.0

    # --- functional units (charged on top of pipeline overheads) -------
    int_op: float = 0.9
    float_op: float = 3.5
    complex_op: float = 14.0  # div / sqrt / exp-class
    reg_access: float = 1.0

    # --- memory hierarchy (per access of one line / element) -----------
    l1_access: float = 20.0
    l2_access: float = 50.0
    l3_access: float = 100.0
    #: private accelerator cache in Mono-CA (8 KB)
    private_cache_access: float = 8.0
    #: DRAM access per 64-byte line
    dram_line_access: float = 1300.0
    #: access-unit SRAM buffer, per element (<= 8 B) access
    buffer_access: float = 3.0
    #: ACP lookup (1 KB, 1-way)
    acp_access: float = 2.0
    #: TLB/translation-block lookup
    translation_lookup: float = 1.5

    # --- interconnect ---------------------------------------------------
    #: per byte per mesh hop (link traversal)
    noc_byte_hop: float = 1.0
    #: per flit per router traversal
    noc_router_flit: float = 0.6
    #: MMIO register write/read at an accelerator (config/ctrl intrinsics)
    mmio_access: float = 2.5

    # --- miscellaneous ---------------------------------------------------
    #: stride-FSM address generation step
    fsm_step: float = 0.4
    #: hardware-scheduler buffer-allocation-table lookup/update
    sched_table_access: float = 1.2


@dataclass(frozen=True)
class AreaTable:
    """Component areas in mm^2 at 32 nm (paper §VI-E overhead analysis).

    Part of :class:`MachineParams` so a machine-description document
    sources component areas; :class:`repro.energy.area.AreaModel`
    computes the per-cluster / per-chip overhead percentages from it.
    """

    l3_cluster: float = 2.10          # 256 KB SRAM + 4 bank ctl + router
    ooo_core: float = 12.5            # 5-way OoO + private L1 (McPAT-class)
    l2: float = 1.6                   # 128 KB + control
    uncore_misc: float = 73.0         # memory ctl, IO, SoC uncore, spare
    io_accel_core: float = 0.040      # 1-issue IO core, 2 complex + 2 FP ALU
    cgra_pe_int: float = 0.0013
    cgra_pe_float: float = 0.0030
    cgra_pe_complex: float = 0.0036
    cgra_network_per_pe: float = 0.0002
    access_buffer_4kb: float = 0.0060
    acp_1kb: float = 0.0025
    stride_fsm: float = 0.0012


@dataclass(frozen=True)
class MachineParams:
    """Complete parameter set for one simulated machine (Table III)."""

    core: CoreParams = field(default_factory=CoreParams)
    l1: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=32 * 1024, ways=8, latency_cycles=2, mshrs=8
        )
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=128 * 1024, ways=16, latency_cycles=4, mshrs=16
        )
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=2 * 1024 * 1024, ways=16, latency_cycles=10, mshrs=64
        )
    )
    l3_clusters: int = 8
    l3_banks_per_cluster: int = 4
    l2_stride_prefetcher: bool = True
    noc: NocParams = field(default_factory=NocParams)
    dram: DramParams = field(default_factory=DramParams)
    inorder: InOrderParams = field(default_factory=InOrderParams)
    cgra: CgraParams = field(default_factory=CgraParams)
    access_unit: AccessUnitParams = field(default_factory=AccessUnitParams)
    #: Mono-CA's private cache on the L3 bus (8 KB in the paper)
    mono_private_bytes: int = 8 * 1024
    #: latency of a near-data access straight into a local L3 bank; the
    #: Table III "latency 10" includes the host-side slice controller and
    #: queueing that an access unit sitting at the bank does not pay
    l3_bank_latency: int = 4
    #: per-event dynamic energies (document-sourced; defaults = the
    #: calibrated 32 nm table)
    energy: EnergyTable = field(default_factory=EnergyTable)
    #: component areas (document-sourced; defaults = the 32 nm table)
    area: AreaTable = field(default_factory=AreaTable)

    def __post_init__(self) -> None:
        problems = []
        if self.l3_clusters < 1:
            problems.append(f"l3_clusters must be >= 1: {self.l3_clusters}")
        if self.l3_banks_per_cluster < 1:
            problems.append(
                f"l3_banks_per_cluster must be >= 1: "
                f"{self.l3_banks_per_cluster}"
            )
        if self.l3_clusters >= 1:
            if self.l3.size_bytes % self.l3_clusters != 0:
                problems.append(
                    f"l3.size_bytes {self.l3.size_bytes} not divisible by "
                    f"l3_clusters {self.l3_clusters}"
                )
            else:
                slice_bytes = self.l3.size_bytes // self.l3_clusters
                if slice_bytes % (self.l3.ways * self.l3.line_bytes) != 0:
                    problems.append(
                        f"l3 slice size {slice_bytes} not divisible by "
                        f"ways*line ({self.l3.ways}*{self.l3.line_bytes})"
                    )
            if self.noc.num_nodes < self.l3_clusters:
                problems.append(
                    f"mesh {self.noc.mesh_cols}x{self.noc.mesh_rows} "
                    f"({self.noc.num_nodes} nodes) too small for "
                    f"{self.l3_clusters} L3 clusters"
                )
            if self.noc.host_node >= self.l3_clusters:
                problems.append(
                    f"host_node {self.noc.host_node} is not co-located "
                    f"with an L3 cluster (l3_clusters={self.l3_clusters})"
                )
        if not (self.l1.line_bytes == self.l2.line_bytes
                == self.l3.line_bytes):
            problems.append(
                f"cache line size must be uniform across levels: "
                f"l1={self.l1.line_bytes} l2={self.l2.line_bytes} "
                f"l3={self.l3.line_bytes}"
            )
        if self.dram.bandwidth_bytes_per_cycle <= 0:
            problems.append(
                f"dram.bandwidth_bytes_per_cycle must be positive: "
                f"{self.dram.bandwidth_bytes_per_cycle}"
            )
        for label, freq in (("core", self.core.freq_ghz),
                            ("inorder", self.inorder.freq_ghz),
                            ("cgra", self.cgra.freq_ghz)):
            if freq <= 0:
                problems.append(f"{label}.freq_ghz must be positive: {freq}")
        if problems:
            raise ConfigError(
                "invalid machine parameters: " + "; ".join(problems)
            )

    @property
    def l3_cluster_bytes(self) -> int:
        """Bytes of one L3 slice (validated divisible in __post_init__)."""
        return self.l3.size_bytes // self.l3_clusters

    def with_accel_freq(self, freq_ghz: float) -> "MachineParams":
        """Return a copy with both accelerator substrates re-clocked."""
        return replace(
            self,
            inorder=replace(self.inorder, freq_ghz=freq_ghz),
            cgra=replace(self.cgra, freq_ghz=freq_ghz),
        )


def default_machine() -> MachineParams:
    """The paper's Table III machine."""
    return MachineParams()


def mono_da_cgra_machine(base: MachineParams = None) -> MachineParams:
    """Mono-DA-F machine: one 8x8 CGRA fabric (larger monolithic offloads)."""
    base = base or MachineParams()
    big_fabric = replace(
        base.cgra, rows=8, cols=8, int_alus=40, float_alus=12, complex_alus=12
    )
    return replace(base, cgra=big_fabric)


def _builtin_loader(name: str) -> Callable[[], "MachineParams"]:
    def load() -> "MachineParams":
        from .machine import builtin_machine

        return builtin_machine(name)

    return load


#: named base machines a sweep spec / CLI can start from; every entry is
#: constructed from its committed machine-description document under
#: ``repro/machine/builtin/`` (the factories below are the reference
#: constructors the documents are pinned against)
BASE_MACHINES: Dict[str, Callable[[], "MachineParams"]] = {
    name: _builtin_loader(name)
    for name in (
        "table3", "experiment", "mono_da_cgra", "mono_ca",
        "experiment_mono_da_cgra", "experiment_mono_ca",
    )
}


def base_machine(name: str) -> MachineParams:
    """Resolve a named base machine or a machine-document path.

    ``name`` is either one of the :data:`BASE_MACHINES` builtin document
    names or a filesystem path to a machine-description JSON document
    (see :mod:`repro.machine`).
    """
    loader = BASE_MACHINES.get(name)
    if loader is not None:
        return loader()
    import os

    if os.path.exists(name):
        from .machine import load_document, machine_from_document

        return machine_from_document(load_document(name))
    raise ConfigError(
        f"unknown base machine {name!r}; known: {sorted(BASE_MACHINES)} "
        f"(or a path to a machine-description document)"
    )


def _apply_topology(machine: "MachineParams", value) -> "MachineParams":
    """``topology`` alias: ``"CxR"`` (or ``[C, R]``) re-shapes the mesh
    to ``C x R`` nodes with one L3 cluster per node, clamping the host
    and memory-controller attachment points into the new mesh. Couples
    the cluster count to the mesh shape so a single sweep-axis value
    always derives a valid machine."""
    if isinstance(value, str):
        parts = value.lower().split("x")
    elif isinstance(value, (list, tuple)):
        parts = list(value)
    else:
        raise ConfigError(
            f"machine override 'topology' expects 'CxR' or [C, R], "
            f"got {value!r}"
        )
    try:
        cols, rows = (int(p) for p in parts)
    except (TypeError, ValueError):
        raise ConfigError(
            f"machine override 'topology' expects 'CxR' or [C, R], "
            f"got {value!r}"
        ) from None
    if cols < 1 or rows < 1:
        raise ConfigError(f"machine override 'topology': bad mesh "
                          f"{cols}x{rows}")
    nodes = cols * rows
    noc = replace(
        machine.noc, mesh_cols=cols, mesh_rows=rows,
        host_node=min(machine.noc.host_node, nodes - 1),
        mc_node=min(machine.noc.mc_node, nodes - 1),
    )
    return replace(machine, noc=noc, l3_clusters=nodes)


#: derived-override aliases: one spec key fans out to several fields
OVERRIDE_ALIASES: Dict[str, Callable[["MachineParams", object],
                                     "MachineParams"]] = {
    # both accelerator substrates are re-clocked together, as in the
    # paper's §VI-E clocking study
    "accel_freq_ghz": lambda m, v: m.with_accel_freq(float(v)),
    # mesh shape + one-cluster-per-node topology (DSE topology sweeps)
    "topology": _apply_topology,
}


def _override_one(obj, path: Tuple[str, ...], dotted: str, value):
    """Recursively rebuild a frozen dataclass with one field replaced."""
    head, rest = path[0], path[1:]
    known = {f.name: f for f in fields(obj)}
    if head not in known:
        raise ConfigError(
            f"machine override {dotted!r}: {type(obj).__name__} has no "
            f"field {head!r}; known: {sorted(known)}"
        )
    current = getattr(obj, head)
    if rest:
        if not is_dataclass(current):
            raise ConfigError(
                f"machine override {dotted!r}: {head!r} is a leaf value, "
                f"cannot descend into {'.'.join(rest)!r}"
            )
        return replace(obj, **{head: _override_one(current, rest, dotted,
                                                   value)})
    if is_dataclass(current):
        raise ConfigError(
            f"machine override {dotted!r} targets the parameter group "
            f"{type(current).__name__}; override one of its fields "
            f"({', '.join(sorted(f.name for f in fields(current)))})"
        )
    if isinstance(current, bool):
        if not isinstance(value, bool):
            raise ConfigError(
                f"machine override {dotted!r} expects a bool, got "
                f"{value!r}"
            )
    elif isinstance(current, int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"machine override {dotted!r} expects an int, got "
                f"{value!r}"
            )
    elif isinstance(current, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"machine override {dotted!r} expects a number, got "
                f"{value!r}"
            )
        value = float(value)
    return replace(obj, **{head: value})


def derive_machine(base: MachineParams,
                   overrides: Mapping[str, object]) -> MachineParams:
    """Return ``base`` with dotted-path field overrides applied.

    ``overrides`` maps parameter paths to values, e.g.::

        derive_machine(m, {
            "l3_clusters": 4,              # top-level field
            "l3.size_bytes": 1 << 20,      # nested dataclass field
            "noc.mesh_cols": 2,
            "accel_freq_ghz": 3.0,         # alias (see OVERRIDE_ALIASES)
        })

    Unknown paths, paths into leaf values, group-level targets and
    type-mismatched values raise :class:`~repro.errors.ConfigError`;
    structural validation of the resulting machine (cache geometry
    divisibility, ``__post_init__``) still applies. Keys are applied in
    sorted order so derivation is deterministic regardless of dict
    ordering.
    """
    machine = base
    for key in sorted(overrides):
        value = overrides[key]
        alias = OVERRIDE_ALIASES.get(key)
        if alias is not None:
            machine = alias(machine, value)
            continue
        machine = _override_one(machine, tuple(key.split(".")), key, value)
    return machine


def machine_digest(machine: MachineParams) -> str:
    """Short content hash of every machine parameter (hex digest).

    Two machines with identical parameters share a digest regardless of
    how they were constructed; used by the DSE result store to key
    points against the exact machine they ran on.
    """
    blob = json.dumps(asdict(machine), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: capacity scale factor of the experiment machine relative to Table III
EXPERIMENT_SCALE = 16


def experiment_machine() -> MachineParams:
    """The Table III machine with all *capacities* scaled down 16x.

    Pure-Python cycle-approximate simulation cannot execute multi-MB
    working sets at element granularity; instead every storage capacity
    (caches, ACP, access buffers, Mono-CA private cache) shrinks by
    :data:`EXPERIMENT_SCALE` while organization (ways, clusters, banks),
    latencies, frequencies and compute resources stay at Table III
    values. Workload "small" datasets are sized so that working-set /
    LLC ratios match the paper's, which preserves every capacity-driven
    effect the evaluation depends on (see DESIGN.md §4).
    """
    s = EXPERIMENT_SCALE
    base = MachineParams()
    return replace(
        base,
        l1=replace(base.l1, size_bytes=base.l1.size_bytes // s),
        l2=replace(base.l2, size_bytes=base.l2.size_bytes // s),
        # the LLC shrinks further so "small" working sets land in the
        # paper's 0.5-12x WS/LLC range (Table IV vs the 2 MB L3)
        l3=replace(base.l3, size_bytes=base.l3.size_bytes // (2 * s)),
        access_unit=replace(
            base.access_unit,
            buffer_bytes=base.access_unit.buffer_bytes // 4,
            acp_bytes=base.access_unit.acp_bytes // s * 4,
        ),
        mono_private_bytes=base.mono_private_bytes // s,
    )

"""Simulated machine parameters (paper Table III).

All structural and timing parameters of the simulated system live here as
frozen dataclasses, so a configuration is an immutable value that can be
copied with :func:`dataclasses.replace` for sensitivity sweeps.

Paper reference (Table III):

* OoO core: 2 GHz, 2x4 decode/issue, x86, 5-way Ice Lake-like.
* L1 D/I: 8-way 32 KB, 8 MSHRs, latency 2.
* L2: 128 KB 16-way, 16 MSHRs, latency 4, stride prefetcher.
* L3: 2 MB static NUCA (256 KB per cluster), 8 clusters (4 banks each) on a
  mesh NoC, 16-way, 64 MSHRs, latency 10.
* Memory: LPDDR 2 GB.
* Accelerators: CGRA @ 1 GHz or 1-issue in-order @ 2 GHz, 4 KB buffer per
  L3 cluster, ACP 1-way 1 KB.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Callable, Dict, Mapping, Tuple

from .errors import ConfigError

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int
    mshrs: int
    line_bytes: int = CACHE_LINE_BYTES
    writeback: bool = True

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )


@dataclass(frozen=True)
class NocParams:
    """Mesh NoC parameters.

    The 8 L3 clusters sit on a 4x2 mesh; the host tile is attached to
    mesh node 0. Link width is in bytes per flit.
    """

    mesh_cols: int = 4
    mesh_rows: int = 2
    hop_latency_cycles: int = 2
    flit_bytes: int = 16
    credits_per_link: int = 8

    @property
    def num_nodes(self) -> int:
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class DramParams:
    """LPDDR main-memory model."""

    size_bytes: int = 2 * 1024**3
    latency_cycles: int = 120
    bandwidth_bytes_per_cycle: float = 12.8  # ~25.6 GB/s at 2 GHz


@dataclass(frozen=True)
class CoreParams:
    """Host out-of-order core (5-way Ice Lake-like in the paper)."""

    freq_ghz: float = 2.0
    issue_width: int = 5
    rob_entries: int = 224
    mem_level_parallelism: int = 6


@dataclass(frozen=True)
class InOrderParams:
    """Lightweight single-issue in-order accelerator core."""

    freq_ghz: float = 2.0
    issue_width: int = 1
    mem_level_parallelism: int = 1
    sw_prefetch: bool = False


@dataclass(frozen=True)
class CgraParams:
    """Statically-mapped heterogeneous CGRA fabric (per L3 cluster).

    The paper provisions a 5x5 tile per L3 cluster for Dist-DA-F (four
    float, four complex, fifteen integer ALUs) and an 8x8 fabric for
    Mono-DA-F.
    """

    freq_ghz: float = 1.0
    rows: int = 5
    cols: int = 5
    int_alus: int = 15
    float_alus: int = 4
    complex_alus: int = 4

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class AccessUnitParams:
    """Per-cluster access unit: local SRAM buffers + stride FSM + ACP."""

    buffer_bytes: int = 4096
    acp_ways: int = 1
    acp_bytes: int = 1024
    fill_burst_elems: int = 8
    max_buffers: int = 16


@dataclass(frozen=True)
class MachineParams:
    """Complete parameter set for one simulated machine (Table III)."""

    core: CoreParams = field(default_factory=CoreParams)
    l1: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=32 * 1024, ways=8, latency_cycles=2, mshrs=8
        )
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=128 * 1024, ways=16, latency_cycles=4, mshrs=16
        )
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=2 * 1024 * 1024, ways=16, latency_cycles=10, mshrs=64
        )
    )
    l3_clusters: int = 8
    l3_banks_per_cluster: int = 4
    l2_stride_prefetcher: bool = True
    noc: NocParams = field(default_factory=NocParams)
    dram: DramParams = field(default_factory=DramParams)
    inorder: InOrderParams = field(default_factory=InOrderParams)
    cgra: CgraParams = field(default_factory=CgraParams)
    access_unit: AccessUnitParams = field(default_factory=AccessUnitParams)
    #: Mono-CA's private cache on the L3 bus (8 KB in the paper)
    mono_private_bytes: int = 8 * 1024
    #: latency of a near-data access straight into a local L3 bank; the
    #: Table III "latency 10" includes the host-side slice controller and
    #: queueing that an access unit sitting at the bank does not pay
    l3_bank_latency: int = 4

    @property
    def l3_cluster_bytes(self) -> int:
        return self.l3.size_bytes // self.l3_clusters

    def with_accel_freq(self, freq_ghz: float) -> "MachineParams":
        """Return a copy with both accelerator substrates re-clocked."""
        return replace(
            self,
            inorder=replace(self.inorder, freq_ghz=freq_ghz),
            cgra=replace(self.cgra, freq_ghz=freq_ghz),
        )


def default_machine() -> MachineParams:
    """The paper's Table III machine."""
    return MachineParams()


def mono_da_cgra_machine(base: MachineParams = None) -> MachineParams:
    """Mono-DA-F machine: one 8x8 CGRA fabric (larger monolithic offloads)."""
    base = base or MachineParams()
    big_fabric = replace(
        base.cgra, rows=8, cols=8, int_alus=40, float_alus=12, complex_alus=12
    )
    return replace(base, cgra=big_fabric)


#: named base machines a sweep spec / CLI can start from
BASE_MACHINES: Dict[str, Callable[[], "MachineParams"]] = {
    "table3": default_machine,
    "experiment": lambda: experiment_machine(),
    "mono_da_cgra": lambda: mono_da_cgra_machine(),
}


def base_machine(name: str) -> MachineParams:
    """Look up one of the :data:`BASE_MACHINES` factories by name."""
    try:
        return BASE_MACHINES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown base machine {name!r}; known: {sorted(BASE_MACHINES)}"
        ) from None


#: derived-override aliases: one spec key fans out to several fields
OVERRIDE_ALIASES: Dict[str, Callable[["MachineParams", object],
                                     "MachineParams"]] = {
    # both accelerator substrates are re-clocked together, as in the
    # paper's §VI-E clocking study
    "accel_freq_ghz": lambda m, v: m.with_accel_freq(float(v)),
}


def _override_one(obj, path: Tuple[str, ...], dotted: str, value):
    """Recursively rebuild a frozen dataclass with one field replaced."""
    head, rest = path[0], path[1:]
    known = {f.name: f for f in fields(obj)}
    if head not in known:
        raise ConfigError(
            f"machine override {dotted!r}: {type(obj).__name__} has no "
            f"field {head!r}; known: {sorted(known)}"
        )
    current = getattr(obj, head)
    if rest:
        if not is_dataclass(current):
            raise ConfigError(
                f"machine override {dotted!r}: {head!r} is a leaf value, "
                f"cannot descend into {'.'.join(rest)!r}"
            )
        return replace(obj, **{head: _override_one(current, rest, dotted,
                                                   value)})
    if is_dataclass(current):
        raise ConfigError(
            f"machine override {dotted!r} targets the parameter group "
            f"{type(current).__name__}; override one of its fields "
            f"({', '.join(sorted(f.name for f in fields(current)))})"
        )
    if isinstance(current, bool):
        if not isinstance(value, bool):
            raise ConfigError(
                f"machine override {dotted!r} expects a bool, got "
                f"{value!r}"
            )
    elif isinstance(current, int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"machine override {dotted!r} expects an int, got "
                f"{value!r}"
            )
    elif isinstance(current, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"machine override {dotted!r} expects a number, got "
                f"{value!r}"
            )
        value = float(value)
    return replace(obj, **{head: value})


def derive_machine(base: MachineParams,
                   overrides: Mapping[str, object]) -> MachineParams:
    """Return ``base`` with dotted-path field overrides applied.

    ``overrides`` maps parameter paths to values, e.g.::

        derive_machine(m, {
            "l3_clusters": 4,              # top-level field
            "l3.size_bytes": 1 << 20,      # nested dataclass field
            "noc.mesh_cols": 2,
            "accel_freq_ghz": 3.0,         # alias (see OVERRIDE_ALIASES)
        })

    Unknown paths, paths into leaf values, group-level targets and
    type-mismatched values raise :class:`~repro.errors.ConfigError`;
    structural validation of the resulting machine (cache geometry
    divisibility, ``__post_init__``) still applies. Keys are applied in
    sorted order so derivation is deterministic regardless of dict
    ordering.
    """
    machine = base
    for key in sorted(overrides):
        value = overrides[key]
        alias = OVERRIDE_ALIASES.get(key)
        if alias is not None:
            machine = alias(machine, value)
            continue
        machine = _override_one(machine, tuple(key.split(".")), key, value)
    return machine


def machine_digest(machine: MachineParams) -> str:
    """Short content hash of every machine parameter (hex digest).

    Two machines with identical parameters share a digest regardless of
    how they were constructed; used by the DSE result store to key
    points against the exact machine they ran on.
    """
    blob = json.dumps(asdict(machine), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: capacity scale factor of the experiment machine relative to Table III
EXPERIMENT_SCALE = 16


def experiment_machine() -> MachineParams:
    """The Table III machine with all *capacities* scaled down 16x.

    Pure-Python cycle-approximate simulation cannot execute multi-MB
    working sets at element granularity; instead every storage capacity
    (caches, ACP, access buffers, Mono-CA private cache) shrinks by
    :data:`EXPERIMENT_SCALE` while organization (ways, clusters, banks),
    latencies, frequencies and compute resources stay at Table III
    values. Workload "small" datasets are sized so that working-set /
    LLC ratios match the paper's, which preserves every capacity-driven
    effect the evaluation depends on (see DESIGN.md §4).
    """
    s = EXPERIMENT_SCALE
    base = MachineParams()
    return replace(
        base,
        l1=replace(base.l1, size_bytes=base.l1.size_bytes // s),
        l2=replace(base.l2, size_bytes=base.l2.size_bytes // s),
        # the LLC shrinks further so "small" working sets land in the
        # paper's 0.5-12x WS/LLC range (Table IV vs the 2 MB L3)
        l3=replace(base.l3, size_bytes=base.l3.size_bytes // (2 * s)),
        access_unit=replace(
            base.access_unit,
            buffer_bytes=base.access_unit.buffer_bytes // 4,
            acp_bytes=base.access_unit.acp_bytes // s * 4,
        ),
        mono_private_bytes=base.mono_private_bytes // s,
    )

"""Mesh network-on-chip model.

The L3 clusters sit on an arbitrary rectangular mesh (Table III: 8
clusters on 4x2); the host tile attaches at ``NocParams.host_node``.
The model provides XY routing with hop counting, per-message
latency/energy, and a traffic ledger that splits bytes into the paper's
four Figure-10 classes: host control, host data, inter-accelerator
control and inter-accelerator data.
"""

from .mesh import Mesh
from .traffic import TrafficClass, TrafficLedger, MessageKind

__all__ = [
    "Mesh",
    "TrafficClass",
    "TrafficLedger",
    "MessageKind",
]

"""Mesh network-on-chip model.

The 8 L3 clusters sit on a 4x2 mesh (Table III); the host tile attaches at
node 0. The model provides XY routing with hop counting, per-message
latency/energy, and a traffic ledger that splits bytes into the paper's
four Figure-10 classes: host control, host data, inter-accelerator control
and inter-accelerator data.
"""

from .mesh import Mesh, HOST_NODE
from .traffic import TrafficClass, TrafficLedger, MessageKind

__all__ = [
    "Mesh",
    "HOST_NODE",
    "TrafficClass",
    "TrafficLedger",
    "MessageKind",
]

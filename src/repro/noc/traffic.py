"""NoC traffic accounting in the paper's Figure-10 categories.

Every message sent over the mesh is recorded with a
:class:`TrafficClass`:

* ``HOST_CTRL``  — host-initiated request/response control (MMIO configs,
  cp_config*/cp_run/cp_set_rf, cache request headers);
* ``HOST_DATA``  — data moved on behalf of the host (cache line fills and
  writebacks crossing the mesh, host read/write payloads);
* ``ACC_CTRL``   — inter-accelerator control (produce/consume handshakes,
  credits, step notifications);
* ``ACC_DATA``   — inter-accelerator operand payloads.

The ledger also charges NoC energy (per byte-hop and per router-flit)
into the shared :class:`~repro.energy.EnergyLedger`.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Optional, Tuple

from ..energy import EnergyLedger
from .mesh import Mesh

#: bytes of header carried by every message (request/command encoding)
HEADER_BYTES = 8


class TrafficClass(enum.Enum):
    HOST_CTRL = "ctrl"
    HOST_DATA = "data"
    ACC_CTRL = "acc_ctrl"
    ACC_DATA = "acc_data"


class MessageKind(enum.Enum):
    """Finer-grained message taxonomy, mapped onto traffic classes."""

    MMIO_CONFIG = TrafficClass.HOST_CTRL
    MMIO_CTRL = TrafficClass.HOST_CTRL
    CACHE_REQ = TrafficClass.HOST_CTRL
    CACHE_FILL = TrafficClass.HOST_DATA
    CACHE_WRITEBACK = TrafficClass.HOST_DATA
    HOST_OPERAND = TrafficClass.HOST_DATA
    ACC_HANDSHAKE = TrafficClass.ACC_CTRL
    ACC_CREDIT = TrafficClass.ACC_CTRL
    ACC_OPERAND = TrafficClass.ACC_DATA


class TrafficLedger:
    """Counts bytes, messages and byte-hops per traffic class."""

    def __init__(self, mesh: Mesh, energy: Optional[EnergyLedger] = None):
        self.mesh = mesh
        self.energy = energy
        self.bytes_by_class: Dict[TrafficClass, float] = defaultdict(float)
        self.byte_hops_by_class: Dict[TrafficClass, float] = defaultdict(float)
        self.messages_by_class: Dict[TrafficClass, int] = defaultdict(int)
        self.bytes_by_pair: Dict[Tuple[int, int], float] = defaultdict(float)
        #: (src, dst, payload) -> one-way latency ps; messages repeat the
        #: same few shapes millions of times, the mesh is static
        self._lat_memo: Dict[Tuple[int, int, int], int] = {}

    def latency_of(self, src: int, dst: int, payload_bytes: int) -> int:
        """Memoized one-way message latency (what :meth:`record` returns)."""
        key = (src, dst, payload_bytes)
        lat = self._lat_memo.get(key)
        if lat is None:
            lat = self._lat_memo[key] = self.mesh.latency_ps(
                src, dst, payload_bytes + HEADER_BYTES
            )
        return lat

    def record(self, kind: MessageKind, src: int, dst: int,
               payload_bytes: int, count: int = 1) -> int:
        """Record ``count`` identical messages; returns one-way latency ps.

        Local messages (src == dst) cost no link energy but are still
        counted as bytes so access-distribution statistics see them.
        """
        tclass = kind.value
        total_bytes = (payload_bytes + HEADER_BYTES) * count
        hops = self.mesh.hops(src, dst)
        self.bytes_by_class[tclass] += total_bytes
        self.byte_hops_by_class[tclass] += total_bytes * hops
        self.messages_by_class[tclass] += count
        self.bytes_by_pair[(src, dst)] += total_bytes
        if self.energy is not None and hops > 0:
            flits = self.mesh.num_flits(payload_bytes + HEADER_BYTES)
            self.energy.charge("noc", "noc_byte_hop", total_bytes * hops)
            self.energy.charge(
                "noc", "noc_router_flit",
                flits * (hops + 1) * count,
            )
        return self.latency_of(src, dst, payload_bytes)

    # -- summaries ---------------------------------------------------------
    def total_bytes(self) -> float:
        return sum(self.bytes_by_class.values())

    def total_byte_hops(self) -> float:
        return sum(self.byte_hops_by_class.values())

    def breakdown(self) -> Dict[str, float]:
        """Figure-10 style breakdown: bytes per class name."""
        return {tc.value: self.bytes_by_class.get(tc, 0.0)
                for tc in TrafficClass}

    def class_bytes(self, tclass: TrafficClass) -> float:
        return self.bytes_by_class.get(tclass, 0.0)

"""NoC traffic accounting in the paper's Figure-10 categories.

Every message sent over the mesh is recorded with a
:class:`TrafficClass`:

* ``HOST_CTRL``  — host-initiated request/response control (MMIO configs,
  cp_config*/cp_run/cp_set_rf, cache request headers);
* ``HOST_DATA``  — data moved on behalf of the host (cache line fills and
  writebacks crossing the mesh, host read/write payloads);
* ``ACC_CTRL``   — inter-accelerator control (produce/consume handshakes,
  credits, step notifications);
* ``ACC_DATA``   — inter-accelerator operand payloads.

The ledger also charges NoC energy (per byte-hop and per router-flit)
into the shared :class:`~repro.energy.EnergyLedger`.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Optional, Tuple

from ..energy import EnergyLedger
from .mesh import Mesh

#: bytes of header carried by every message (request/command encoding)
HEADER_BYTES = 8


class TrafficClass(enum.Enum):
    HOST_CTRL = "ctrl"
    HOST_DATA = "data"
    ACC_CTRL = "acc_ctrl"
    ACC_DATA = "acc_data"


class MessageKind(enum.Enum):
    """Finer-grained message taxonomy, mapped onto traffic classes."""

    MMIO_CONFIG = TrafficClass.HOST_CTRL
    MMIO_CTRL = TrafficClass.HOST_CTRL
    CACHE_REQ = TrafficClass.HOST_CTRL
    CACHE_FILL = TrafficClass.HOST_DATA
    CACHE_WRITEBACK = TrafficClass.HOST_DATA
    HOST_OPERAND = TrafficClass.HOST_DATA
    ACC_HANDSHAKE = TrafficClass.ACC_CTRL
    ACC_CREDIT = TrafficClass.ACC_CTRL
    ACC_OPERAND = TrafficClass.ACC_DATA


#: energy-count keys charged by :meth:`TrafficLedger.record`; updated
#: directly on the ledger's count dict (the per-call ``charge()`` method
#: overhead is measurable at a million records per matrix cell)
_EK_BYTE_HOP = ("noc", "noc_byte_hop")
_EK_ROUTER_FLIT = ("noc", "noc_router_flit")

_CLASSES = tuple(TrafficClass)
_CLASS_INDEX = {tc: i for i, tc in enumerate(_CLASSES)}


class TrafficLedger:
    """Counts bytes, messages and byte-hops per traffic class.

    Per-class tallies live in plain int-indexed lists; the public
    ``*_by_class`` mappings are materialized on read. Hashing enum
    members per record costs more than the accounting itself at the
    record rates the batched replay path reaches.
    """

    def __init__(self, mesh: Mesh, energy: Optional[EnergyLedger] = None):
        self.mesh = mesh
        self.energy = energy
        if energy is not None:
            # validate the event names once (charge() does this per call)
            getattr(energy.table, _EK_BYTE_HOP[1])
            getattr(energy.table, _EK_ROUTER_FLIT[1])
        self._bytes = [0.0] * len(_CLASSES)
        self._byte_hops = [0.0] * len(_CLASSES)
        self._messages = [0] * len(_CLASSES)
        self.bytes_by_pair: Dict[Tuple[int, int], float] = defaultdict(float)
        #: (src, dst, payload) -> one-way latency ps; messages repeat the
        #: same few shapes millions of times, the mesh is static
        self._lat_memo: Dict[Tuple[int, int, int], int] = {}
        #: (kind id, src, dst, payload) -> everything record() derives
        #: from the static mesh: (class index, bytes/message, hops,
        #: flits, latency, (src, dst))
        self._shape_memo: Dict[Tuple[int, int, int, int], tuple] = {}

    # live views keep the pre-existing mapping API (tests index these
    # with TrafficClass members); every class is always present
    @property
    def bytes_by_class(self) -> Dict[TrafficClass, float]:
        return dict(zip(_CLASSES, self._bytes))

    @property
    def byte_hops_by_class(self) -> Dict[TrafficClass, float]:
        return dict(zip(_CLASSES, self._byte_hops))

    @property
    def messages_by_class(self) -> Dict[TrafficClass, int]:
        return dict(zip(_CLASSES, self._messages))

    def latency_of(self, src: int, dst: int, payload_bytes: int) -> int:
        """Memoized one-way message latency (what :meth:`record` returns)."""
        key = (src, dst, payload_bytes)
        lat = self._lat_memo.get(key)
        if lat is None:
            lat = self._lat_memo[key] = self.mesh.latency_ps(
                src, dst, payload_bytes + HEADER_BYTES
            )
        return lat

    def record(self, kind: MessageKind, src: int, dst: int,
               payload_bytes: int, count: int = 1) -> int:
        """Record ``count`` identical messages; returns one-way latency ps.

        Local messages (src == dst) cost no link energy but are still
        counted as bytes so access-distribution statistics see them.
        """
        # enum members are singletons, so id() is a stable, cheap key
        key = (id(kind), src, dst, payload_bytes)
        shape = self._shape_memo.get(key)
        if shape is None:
            hops = self.mesh.hops(src, dst)
            shape = self._shape_memo[key] = (
                _CLASS_INDEX[kind.value],
                payload_bytes + HEADER_BYTES,
                hops,
                self.mesh.num_flits(payload_bytes + HEADER_BYTES),
                self.latency_of(src, dst, payload_bytes),
                (src, dst),
            )
        ci, unit_bytes, hops, flits, lat, pair = shape
        total_bytes = unit_bytes * count
        self._bytes[ci] += total_bytes
        self._byte_hops[ci] += total_bytes * hops
        self._messages[ci] += count
        self.bytes_by_pair[pair] += total_bytes
        if self.energy is not None and hops > 0:
            counts = self.energy._counts
            counts[_EK_BYTE_HOP] += total_bytes * hops
            counts[_EK_ROUTER_FLIT] += flits * (hops + 1) * count
        return lat

    # -- summaries ---------------------------------------------------------
    def total_bytes(self) -> float:
        return sum(self._bytes)

    def total_byte_hops(self) -> float:
        return sum(self._byte_hops)

    def breakdown(self) -> Dict[str, float]:
        """Figure-10 style breakdown: bytes per class name."""
        return {tc.value: self._bytes[i] for i, tc in enumerate(_CLASSES)}

    def class_bytes(self, tclass: TrafficClass) -> float:
        return self._bytes[_CLASS_INDEX[tclass]]

"""Mesh topology with dimension-ordered (XY) routing.

Nodes are numbered row-major: node = row * cols + col. The host tile is
co-located with the node named by ``NocParams.host_node`` (node 0 in
the paper's Table III machine), matching a single-core system where the
core's L2 connects to the L3 mesh at one point. XY routing is
deadlock-free on a mesh, which is why the credit accounting here never
needs an escape path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ConfigError
from ..events import cycles_to_ps
from ..params import NocParams


@dataclass(frozen=True)
class Coord:
    row: int
    col: int


class Mesh:
    """Geometry and routing for the L3-cluster mesh."""

    def __init__(self, params: NocParams):
        if params.mesh_cols < 1 or params.mesh_rows < 1:
            raise ConfigError(f"bad mesh dims: {params}")
        self.params = params
        self.cols = params.mesh_cols
        self.rows = params.mesh_rows
        # Manhattan distances, precomputed once: hops() sits on every
        # traffic-accounting path and the mesh is tiny (O(n^2) ints)
        n = self.rows * self.cols
        self._hops: List[List[int]] = [
            [
                abs(s // self.cols - d // self.cols)
                + abs(s % self.cols - d % self.cols)
                for d in range(n)
            ]
            for s in range(n)
        ]

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def coord(self, node: int) -> Coord:
        self._check(node)
        return Coord(node // self.cols, node % self.cols)

    def node_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigError(f"coordinate out of mesh: ({row}, {col})")
        return row * self.cols + col

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ConfigError(
                f"node {node} outside mesh of {self.num_nodes} nodes"
            )

    # -- routing ----------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance (number of link traversals) src -> dst."""
        if src < 0 or dst < 0:
            self._check(src)
            self._check(dst)
        try:
            return self._hops[src][dst]
        except IndexError:
            self._check(src)
            self._check(dst)
            raise  # pragma: no cover - _check raises first

    def route(self, src: int, dst: int) -> List[int]:
        """XY route: full node path including both endpoints."""
        a, b = self.coord(src), self.coord(dst)
        path = [self.node_at(a.row, a.col)]
        col = a.col
        while col != b.col:
            col += 1 if b.col > col else -1
            path.append(self.node_at(a.row, col))
        row = a.row
        while row != b.row:
            row += 1 if b.row > row else -1
            path.append(self.node_at(row, b.col))
        return path

    def routers_traversed(self, src: int, dst: int) -> int:
        """Routers a message passes through (endpoints included)."""
        return self.hops(src, dst) + 1

    # -- timing ------------------------------------------------------------
    def latency_ps(self, src: int, dst: int, payload_bytes: int,
                   freq_ghz: float = 2.0) -> int:
        """Head-to-tail latency of one message at NoC clock ``freq_ghz``.

        Pipeline model: per-hop latency for the head flit plus one cycle
        per additional flit of serialization.
        """
        flits = self.num_flits(payload_bytes)
        cycles = self.hops(src, dst) * self.params.hop_latency_cycles
        cycles += max(flits - 1, 0)
        return cycles_to_ps(cycles, freq_ghz)

    def num_flits(self, payload_bytes: int) -> int:
        if payload_bytes < 0:
            raise ConfigError(f"negative payload: {payload_bytes}")
        if payload_bytes == 0:
            return 1  # header-only (control) message
        fb = self.params.flit_bytes
        return (payload_bytes + fb - 1) // fb

    def all_pairs(self) -> Iterator[Tuple[int, int]]:
        for s in range(self.num_nodes):
            for d in range(self.num_nodes):
                yield s, d

"""SpMV (case study, §VI-D): CSR sparse matrix-vector multiplication.

The randomly generated dataset follows the paper: sixteen equally-sized
2-D tiles in CSR format with low density. The innermost loop's bounds
come from the row-pointer array (data-dependent), so the automated
Dist-DA-B offload pays a host relaunch per row — the 0.44x effect the
Dist-DA-BN / -BNS user annotations then recover (Fig. 12a).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from ..ir import FLOAT32, INT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, JJ = LoopVar("i"), LoopVar("jj")


def build_tile_kernel(tile: int, rows: int, nnz: int, cols: int) -> Kernel:
    ap = MemObject(f"ap{tile}", rows + 1, INT32)
    col = MemObject(f"col{tile}", nnz, INT32)
    val = MemObject(f"val{tile}", nnz, FLOAT32)
    x = MemObject("x", cols, FLOAT32)
    y = MemObject("y", rows, FLOAT32)
    inner = Loop("jj", ap[I], ap[I + 1], [
        y.store(I, y[I] + val[JJ] * x[col[JJ]]),
    ])
    outer = Loop("i", 0, rows, [inner])
    return Kernel(
        f"spmv_tile{tile}",
        {ap.name: ap, col.name: col, val.name: val, "x": x, "y": y},
        [outer], outputs=["y"],
    )


def make_csr_tile(rows: int, cols: int, density: float,
                  rng: np.random.Generator):
    nnz_per_row = rng.poisson(max(density * cols, 1), rows)
    nnz_per_row = np.clip(nnz_per_row, 0, cols)
    ap = np.zeros(rows + 1, dtype=np.int32)
    ap[1:] = np.cumsum(nnz_per_row)
    nnz = int(ap[-1])
    col = np.concatenate([
        np.sort(rng.choice(cols, size=k, replace=False))
        for k in nnz_per_row
    ]).astype(np.int32) if nnz else np.zeros(0, dtype=np.int32)
    val = (rng.standard_normal(nnz) * 2.048).astype(np.float32)
    return ap, col, val


class Spmv(Workload):
    name = "spmv"
    short = "spmv"

    def build(self, scale: str = "small", tiles: int = None,
              rows: int = None, cols: int = None,
              density: float = 5e-3) -> WorkloadInstance:
        tiles = tiles or scale_dims(scale, tiny=2, small=16, large=16)
        rows = rows or scale_dims(scale, tiny=8, small=128, large=512)
        cols = cols or scale_dims(scale, tiny=16, small=512, large=4096)
        rng = np.random.default_rng(43)
        kernels: List[Kernel] = []
        arrays = {
            "x": rng.random(cols).astype(np.float32),
            "y": np.zeros(rows, dtype=np.float32),
        }
        objects = {}
        tiles_data = []
        for t in range(tiles):
            ap, col, val = make_csr_tile(rows, cols, density, rng)
            nnz = max(len(val), 1)
            if len(val) == 0:
                col = np.zeros(1, dtype=np.int32)
                val = np.zeros(1, dtype=np.float32)
            kernel = build_tile_kernel(t, rows, nnz, cols)
            kernels.append(kernel)
            arrays[f"ap{t}"] = ap
            arrays[f"col{t}"] = col
            arrays[f"val{t}"] = val
            objects.update(kernel.objects)
            tiles_data.append((ap, col, val))

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for kernel in kernels:
                yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            y = inputs["y"].astype(np.float64)
            x = inputs["x"].astype(np.float64)
            for t in range(tiles):
                ap = inputs[f"ap{t}"]
                col = inputs[f"col{t}"]
                val = inputs[f"val{t}"].astype(np.float64)
                for r in range(rows):
                    lo, hi = int(ap[r]), int(ap[r + 1])
                    y[r] += val[lo:hi] @ x[col[lo:hi]]
            return {"y": y}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=["y"],
            schedule=schedule, reference=reference,
            host_insts_per_call=30, host_accesses_per_call=4,
            atol=1e-3,
        )


register(Spmv())

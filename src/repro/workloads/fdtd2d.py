"""FDTD-2D (PolyBench): 2-D finite-difference time-domain kernel.

Three stream-heavy stencil nests per timestep over the ey/ex/hz fields —
the paper's archetype of a multi-read-operand computation where
sub-computation partitioning pays (§VI-B) and the working-set-size
sensitivity study's subject (§VI-E).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")


def build_kernel(n: int) -> Kernel:
    ex = MemObject("ex", (n, n), FLOAT32)
    ey = MemObject("ey", (n, n), FLOAT32)
    hz = MemObject("hz", (n, n), FLOAT32)
    ey_nest = Loop("i", 1, n, [
        Loop("j", 0, n, [
            ey.store((I, J), ey[I, J] - 0.5 * (hz[I, J] - hz[I - 1, J])),
        ]),
    ])
    ex_nest = Loop("i2", 0, n, [
        Loop("j2", 1, n, [
            ex.store(
                (LoopVar("i2"), LoopVar("j2")),
                ex[LoopVar("i2"), LoopVar("j2")]
                - 0.5 * (hz[LoopVar("i2"), LoopVar("j2")]
                         - hz[LoopVar("i2"), LoopVar("j2") - 1]),
            ),
        ]),
    ])
    i3, j3 = LoopVar("i3"), LoopVar("j3")
    hz_nest = Loop("i3", 0, n - 1, [
        Loop("j3", 0, n - 1, [
            hz.store(
                (i3, j3),
                hz[i3, j3] - 0.7 * (
                    ex[i3, j3 + 1] - ex[i3, j3]
                    + ey[i3 + 1, j3] - ey[i3, j3]
                ),
            ),
        ]),
    ])
    return Kernel(
        "fdtd2d",
        {"ex": ex, "ey": ey, "hz": hz},
        [ey_nest, ex_nest, hz_nest],
        outputs=["ex", "ey", "hz"],
    )


def reference_step(ex: np.ndarray, ey: np.ndarray, hz: np.ndarray) -> None:
    ey[1:, :] = ey[1:, :] - 0.5 * (hz[1:, :] - hz[:-1, :])
    ex[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
    hz[:-1, :-1] = hz[:-1, :-1] - 0.7 * (
        ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
    )


class Fdtd2d(Workload):
    name = "fdtd-2d"
    short = "fdt"

    def build(self, scale: str = "small",
              n: int = None, timesteps: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=10, small=112, large=224)
        timesteps = timesteps or scale_dims(scale, tiny=2, small=2, large=3)
        kernel = build_kernel(n)
        rng = np.random.default_rng(7)
        arrays = {
            name: rng.random(n * n).astype(np.float32)
            for name in ("ex", "ey", "hz")
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for _ in range(timesteps):
                yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            ex = inputs["ex"].reshape(n, n).astype(np.float64)
            ey = inputs["ey"].reshape(n, n).astype(np.float64)
            hz = inputs["hz"].reshape(n, n).astype(np.float64)
            for _ in range(timesteps):
                reference_step(ex, ey, hz)
            return {
                "ex": ex.ravel(), "ey": ey.ravel(), "hz": hz.ravel(),
            }

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["ex", "ey", "hz"],
            schedule=schedule, reference=reference,
            host_insts_per_call=40, host_accesses_per_call=4,
            atol=1e-2,
        )


register(Fdtd2d())

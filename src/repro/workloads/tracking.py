"""Tracking (SD-VBS): Harris-style corner response for feature tracking.

Three stages per frame: central-difference gradients, per-pixel tensor
products, and a 3x3-windowed corner response. The response DFG is the
largest in the suite (Table VI: tra has the maximum static instruction
count), exercising the CGRA mapper's capacity handling.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")


def build_grad_kernel(n: int) -> Kernel:
    img = MemObject("img", (n, n), FLOAT32)
    ix = MemObject("ix", (n, n), FLOAT32)
    iy = MemObject("iy", (n, n), FLOAT32)
    nest = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            ix.store((I, J), (img[I, J + 1] - img[I, J - 1]) * 0.5),
            iy.store((I, J), (img[I + 1, J] - img[I - 1, J]) * 0.5),
        ]),
    ])
    return Kernel("trk_grad", {"img": img, "ix": ix, "iy": iy}, [nest],
                  outputs=["ix", "iy"])


def build_tensor_kernel(n: int) -> Kernel:
    ix = MemObject("ix", (n, n), FLOAT32)
    iy = MemObject("iy", (n, n), FLOAT32)
    ixx = MemObject("ixx", (n, n), FLOAT32)
    iyy = MemObject("iyy", (n, n), FLOAT32)
    ixy = MemObject("ixy", (n, n), FLOAT32)
    nest = Loop("i", 0, n, [
        Loop("j", 0, n, [
            ixx.store((I, J), ix[I, J] * ix[I, J]),
            iyy.store((I, J), iy[I, J] * iy[I, J]),
            ixy.store((I, J), ix[I, J] * iy[I, J]),
        ]),
    ])
    return Kernel(
        "trk_tensor",
        {"ix": ix, "iy": iy, "ixx": ixx, "iyy": iyy, "ixy": ixy},
        [nest], outputs=["ixx", "iyy", "ixy"],
    )


def _box(obj: MemObject):
    return (
        obj[I - 1, J - 1] + obj[I - 1, J] + obj[I - 1, J + 1]
        + obj[I, J - 1] + obj[I, J] + obj[I, J + 1]
        + obj[I + 1, J - 1] + obj[I + 1, J] + obj[I + 1, J + 1]
    )


def build_response_kernel(n: int) -> Kernel:
    """Harris response: det(T) - k*trace(T)^2 over 3x3 sums."""
    ixx = MemObject("ixx", (n, n), FLOAT32)
    iyy = MemObject("iyy", (n, n), FLOAT32)
    ixy = MemObject("ixy", (n, n), FLOAT32)
    resp = MemObject("resp", (n, n), FLOAT32)
    sxx, syy, sxy = _box(ixx), _box(iyy), _box(ixy)
    trace = sxx + syy
    det = sxx * syy - sxy * sxy
    nest = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            resp.store((I, J), det - 0.04 * trace * trace),
        ]),
    ])
    return Kernel(
        "trk_response",
        {"ixx": ixx, "iyy": iyy, "ixy": ixy, "resp": resp},
        [nest], outputs=["resp"],
    )


def reference_tracking(img: np.ndarray, n: int) -> np.ndarray:
    ix = np.zeros_like(img)
    iy = np.zeros_like(img)
    ix[1:-1, 1:-1] = (img[1:-1, 2:] - img[1:-1, :-2]) * 0.5
    iy[1:-1, 1:-1] = (img[2:, 1:-1] - img[:-2, 1:-1]) * 0.5
    ixx, iyy, ixy = ix * ix, iy * iy, ix * iy
    resp = np.zeros_like(img)

    def box(a):
        return sum(
            a[1 + di:n - 1 + di, 1 + dj:n - 1 + dj]
            for di in (-1, 0, 1) for dj in (-1, 0, 1)
        )

    sxx, syy, sxy = box(ixx), box(iyy), box(ixy)
    trace = sxx + syy
    resp[1:-1, 1:-1] = sxx * syy - sxy * sxy - 0.04 * trace * trace
    return resp


class Tracking(Workload):
    name = "tracking"
    short = "tra"

    def build(self, scale: str = "small", n: int = None,
              frames: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=8, small=64, large=128)
        frames = frames or scale_dims(scale, tiny=1, small=2, large=2)
        rng = np.random.default_rng(41)
        img = rng.random(n * n).astype(np.float32)
        grad_k = build_grad_kernel(n)
        tensor_k = build_tensor_kernel(n)
        resp_k = build_response_kernel(n)
        def zeros() -> np.ndarray:
            return np.zeros(n * n, dtype=np.float32)

        arrays = {
            "img": img.copy(), "ix": zeros(), "iy": zeros(),
            "ixx": zeros(), "iyy": zeros(), "ixy": zeros(),
            "resp": zeros(),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for _ in range(frames):
                yield KernelCall(grad_k)
                yield KernelCall(tensor_k)
                yield KernelCall(resp_k)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            resp = reference_tracking(
                inputs["img"].reshape(n, n).astype(np.float64), n
            )
            return {"resp": resp.ravel()}

        objects = dict(grad_k.objects)
        objects.update(tensor_k.objects)
        objects.update(resp_k.objects)
        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=["resp"],
            schedule=schedule, reference=reference,
            host_insts_per_call=50, host_accesses_per_call=4,
            atol=1e-2,
        )


register(Tracking())

"""Workload abstraction.

A :class:`WorkloadInstance` is a single-use executable application: a
sequence of kernel calls over live NumPy arrays (the driver may inspect
array contents between calls, e.g. BFS frontier emptiness), plus a NumPy
reference implementation for output validation.

Instances are consumed by one simulation run — build a fresh one per run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

import numpy as np

from ..errors import ConfigError
from ..ir.program import Kernel, MemObject

#: registry of workload short-name -> Workload subclass instance
_REGISTRY: Dict[str, "Workload"] = {}


@dataclass
class KernelCall:
    """One invocation of a kernel with concrete scalar arguments."""

    kernel: Kernel
    scalars: Dict[str, float] = field(default_factory=dict)


class WorkloadInstance:
    """A built, runnable application instance."""

    def __init__(self, name: str, short: str,
                 objects: Dict[str, MemObject],
                 arrays: Dict[str, np.ndarray],
                 outputs: List[str],
                 schedule: Callable[["WorkloadInstance"], Iterator[KernelCall]],
                 reference: Callable[[Dict[str, np.ndarray]],
                                     Dict[str, np.ndarray]],
                 host_insts_per_call: int = 50,
                 host_accesses_per_call: int = 4,
                 atol: float = 1e-4,
                 serial_fraction: float = 0.0):
        self.name = name
        self.short = short
        self.objects = objects
        self.arrays = arrays
        self.outputs = outputs
        self._schedule = schedule
        self._reference = reference
        self.host_insts_per_call = host_insts_per_call
        self.host_accesses_per_call = host_accesses_per_call
        self.atol = atol
        #: fraction of misses on a loop-carried dependence chain (pointer
        #: chasing) that no amount of OoO MLP can overlap
        self.serial_fraction = serial_fraction
        self._initial = {k: v.copy() for k, v in arrays.items()}
        self._consumed = False

    def calls(self) -> Iterator[KernelCall]:
        if self._consumed:
            raise ConfigError(
                f"workload instance {self.name!r} already consumed; "
                "build a fresh one per simulation run"
            )
        self._consumed = True
        return self._schedule(self)

    def reference_outputs(self) -> Dict[str, np.ndarray]:
        """Golden outputs computed by the NumPy implementation from the
        *initial* array contents."""
        inputs = {k: v.copy() for k, v in self._initial.items()}
        return self._reference(inputs)

    def validate(self) -> bool:
        """Compare current array state against the NumPy reference."""
        golden = self.reference_outputs()
        for name in self.outputs:
            if name not in golden:
                raise ConfigError(f"reference lacks output {name!r}")
            if not np.allclose(self.arrays[name], golden[name],
                               atol=self.atol, rtol=1e-3, equal_nan=True):
                return False
        return True


class Workload(abc.ABC):
    """Factory for workload instances at a given scale."""

    #: long name, e.g. "disparity"
    name: str = ""
    #: Table VI short name, e.g. "dis"
    short: str = ""

    @abc.abstractmethod
    def build(self, scale: str = "small") -> WorkloadInstance:
        """Build a fresh instance. ``scale``: "tiny" (tests), "small"
        (benchmarks), "large" (sensitivity studies)."""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)


def register(workload: Workload) -> Workload:
    if not workload.short:
        raise ConfigError(f"workload {workload!r} lacks a short name")
    _REGISTRY[workload.short] = workload
    return workload


def workload_registry() -> Dict[str, Workload]:
    return dict(_REGISTRY)


def scale_dims(scale: str, tiny: int, small: int, large: int) -> int:
    """Pick a dimension for the given scale name."""
    try:
        return {"tiny": tiny, "small": small, "large": large}[scale]
    except KeyError:
        raise ConfigError(f"unknown scale {scale!r}") from None

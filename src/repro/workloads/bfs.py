"""BFS (MachSuite-style): level-synchronous, edge-centric.

Each level sweeps all edges, predicating updates on the source node
being in the current frontier. The driver inspects the level array
between calls to decide when the traversal has converged — irregular
indirect accesses over large structures, the paper's DA sweet spot.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import INT32, Kernel, Loop, LoopVar, MemObject, Scalar, When
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I = LoopVar("i")


def build_level_kernel(num_nodes: int, num_edges: int) -> Kernel:
    src = MemObject("src", num_edges, INT32)
    dst = MemObject("dst", num_edges, INT32)
    level = MemObject("level", num_nodes, INT32)
    cur = Scalar("cur")
    loop = Loop("i", 0, num_edges, [
        When(level[src[I]].eq(cur), [
            When(level[dst[I]].lt(0), [
                level.store(dst[I], cur + 1),
            ]),
        ]),
    ])
    return Kernel(
        "bfs_level", {"src": src, "dst": dst, "level": level},
        [loop], scalars={"cur": 0}, outputs=["level"],
    )


def make_graph(num_nodes: int, num_edges: int, rng: np.random.Generator):
    src = rng.integers(0, num_nodes, num_edges).astype(np.int32)
    dst = rng.integers(0, num_nodes, num_edges).astype(np.int32)
    # guarantee a connected-ish spine so the frontier keeps advancing
    spine = min(num_nodes - 1, num_edges)
    src[:spine] = np.arange(spine, dtype=np.int32)
    dst[:spine] = np.arange(1, spine + 1, dtype=np.int32)
    return src, dst


def reference_bfs(src, dst, num_nodes, max_levels) -> np.ndarray:
    level = np.full(num_nodes, -1, dtype=np.int64)
    level[0] = 0
    for cur in range(max_levels):
        frontier = level[src] == cur
        targets = dst[frontier]
        fresh = targets[level[targets] < 0]
        if fresh.size == 0:
            break
        level[fresh] = cur + 1
    return level


class Bfs(Workload):
    name = "bfs"
    short = "bfs"

    def build(self, scale: str = "small", num_nodes: int = None,
              edge_factor: int = 6,
              max_levels: int = None) -> WorkloadInstance:
        num_nodes = num_nodes or scale_dims(
            scale, tiny=32, small=2048, large=8192
        )
        max_levels = max_levels or scale_dims(scale, tiny=3, small=4, large=6)
        num_edges = num_nodes * edge_factor
        rng = np.random.default_rng(29)
        src, dst = make_graph(num_nodes, num_edges, rng)
        kernel = build_level_kernel(num_nodes, num_edges)
        level0 = np.full(num_nodes, -1, dtype=np.int32)
        level0[0] = 0
        arrays = {"src": src, "dst": dst, "level": level0.copy()}

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for cur in range(max_levels):
                before = instance.arrays["level"].copy()
                yield KernelCall(kernel, scalars={"cur": cur})
                if np.array_equal(before, instance.arrays["level"]):
                    break

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            return {
                "level": reference_bfs(
                    inputs["src"], inputs["dst"], num_nodes, max_levels
                )
            }

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["level"],
            schedule=schedule, reference=reference,
            host_insts_per_call=35, host_accesses_per_call=4,
        )


register(Bfs())

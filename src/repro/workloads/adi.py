"""ADI (PolyBench): alternating-direction implicit 2-D solver.

Per timestep: a column sweep and a row sweep, each a forward recurrence
(Thomas-algorithm style) followed by a backward substitution. Column
sweeps traverse the grid with stride-N accesses, and the division-heavy
recurrences make ADI one of the complex-arithmetic workloads that favor
faster-clocked accelerators (§VI-C "Clocking").
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")

A_C, B_C, C_C = 0.25, 1.5, 0.25  # tridiagonal coefficients (diag dominant)


def build_kernel(n: int) -> Kernel:
    """One ADI timestep: column sweep then row sweep over u via v."""
    u = MemObject("u", (n, n), FLOAT32)
    v = MemObject("v", (n, n), FLOAT32)
    p = MemObject("p", (n, n), FLOAT32)
    q = MemObject("q", (n, n), FLOAT32)

    # column sweep: recurrence along j for each column i of u (read
    # column-major), results into v
    fwd_col = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            p.store((I, J), -C_C / (A_C * p[I, J - 1] + B_C)),
            q.store((I, J), (u[J, I] - A_C * q[I, J - 1])
                    / (A_C * p[I, J - 1] + B_C)),
        ]),
    ])
    i2, j2 = LoopVar("i2"), LoopVar("j2")
    back_col = Loop("i2", 1, n - 1, [
        Loop("j2", n - 2, 0, [
            v.store((j2, i2), p[i2, j2] * v[j2 + 1, i2] + q[i2, j2]),
        ], step=-1),
    ])
    # row sweep: recurrence along j for each row i of v, results into u
    i3, j3 = LoopVar("i3"), LoopVar("j3")
    fwd_row = Loop("i3", 1, n - 1, [
        Loop("j3", 1, n - 1, [
            p.store((i3, j3), -C_C / (A_C * p[i3, j3 - 1] + B_C)),
            q.store((i3, j3), (v[i3, j3] - A_C * q[i3, j3 - 1])
                    / (A_C * p[i3, j3 - 1] + B_C)),
        ]),
    ])
    i4, j4 = LoopVar("i4"), LoopVar("j4")
    back_row = Loop("i4", 1, n - 1, [
        Loop("j4", n - 2, 0, [
            u.store((i4, j4), p[i4, j4] * u[i4, j4 + 1] + q[i4, j4]),
        ], step=-1),
    ])
    return Kernel(
        "adi", {"u": u, "v": v, "p": p, "q": q},
        [fwd_col, back_col, fwd_row, back_row],
        outputs=["u", "v"],
    )


def reference_step(u, v, p, q, n):
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            denom = A_C * p[i, j - 1] + B_C
            p[i, j] = -C_C / denom
            q[i, j] = (u[j, i] - A_C * q[i, j - 1]) / denom
    for i in range(1, n - 1):
        for j in range(n - 2, 0, -1):
            v[j, i] = p[i, j] * v[j + 1, i] + q[i, j]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            denom = A_C * p[i, j - 1] + B_C
            p[i, j] = -C_C / denom
            q[i, j] = (v[i, j] - A_C * q[i, j - 1]) / denom
    for i in range(1, n - 1):
        for j in range(n - 2, 0, -1):
            u[i, j] = p[i, j] * u[i, j + 1] + q[i, j]


class Adi(Workload):
    name = "adi"
    short = "adi"

    def build(self, scale: str = "small",
              n: int = None, timesteps: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=8, small=80, large=160)
        timesteps = timesteps or scale_dims(scale, tiny=1, small=2, large=2)
        kernel = build_kernel(n)
        rng = np.random.default_rng(13)
        arrays = {
            "u": rng.random(n * n).astype(np.float32),
            "v": rng.random(n * n).astype(np.float32),
            "p": np.zeros(n * n, dtype=np.float32),
            "q": np.zeros(n * n, dtype=np.float32),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for _ in range(timesteps):
                yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            u = inputs["u"].reshape(n, n).astype(np.float64)
            v = inputs["v"].reshape(n, n).astype(np.float64)
            p = inputs["p"].reshape(n, n).astype(np.float64)
            q = inputs["q"].reshape(n, n).astype(np.float64)
            for _ in range(timesteps):
                reference_step(u, v, p, q, n)
            return {"u": u.ravel(), "v": v.ravel()}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["u", "v"],
            schedule=schedule, reference=reference,
            host_insts_per_call=40, host_accesses_per_call=4,
            atol=1e-2,
        )


register(Adi())

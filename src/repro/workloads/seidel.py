"""Seidel-2D (PolyBench): in-place 9-point Gauss-Seidel sweeps.

Loop-carried dependences through the in-place array make this the
paper's canonical *pipelinable* (non-parallelizable but partitionable)
workload, and its high arithmetic-op count per access drives the §VI-E
clocking-sensitivity observation.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT64, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")


def build_kernel(n: int) -> Kernel:
    A = MemObject("A", (n, n), FLOAT64)
    total = (
        A[I - 1, J - 1] + A[I - 1, J] + A[I - 1, J + 1]
        + A[I, J - 1] + A[I, J] + A[I, J + 1]
        + A[I + 1, J - 1] + A[I + 1, J] + A[I + 1, J + 1]
    )
    nest = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            A.store((I, J), total / 9.0),
        ]),
    ])
    return Kernel("seidel2d", {"A": A}, [nest], outputs=["A"])


def reference_sweep(a: np.ndarray) -> None:
    n = a.shape[0]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            a[i, j] = (
                a[i - 1, j - 1] + a[i - 1, j] + a[i - 1, j + 1]
                + a[i, j - 1] + a[i, j] + a[i, j + 1]
                + a[i + 1, j - 1] + a[i + 1, j] + a[i + 1, j + 1]
            ) / 9.0


class Seidel(Workload):
    name = "seidel-2d"
    short = "sei"

    def build(self, scale: str = "small",
              n: int = None, timesteps: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=10, small=128, large=224)
        timesteps = timesteps or scale_dims(scale, tiny=2, small=2, large=2)
        kernel = build_kernel(n)
        rng = np.random.default_rng(3)
        arrays = {"A": rng.random(n * n).astype(np.float64)}

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for _ in range(timesteps):
                yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            a = inputs["A"].reshape(n, n).copy()
            for _ in range(timesteps):
                reference_sweep(a)
            return {"A": a.ravel()}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["A"],
            schedule=schedule, reference=reference,
            host_insts_per_call=30, host_accesses_per_call=2,
            atol=1e-6,
        )


register(Seidel())

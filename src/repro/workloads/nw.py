"""Needleman-Wunsch (Rodinia): sequence-alignment dynamic programming.

The anti-diagonal dependence (each cell needs its west, north and
north-west neighbors) gives the innermost row loop a loop-carried chain —
the pipelinable-but-not-parallelizable case, and the subject of the
Dist-DA-BN/BNS user-annotation case study (Fig. 12a).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import INT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")

PENALTY = 10


def build_kernel(n: int) -> Kernel:
    """Fill the (n+1)x(n+1) score matrix M against similarity matrix S."""
    m_dim = n + 1
    M = MemObject("M", (m_dim, m_dim), INT32)
    S = MemObject("S", (n, n), INT32)
    diag = M[I - 1, J - 1] + S[I - 1, J - 1]
    up = M[I - 1, J] - PENALTY
    left = M[I, J - 1] - PENALTY
    nest = Loop("i", 1, m_dim, [
        Loop("j", 1, m_dim, [
            M.store((I, J), diag.max(up).max(left)),
        ]),
    ])
    return Kernel("nw", {"M": M, "S": S}, [nest], outputs=["M"])


def reference_nw(m: np.ndarray, s: np.ndarray) -> np.ndarray:
    n = s.shape[0]
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            m[i, j] = max(
                m[i - 1, j - 1] + s[i - 1, j - 1],
                m[i - 1, j] - PENALTY,
                m[i, j - 1] - PENALTY,
            )
    return m


class Nw(Workload):
    name = "nw"
    short = "nw"

    def build(self, scale: str = "small", n: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=8, small=128, large=256)
        m_dim = n + 1
        rng = np.random.default_rng(19)
        s = rng.integers(-4, 5, n * n).astype(np.int32)
        m0 = np.zeros((m_dim, m_dim), dtype=np.int32)
        m0[0, :] = -PENALTY * np.arange(m_dim)
        m0[:, 0] = -PENALTY * np.arange(m_dim)
        kernel = build_kernel(n)
        arrays = {"M": m0.ravel().copy(), "S": s}

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            m = inputs["M"].reshape(m_dim, m_dim).astype(np.int64)
            s2 = inputs["S"].reshape(n, n)
            return {"M": reference_nw(m, s2).ravel()}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["M"],
            schedule=schedule, reference=reference,
            host_insts_per_call=60, host_accesses_per_call=6,
        )


register(Nw())

"""Disparity (SD-VBS): stereo block matching.

For every candidate shift the pipeline computes an absolute-difference
image, aggregates it with a 3x3 box filter, and keeps the per-pixel
minimum. Many concurrent data structures with multi-read-operand
computations — the workload class where the paper's sub-computation
partitioning pays off most (§VI-B).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import INT32, Kernel, Loop, LoopVar, MemObject, Scalar, UnaryOp, When
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J = LoopVar("i"), LoopVar("j")


def build_sad_kernel(n: int) -> Kernel:
    """sad[i,j] = |left[i,j] - right[i, max(j-shift, 0)]|."""
    left = MemObject("left", (n, n), INT32)
    right = MemObject("right", (n, n), INT32)
    sad = MemObject("sad", (n, n), INT32)
    shift = Scalar("shift")
    nest = Loop("i", 0, n, [
        Loop("j", 0, n, [
            sad.store((I, J), UnaryOp(
                "abs", left[I, J] - right[I, (J - shift).max(0)]
            )),
        ]),
    ])
    return Kernel("disp_sad", {"left": left, "right": right, "sad": sad},
                  [nest], scalars={"shift": 0}, outputs=["sad"])


def build_box_kernel(n: int) -> Kernel:
    """agg[i,j] = 3x3 box sum of sad."""
    sad = MemObject("sad", (n, n), INT32)
    agg = MemObject("agg", (n, n), INT32)
    total = (
        sad[I - 1, J - 1] + sad[I - 1, J] + sad[I - 1, J + 1]
        + sad[I, J - 1] + sad[I, J] + sad[I, J + 1]
        + sad[I + 1, J - 1] + sad[I + 1, J] + sad[I + 1, J + 1]
    )
    nest = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [agg.store((I, J), total)]),
    ])
    return Kernel("disp_box", {"sad": sad, "agg": agg}, [nest],
                  outputs=["agg"])


def build_select_kernel(n: int) -> Kernel:
    """Keep the best (minimum) aggregate and its shift per pixel."""
    agg = MemObject("agg", (n, n), INT32)
    best = MemObject("best", (n, n), INT32)
    disp = MemObject("disp", (n, n), INT32)
    shift = Scalar("shift")
    nest = Loop("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            When(agg[I, J].lt(best[I, J]), [
                best.store((I, J), agg[I, J]),
                disp.store((I, J), shift),
            ]),
        ]),
    ])
    return Kernel("disp_select", {"agg": agg, "best": best, "disp": disp},
                  [nest], scalars={"shift": 0}, outputs=["best", "disp"])


def reference_disparity(left, right, n, num_shifts):
    best = np.full((n, n), 2**30, dtype=np.int64)
    disp = np.zeros((n, n), dtype=np.int64)
    for shift in range(num_shifts):
        cols = np.maximum(np.arange(n) - shift, 0)
        sad = np.abs(left - right[:, cols])
        agg = np.zeros_like(sad)
        agg[1:-1, 1:-1] = sum(
            sad[1 + di:n - 1 + di, 1 + dj:n - 1 + dj]
            for di in (-1, 0, 1) for dj in (-1, 0, 1)
        )
        improved = agg[1:-1, 1:-1] < best[1:-1, 1:-1]
        best[1:-1, 1:-1] = np.where(improved, agg[1:-1, 1:-1],
                                    best[1:-1, 1:-1])
        disp[1:-1, 1:-1] = np.where(improved, shift, disp[1:-1, 1:-1])
    return best, disp


class Disparity(Workload):
    name = "disparity"
    short = "dis"

    def build(self, scale: str = "small", n: int = None,
              num_shifts: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=8, small=56, large=96)
        num_shifts = num_shifts or scale_dims(scale, tiny=2, small=4, large=8)
        rng = np.random.default_rng(37)
        left = rng.integers(0, 256, (n, n)).astype(np.int32)
        # right image: left shifted by a hidden true disparity + noise
        true_shift = 2
        cols = np.maximum(np.arange(n) - true_shift, 0)
        right = left[:, cols] + rng.integers(-3, 4, (n, n)).astype(np.int32)

        sad_k = build_sad_kernel(n)
        box_k = build_box_kernel(n)
        sel_k = build_select_kernel(n)
        arrays = {
            "left": left.ravel().copy(),
            "right": right.ravel().copy(),
            "sad": np.zeros(n * n, dtype=np.int32),
            "agg": np.zeros(n * n, dtype=np.int32),
            "best": np.full(n * n, 2**30, dtype=np.int32),
            "disp": np.zeros(n * n, dtype=np.int32),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for shift in range(num_shifts):
                yield KernelCall(sad_k, scalars={"shift": shift})
                yield KernelCall(box_k)
                yield KernelCall(sel_k, scalars={"shift": shift})

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            best, disp = reference_disparity(
                inputs["left"].reshape(n, n).astype(np.int64),
                inputs["right"].reshape(n, n).astype(np.int64),
                n, num_shifts,
            )
            out_best = inputs["best"].astype(np.int64).reshape(n, n)
            out_best[1:-1, 1:-1] = best[1:-1, 1:-1]
            out_disp = inputs["disp"].astype(np.int64).reshape(n, n)
            out_disp[1:-1, 1:-1] = disp[1:-1, 1:-1]
            return {"best": out_best.ravel(), "disp": out_disp.ravel()}

        objects = dict(sad_k.objects)
        objects.update(box_k.objects)
        objects.update(sel_k.objects)
        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=["best", "disp"],
            schedule=schedule, reference=reference,
            host_insts_per_call=45, host_accesses_per_call=4,
        )


register(Disparity())

"""PageRank (serial edge-centric implementation [46]).

Per iteration: scatter contributions along edges (indirect reads of the
source rank, indirect read-modify-write of the destination rank), then a
streaming rescale pass. Exercises the cp_read/cp_write random-access
mechanisms plus streams in one workload.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, INT32, Kernel, Loop, LoopVar, MemObject, Scalar
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I = LoopVar("i")
DAMPING = 0.85


def build_scatter_kernel(num_nodes: int, num_edges: int) -> Kernel:
    src = MemObject("src", num_edges, INT32)
    dst = MemObject("dst", num_edges, INT32)
    contrib = MemObject("contrib", num_nodes, FLOAT32)
    rank_new = MemObject("rank_new", num_nodes, FLOAT32)
    loop = Loop("i", 0, num_edges, [
        rank_new.store(dst[I], rank_new[dst[I]] + contrib[src[I]]),
    ])
    return Kernel(
        "pr_scatter",
        {"src": src, "dst": dst, "contrib": contrib, "rank_new": rank_new},
        [loop], outputs=["rank_new"],
    )


def build_apply_kernel(num_nodes: int) -> Kernel:
    """rank = base + d*rank_new; contrib = rank/deg; rank_new = 0."""
    rank = MemObject("rank", num_nodes, FLOAT32)
    rank_new = MemObject("rank_new", num_nodes, FLOAT32)
    contrib = MemObject("contrib", num_nodes, FLOAT32)
    inv_deg = MemObject("inv_deg", num_nodes, FLOAT32)
    base = Scalar("base")
    loop = Loop("i", 0, num_nodes, [
        rank.store(I, base + DAMPING * rank_new[I]),
        contrib.store(I, (base + DAMPING * rank_new[I]) * inv_deg[I]),
        rank_new.store(I, 0.0),
    ])
    return Kernel(
        "pr_apply",
        {"rank": rank, "rank_new": rank_new, "contrib": contrib,
         "inv_deg": inv_deg},
        [loop], scalars={"base": 0.15}, outputs=["rank", "contrib"],
    )


def make_graph(num_nodes: int, num_edges: int, rng: np.random.Generator):
    """Power-law-ish random digraph as parallel edge arrays.

    Edges are sorted by destination (CSR-expanded, pull-style), giving
    the destination-rank read-modify-write the cache-line spatial reuse
    the paper notes for the serial pagerank implementation.
    """
    src = rng.zipf(1.8, size=num_edges) % num_nodes
    dst = np.sort(rng.integers(0, num_nodes, size=num_edges))
    return src.astype(np.int32), dst.astype(np.int32)


class PageRank(Workload):
    name = "pagerank"
    short = "pr"

    def build(self, scale: str = "small", num_nodes: int = None,
              edge_factor: int = 6, iters: int = None) -> WorkloadInstance:
        num_nodes = num_nodes or scale_dims(
            scale, tiny=32, small=8192, large=32768
        )
        iters = iters or scale_dims(scale, tiny=2, small=2, large=3)
        num_edges = num_nodes * edge_factor
        rng = np.random.default_rng(23)
        src, dst = make_graph(num_nodes, num_edges, rng)
        deg = np.bincount(src, minlength=num_nodes).astype(np.float32)
        inv_deg = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)
        base = (1.0 - DAMPING) / num_nodes
        rank0 = np.full(num_nodes, 1.0 / num_nodes, dtype=np.float32)

        scatter = build_scatter_kernel(num_nodes, num_edges)
        apply_k = build_apply_kernel(num_nodes)
        arrays = {
            "src": src, "dst": dst,
            "rank": rank0.copy(),
            "rank_new": np.zeros(num_nodes, dtype=np.float32),
            "contrib": (rank0 * inv_deg).astype(np.float32),
            "inv_deg": inv_deg.astype(np.float32),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for _ in range(iters):
                yield KernelCall(scatter)
                yield KernelCall(apply_k, scalars={"base": base})

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            rank = inputs["rank"].astype(np.float64)
            contrib = inputs["contrib"].astype(np.float64)
            inv = inputs["inv_deg"].astype(np.float64)
            for _ in range(iters):
                rank_new = np.zeros(num_nodes)
                np.add.at(rank_new, dst, contrib[src])
                rank = base + DAMPING * rank_new
                contrib = rank * inv
            return {"rank": rank, "contrib": contrib}

        objects = dict(scatter.objects)
        objects.update(apply_k.objects)
        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=["rank"],
            schedule=schedule, reference=reference,
            host_insts_per_call=30, host_accesses_per_call=4,
            atol=1e-3,
        )


register(PageRank())

"""Pointer chase: serial dependent loads over a uniform random permutation.

The paper's stress test for irregular access locality: the OoO core and
Mono-CA wait for every load to climb the cache hierarchy, whereas DA
configurations chase pointers at the LLC (§VI-C: "all the workloads with
irregular memory accesses (bfs, pointer chase) show better performance in
DA configurations").
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import INT64, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I = LoopVar("i")


def build_kernel(n: int, steps: int) -> Kernel:
    """cur[0] = next[cur[0]], repeated ``steps`` times."""
    nxt = MemObject("next", n, INT64)
    cur = MemObject("cur", 1, INT64)
    loop = Loop("i", 0, steps, [
        cur.store(0, nxt[cur[0]]),
    ])
    return Kernel("pchase", {"next": nxt, "cur": cur}, [loop],
                  outputs=["cur"])


def make_cycle(n: int, rng: np.random.Generator) -> np.ndarray:
    """A single-cycle permutation (Sattolo), uniform random traversal."""
    perm = np.arange(n, dtype=np.int64)
    for i in range(n - 1, 0, -1):
        j = rng.integers(0, i)
        perm[i], perm[j] = perm[j], perm[i]
    # perm is a random permutation; build successor mapping along a cycle
    order = np.empty(n, dtype=np.int64)
    order[perm[:-1]] = perm[1:]
    order[perm[-1]] = perm[0]
    return order


class PointerChase(Workload):
    name = "pointer-chase"
    short = "pch"

    def build(self, scale: str = "small",
              n: int = None, steps: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=64, small=16384, large=131072)
        steps = steps or scale_dims(scale, tiny=64, small=4000, large=20000)
        rng = np.random.default_rng(11)
        nxt = make_cycle(n, rng)
        kernel = build_kernel(n, steps)
        arrays = {
            "next": nxt,
            "cur": np.zeros(1, dtype=np.int64),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            cur = int(inputs["cur"][0])
            chain = inputs["next"]
            for _ in range(steps):
                cur = int(chain[cur])
            return {"cur": np.array([cur], dtype=np.int64)}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["cur"],
            schedule=schedule, reference=reference,
            host_insts_per_call=20, host_accesses_per_call=2,
            serial_fraction=1.0,
        )


register(PointerChase())

"""Workloads (paper Table IV), re-implemented as kernel-IR programs.

Each workload module provides a ``build(scale)`` factory returning a
:class:`~repro.workloads.base.WorkloadInstance`: kernel-IR programs plus
a synthetic dataset generator and a NumPy reference implementation for
end-to-end validation.
"""

from .base import KernelCall, Workload, WorkloadInstance, workload_registry
from . import (
    disparity, tracking, fdtd2d, cholesky, adi, seidel,
    pathfinder, nw, bfs, pagerank, pointer_chase, pca, spmv,
)

#: Table IV/VI presentation order
PAPER_ORDER = (
    "dis", "tra", "adi", "fdt", "cho", "sei",
    "pf", "nw", "bfs", "pr", "pch", "pca",
)

ALL_WORKLOADS = workload_registry()

__all__ = [
    "KernelCall", "Workload", "WorkloadInstance", "ALL_WORKLOADS",
    "workload_registry",
]

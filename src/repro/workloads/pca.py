"""PCA / correlation (CortexSuite): column means + covariance matrix.

Column-major traversals (stride-d element streams) put access latency on
the critical path with a shallow near-data hierarchy — the paper calls
out exactly this for pca (§VI-C "Access bandwidth").
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, Kernel, Loop, LoopVar, MemObject
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

J, K = LoopVar("j"), LoopVar("k")


def build_mean_kernel(n: int, d: int) -> Kernel:
    """mean[j] = sum_k D[k][j] / n — column-major inner loop."""
    D = MemObject("D", (n, d), FLOAT32)
    mean = MemObject("mean", d, FLOAT32)
    inner = Loop("k", 0, n, [
        mean.store(J, mean[J] + D[K, J]),
    ])
    outer = Loop("j", 0, d, [
        inner,
        mean.store(J, mean[J] * (1.0 / n)),
    ])
    return Kernel("pca_mean", {"D": D, "mean": mean}, [outer],
                  outputs=["mean"])


def build_cov_kernel(n: int, d: int) -> Kernel:
    """cov[i][j] = sum_k (D[k][i]-mean[i]) * (D[k][j]-mean[j])."""
    D = MemObject("D", (n, d), FLOAT32)
    mean = MemObject("mean", d, FLOAT32)
    cov = MemObject("cov", (d, d), FLOAT32)
    i = LoopVar("i")
    inner = Loop("k", 0, n, [
        cov.store((i, J), cov[i, J]
                  + (D[K, i] - mean[i]) * (D[K, J] - mean[J])),
    ])
    nest = Loop("i", 0, d, [
        Loop("j", 0, d, [inner]),
    ])
    return Kernel("pca_cov", {"D": D, "mean": mean, "cov": cov}, [nest],
                  outputs=["cov"])


class Pca(Workload):
    name = "pca"
    short = "pca"

    def build(self, scale: str = "small", n: int = None,
              d: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=12, small=128, large=256)
        d = d or scale_dims(scale, tiny=4, small=20, large=32)
        rng = np.random.default_rng(31)
        data = rng.random(n * d).astype(np.float32)
        mean_k = build_mean_kernel(n, d)
        cov_k = build_cov_kernel(n, d)
        arrays = {
            "D": data.copy(),
            "mean": np.zeros(d, dtype=np.float32),
            "cov": np.zeros(d * d, dtype=np.float32),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            yield KernelCall(mean_k)
            yield KernelCall(cov_k)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            mat = inputs["D"].reshape(n, d).astype(np.float64)
            mean = mat.mean(axis=0)
            centered = mat - mean
            cov = centered.T @ centered
            return {"mean": mean, "cov": cov.ravel()}

        objects = dict(mean_k.objects)
        objects.update(cov_k.objects)
        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=["mean", "cov"],
            schedule=schedule, reference=reference,
            host_insts_per_call=30, host_accesses_per_call=2,
            atol=1e-2,
        )


register(Pca())

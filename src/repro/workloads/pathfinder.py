"""Pathfinder (Rodinia): dynamic programming over a 2-D grid.

Row-by-row wavefront: each destination cell takes the cheapest of three
neighbors in the previous row plus its own wall cost. The driver
ping-pongs between two cost rows, so each row is one kernel call — the
structure the multithreading case study (Fig. 12b) parallelizes.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import INT32, Kernel, Loop, LoopVar, MemObject, Scalar
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

J = LoopVar("j")


def build_row_kernel(rows: int, cols: int, src_name: str,
                     dst_name: str) -> Kernel:
    wall = MemObject("wall", (rows, cols), INT32)
    src = MemObject(src_name, cols, INT32)
    dst = MemObject(dst_name, cols, INT32)
    row = Scalar("row")
    left = src[(J - 1).max(0)]
    mid = src[J]
    right = src[(J + 1).min(cols - 1)]
    loop = Loop("j", 0, cols, [
        dst.store(J, wall[row, J] + left.min(mid).min(right)),
    ])
    return Kernel(
        f"pf_{src_name}_to_{dst_name}",
        {"wall": wall, src_name: src, dst_name: dst},
        [loop], scalars={"row": 0}, outputs=[dst_name],
    )


class Pathfinder(Workload):
    name = "pathfinder"
    short = "pf"

    def build(self, scale: str = "small", rows: int = None,
              cols: int = None) -> WorkloadInstance:
        rows = rows or scale_dims(scale, tiny=4, small=48, large=96)
        cols = cols or scale_dims(scale, tiny=16, small=1024, large=2048)
        rng = np.random.default_rng(17)
        wall = rng.integers(1, 10, rows * cols).astype(np.int32)
        k_ab = build_row_kernel(rows, cols, "costA", "costB")
        k_ba = build_row_kernel(rows, cols, "costB", "costA")
        arrays = {
            "wall": wall,
            "costA": wall[:cols].copy(),
            "costB": np.zeros(cols, dtype=np.int32),
        }

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            for row in range(1, rows):
                kernel = k_ab if row % 2 == 1 else k_ba
                yield KernelCall(kernel, scalars={"row": row})

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            w = inputs["wall"].reshape(rows, cols).astype(np.int64)
            cost = w[0].copy()
            for r in range(1, rows):
                left = np.concatenate(([cost[0]], cost[:-1]))
                right = np.concatenate((cost[1:], [cost[-1]]))
                cost = w[r] + np.minimum(np.minimum(left, cost), right)
            out_name = "costB" if (rows - 1) % 2 == 1 else "costA"
            return {out_name: cost}

        final = "costB" if (rows - 1) % 2 == 1 else "costA"
        objects = dict(k_ab.objects)
        objects.update(k_ba.objects)
        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=objects, arrays=arrays,
            outputs=[final],
            schedule=schedule, reference=reference,
            host_insts_per_call=25, host_accesses_per_call=2,
        )


register(Pathfinder())

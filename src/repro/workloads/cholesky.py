"""Cholesky factorization (PolyBench): in-place triangular loop nest.

The innermost k-loop is a multi-stream dot-product reduction — the paper
notes cholesky's "multi-stream reduction pattern and spatial reuse" and
that Mono-CA's larger private-cache bandwidth gives it the best speedup
there (§VI-C).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..ir import FLOAT32, Kernel, Loop, LoopVar, MemObject, UnaryOp
from .base import (
    KernelCall,
    Workload,
    WorkloadInstance,
    register,
    scale_dims,
)

I, J, K = LoopVar("i"), LoopVar("j"), LoopVar("k")


def build_kernel(n: int) -> Kernel:
    A = MemObject("A", (n, n), FLOAT32)
    # for i: { for j<i: { for k<j: A[i,j]-=A[i,k]*A[j,k]; A[i,j]/=A[j,j] }
    #          for k<i: A[i,i]-=A[i,k]^2 ; A[i,i]=sqrt(A[i,i]) }
    k_loop = Loop("k", 0, J, [
        A.store((I, J), A[I, J] - A[I, K] * A[J, K]),
    ])
    j_loop = Loop("j", 0, I, [
        k_loop,
        A.store((I, J), A[I, J] / A[J, J]),
    ])
    k2 = LoopVar("k2")
    diag_loop = Loop("k2", 0, I, [
        A.store((I, I), A[I, I] - A[I, k2] * A[I, k2]),
    ])
    outer = Loop("i", 0, n, [
        j_loop,
        diag_loop,
        A.store((I, I), UnaryOp("sqrt", A[I, I])),
    ])
    return Kernel("cholesky", {"A": A}, [outer], outputs=["A"])


def make_spd(n: int, rng: np.random.Generator) -> np.ndarray:
    m = rng.random((n, n)).astype(np.float64) * 0.1
    spd = m @ m.T + n * np.eye(n)
    return spd


class Cholesky(Workload):
    name = "cholesky"
    short = "cho"

    def build(self, scale: str = "small", n: int = None) -> WorkloadInstance:
        n = n or scale_dims(scale, tiny=8, small=56, large=96)
        kernel = build_kernel(n)
        rng = np.random.default_rng(5)
        spd = make_spd(n, rng)
        arrays = {"A": spd.astype(np.float32).ravel().copy()}

        def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
            yield KernelCall(kernel)

        def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            a = inputs["A"].reshape(n, n).astype(np.float64)
            lower = np.linalg.cholesky(a)
            # the in-place kernel leaves the upper triangle untouched
            out = a.copy()
            out[np.tril_indices(n)] = lower[np.tril_indices(n)]
            return {"A": out.ravel()}

        return WorkloadInstance(
            name=self.name, short=self.short,
            objects=dict(kernel.objects), arrays=arrays,
            outputs=["A"],
            schedule=schedule, reference=reference,
            host_insts_per_call=40, host_accesses_per_call=2,
            atol=1e-2,
        )


register(Cholesky())

"""Central registry of ``REPRO_*`` environment variables.

Every behavior knob the simulator reads from the environment is declared
here once, with its type, default and the tests that pin its semantics.
Call sites (:mod:`repro.fastpath`, the experiment runner, the analysis
guard, the DSE scheduler) go through the typed accessors below instead
of ``os.environ.get`` so the README's environment-variable table can be
checked against code (``tools/check_docs.py`` / the docs-consistency
test) rather than drifting from it.

Accessors read the environment at call time, never at import time, so
tests can flip behavior in-process with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: string values (lower-cased) that disable a boolean knob
_FALSY = ("0", "false", "off", "no")


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one ``REPRO_*`` environment variable."""

    name: str
    #: "bool" | "int" | "path"
    kind: str
    #: human-readable default, as documented in README
    default: str
    #: one-line behavior summary (the README table's text)
    description: str
    #: test file(s) that pin the documented behavior
    pinned_by: str

    def raw(self) -> Optional[str]:
        return os.environ.get(self.name)


REPRO_FAST = EnvVar(
    "REPRO_FAST", "bool", "1",
    "batched columnar replay of recorded traces; `0` selects the scalar "
    "per-access reference path (bit-identical results, ~3x slower)",
    "tests/sim/test_fastpath_equiv.py",
)
REPRO_JOBS = EnvVar(
    "REPRO_JOBS", "int", "1",
    "default worker-process count for the experiment matrix and "
    "`repro.dse` sweeps when `--jobs` is not given",
    "tests/test_runner_parallel.py, tests/dse/test_sweep_determinism.py",
)
REPRO_VEC = EnvVar(
    "REPRO_VEC", "bool", "1",
    "whole-loop vectorized interpretation of affine kernels and the "
    "set-level vectorized cache walk; `0` keeps the per-iteration / "
    "per-access scalar reference paths (bit-identical results)",
    "tests/ir/test_vecinterp.py",
)
REPRO_SCHED = EnvVar(
    "REPRO_SCHED", "bool", "1",
    "two-level replay scheduler (same-timestamp run queue + calendar "
    "buckets, sole-runner fast-forward) and analytic macro-chunk "
    "coalescing of provably contention-free offload runs; `0` keeps the "
    "single tuple-heap reference engine (bit-identical results)",
    "tests/runtime/test_sched_equiv.py",
)
REPRO_NO_VERIFY = EnvVar(
    "REPRO_NO_VERIFY", "bool", "0",
    "`1` disables the default-on static IR verifier guard in "
    "`compile_kernel` and the golden interpreter",
    "tests/analysis/test_verifier.py",
)
REPRO_TRACE_SPILL = EnvVar(
    "REPRO_TRACE_SPILL", "path", "(unset)",
    "directory for spilling evicted functional-trace cache entries to "
    "disk instead of recomputing them",
    "tests/sim/test_tracecache_spill.py",
)

REPRO_SERVE_PORT = EnvVar(
    "REPRO_SERVE_PORT", "int", "8177",
    "default TCP port of the `repro.serve` sweep service when `--port` "
    "is not given (`--socket` bypasses TCP entirely)",
    "tests/serve/test_config.py",
)
REPRO_SERVE_STORE = EnvVar(
    "REPRO_SERVE_STORE", "path", "serve-store.sqlite",
    "default result-store path of the sweep service when `--store` is "
    "not given; a `.sqlite`/`.db` suffix selects the indexed v2 store, "
    "anything else the v1 JSONL store",
    "tests/serve/test_config.py",
)
REPRO_SERVE_WORKERS = EnvVar(
    "REPRO_SERVE_WORKERS", "int", "2",
    "default worker count of the sweep service when `--workers` is not "
    "given: dataset groups execute on this many processes (and queue "
    "consumers) in parallel",
    "tests/serve/test_config.py",
)
REPRO_SERVE_TTL_S = EnvVar(
    "REPRO_SERVE_TTL_S", "int", "0",
    "age-based TTL (seconds) for rows in the service's sqlite store; "
    "expired rows are evicted by the housekeeping loop; `0` disables "
    "expiry",
    "tests/serve/test_config.py, tests/dse/test_store_v2.py",
)
REPRO_SERVE_MAX_ROWS = EnvVar(
    "REPRO_SERVE_MAX_ROWS", "int", "0",
    "row cap for the service's sqlite store: each append evicts the "
    "oldest-written rows beyond the cap; `0` means unbounded",
    "tests/serve/test_config.py, tests/dse/test_store_v2.py",
)
REPRO_SERVE_TIMEOUT_S = EnvVar(
    "REPRO_SERVE_TIMEOUT_S", "int", "0",
    "per-dataset-group execution timeout (seconds) in the sweep "
    "service's worker pool; a group that exceeds it is retried with "
    "backoff and finally recorded as `failed` rows; `0` disables the "
    "timeout",
    "tests/serve/test_config.py, tests/serve/test_workers.py",
)

#: every declared variable, in documentation order
ENV_VARS: Tuple[EnvVar, ...] = (
    REPRO_FAST, REPRO_JOBS, REPRO_VEC, REPRO_SCHED, REPRO_NO_VERIFY,
    REPRO_TRACE_SPILL, REPRO_SERVE_PORT, REPRO_SERVE_STORE,
    REPRO_SERVE_WORKERS, REPRO_SERVE_TTL_S, REPRO_SERVE_MAX_ROWS,
    REPRO_SERVE_TIMEOUT_S,
)


def registry() -> Dict[str, EnvVar]:
    return {v.name: v for v in ENV_VARS}


# -- typed accessors -------------------------------------------------------
def get_bool(var: EnvVar, default: bool) -> bool:
    """Boolean knob: unset -> ``default``; set -> false only for 0-ish."""
    raw = var.raw()
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def get_int(var: EnvVar, default: int) -> int:
    raw = (var.raw() or "").strip()
    return int(raw) if raw else default


def get_path(var: EnvVar) -> Optional[str]:
    return var.raw() or None


def fast_path_enabled() -> bool:
    """True unless ``REPRO_FAST`` is explicitly disabled (0/false/off)."""
    return get_bool(REPRO_FAST, True)


def vec_path_enabled() -> bool:
    """True unless ``REPRO_VEC`` is explicitly disabled (0/false/off)."""
    return get_bool(REPRO_VEC, True)


def sched_path_enabled() -> bool:
    """True unless ``REPRO_SCHED`` is explicitly disabled (0/false/off)."""
    return get_bool(REPRO_SCHED, True)


def verification_enabled() -> bool:
    """True unless ``REPRO_NO_VERIFY`` is set to something non-zero."""
    return (REPRO_NO_VERIFY.raw() or "") in ("", "0")


def default_jobs() -> int:
    """``$REPRO_JOBS`` or 1 (serial)."""
    return get_int(REPRO_JOBS, 1)


def trace_spill_dir() -> Optional[str]:
    return get_path(REPRO_TRACE_SPILL)


# -- repro.serve defaults (CLI flags override these) -----------------------
def serve_port() -> int:
    return get_int(REPRO_SERVE_PORT, 8177)


def serve_store_path() -> str:
    return get_path(REPRO_SERVE_STORE) or "serve-store.sqlite"


def serve_workers() -> int:
    return get_int(REPRO_SERVE_WORKERS, 2)


def serve_ttl_s() -> int:
    return get_int(REPRO_SERVE_TTL_S, 0)


def serve_max_rows() -> int:
    return get_int(REPRO_SERVE_MAX_ROWS, 0)


def serve_timeout_s() -> int:
    return get_int(REPRO_SERVE_TIMEOUT_S, 0)

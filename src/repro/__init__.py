"""repro — a reproduction of the Dist-DA near-data offload model.

Paper: "An architecture interface and offload model for low-overhead,
near-data, distributed accelerators" (MICRO 2022).

Public API tour:

* :mod:`repro.ir` — write kernels (loop nests over memory objects).
* :mod:`repro.compiler` — compile kernels into distributed offloads.
* :mod:`repro.interface` — the cp_* offload interface itself.
* :mod:`repro.sim` — simulate workloads on the six paper configurations.
* :mod:`repro.workloads` — the Table IV benchmark suite.
* :mod:`repro.experiments` — regenerate every paper table and figure.
"""

from .params import (
    MachineParams,
    default_machine,
    experiment_machine,
    mono_da_cgra_machine,
)

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "default_machine",
    "experiment_machine",
    "mono_da_cgra_machine",
    "__version__",
]

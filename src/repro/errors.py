"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed kernel IR (bad types, unknown objects, invalid loops)."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting a kernel (e.g. out-of-bounds)."""


class DFGError(ReproError):
    """Failure while building or analyzing a dataflow graph."""


class AnalysisError(ReproError):
    """Static analysis rejected a kernel (see ``repro.analysis``).

    Carries the list of :class:`repro.analysis.Finding` objects that
    triggered the rejection in ``findings``.
    """

    def __init__(self, message: str, findings=()):
        super().__init__(message)
        self.findings = list(findings)


class PartitionError(ReproError):
    """Graph partitioning could not produce a legal solution."""


class PlacementError(ReproError):
    """Access/compute node placement failed."""


class MappingError(ReproError):
    """A DFG could not be mapped onto the target accelerator substrate."""


class InterfaceError(ReproError):
    """Illegal use of the cp_* offload interface (bad ids, bad ordering)."""


class AllocationError(ReproError):
    """Resource allocation failure (buffers, slab memory, accelerators)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class DeadlockError(SimulationError):
    """All simulation processes are blocked and no events remain."""


class ConfigError(ReproError):
    """Invalid machine or experiment configuration."""


class ValidationError(ReproError):
    """Offloaded execution output does not match the golden reference."""

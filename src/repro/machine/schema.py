"""Machine-description document schema (version 1).

A machine document is a JSON object mirroring the
:class:`~repro.params.MachineParams` dataclass tree: two document-only
keys (``schema_version``, ``name``) plus one key per ``MachineParams``
field. Nested parameter groups (``core``, ``l1`` .. ``l3``, ``noc``,
``dram``, ``inorder``, ``cgra``, ``access_unit``, ``energy``, ``area``)
are JSON objects of leaf fields; everything else is a scalar. Omitted
fields default to the paper's Table III values, so a sparse document
describes a *delta* against the reference machine.

The schema is derived reflectively from the dataclasses so it can never
drift from the parameters the simulator actually consumes; the
README's schema-reference table is checked against
:func:`schema_fields` by ``tools/check_docs.py``.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, Tuple

from ..params import MachineParams, default_machine

#: current document format version (``schema_version`` key)
SCHEMA_VERSION = 1

#: keys that belong to the document, not to :class:`MachineParams`
DOC_ONLY_KEYS = frozenset({"schema_version", "name"})


def _leaf_type(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    raise TypeError(f"unsupported machine parameter type: {value!r}")


def schema_fields() -> Dict[str, Tuple[str, object]]:
    """Every settable document field: dotted name -> (type, default).

    Dotted names are relative to the document root (``l3.size_bytes``,
    ``noc.host_node``, ``l3_clusters``); defaults are the Table III
    reference values.
    """
    out: Dict[str, Tuple[str, object]] = {}
    base = default_machine()
    for f in fields(MachineParams):
        value = getattr(base, f.name)
        if is_dataclass(value):
            for leaf in fields(type(value)):
                sub = getattr(value, leaf.name)
                out[f"{f.name}.{leaf.name}"] = (_leaf_type(sub), sub)
        else:
            out[f.name] = (_leaf_type(value), value)
    return out


def top_level_keys() -> frozenset:
    """Every key a document may carry at the root."""
    return DOC_ONLY_KEYS | {f.name for f in fields(MachineParams)}

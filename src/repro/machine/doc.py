"""Machine-description documents: validate, construct, round-trip.

The entry points:

* :func:`validate_document` — check a raw JSON object against the
  schema and the structural invariants, collecting **all** violations
  into one :class:`MachineDocError` instead of failing on the first.
* :func:`machine_from_document` — construct the described
  :class:`~repro.params.MachineParams` (validates first).
* :func:`document_from_machine` — the inverse: a full canonical
  document; ``document_from_machine(machine_from_document(d))`` is a
  fixpoint for canonical documents.
* :func:`document_digest` — the digest of the *described machine*
  (invariant under field order, sparseness, and process boundary).
* :func:`builtin_documents` / :func:`builtin_machine` — the committed
  reference documents under ``repro/machine/builtin/`` that back
  :data:`repro.params.BASE_MACHINES`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from ..params import (
    AccessUnitParams,
    AreaTable,
    CacheParams,
    CgraParams,
    CoreParams,
    DramParams,
    EnergyTable,
    InOrderParams,
    MachineParams,
    NocParams,
    default_machine,
    machine_digest,
)
from .schema import DOC_ONLY_KEYS, SCHEMA_VERSION

#: directory holding the committed builtin machine documents
BUILTIN_DIR = os.path.join(os.path.dirname(__file__), "builtin")

_GROUP_TYPES = {
    "core": CoreParams,
    "l1": CacheParams,
    "l2": CacheParams,
    "l3": CacheParams,
    "noc": NocParams,
    "dram": DramParams,
    "inorder": InOrderParams,
    "cgra": CgraParams,
    "access_unit": AccessUnitParams,
    "energy": EnergyTable,
    "area": AreaTable,
}


class MachineDocError(ConfigError):
    """A machine document failed validation.

    ``violations`` lists every independent problem found, so a document
    with a non-power-of-two set count *and* an undersized mesh reports
    both in one error.
    """

    def __init__(self, violations: List[str]):
        self.violations = list(violations)
        super().__init__(
            "invalid machine document: " + "; ".join(self.violations)
        )


def _coerce(path: str, default: object,
            value: object) -> Tuple[object, Optional[str]]:
    """Type-check ``value`` against the default's JSON type."""
    if isinstance(default, bool):
        if not isinstance(value, bool):
            return None, f"{path} expects a bool, got {value!r}"
        return value, None
    if isinstance(default, int):
        if isinstance(value, bool) or not isinstance(value, int):
            return None, f"{path} expects an int, got {value!r}"
        return value, None
    if isinstance(default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None, f"{path} expects a number, got {value!r}"
        return float(value), None
    return None, f"{path}: unsupported field type {type(default).__name__}"


def _merge(doc: Mapping) -> Tuple[Optional[dict], List[str]]:
    """Overlay ``doc`` onto the Table III defaults; schema violations
    (unknown keys, type mismatches) are collected, not raised."""
    violations: List[str] = []
    if not isinstance(doc, Mapping):
        return None, [
            f"document must be a JSON object, got {type(doc).__name__}"
        ]
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        violations.append(
            f"unsupported schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    name = doc.get("name")
    if name is not None and not isinstance(name, str):
        violations.append(f"name must be a string, got {name!r}")
    merged = {
        key: (dict(value) if isinstance(value, dict) else value)
        for key, value in asdict(default_machine()).items()
    }
    # the default machine carries mc_node already *resolved* (node 3 on
    # the 4x2 mesh); a sparse document that changes the mesh without
    # pinning mc_node must inherit the "east end of the top row"
    # sentinel, not a node index from a mesh it doesn't have
    merged["noc"]["mc_node"] = -1
    for key, value in doc.items():
        if key in DOC_ONLY_KEYS:
            continue
        if key not in merged:
            violations.append(f"unknown key {key!r}")
            continue
        slot = merged[key]
        if isinstance(slot, dict):
            if not isinstance(value, Mapping):
                violations.append(
                    f"{key} must be an object of {key}.* fields, "
                    f"got {value!r}"
                )
                continue
            for sub, sub_value in value.items():
                if sub not in slot:
                    violations.append(f"unknown key '{key}.{sub}'")
                    continue
                coerced, err = _coerce(f"{key}.{sub}", slot[sub], sub_value)
                if err:
                    violations.append(err)
                else:
                    slot[sub] = coerced
        else:
            coerced, err = _coerce(key, slot, value)
            if err:
                violations.append(err)
            else:
                merged[key] = coerced
    return merged, violations


def _is_pow2(n: object) -> bool:
    return isinstance(n, int) and n >= 1 and (n & (n - 1)) == 0


def _structural(m: dict) -> List[str]:
    """Every structural invariant, collected (not first-failure)."""
    v: List[str] = []

    # -- cache levels ---------------------------------------------------
    for level in ("l1", "l2", "l3"):
        c = m[level]
        for leaf in ("size_bytes", "ways", "latency_cycles", "mshrs",
                     "line_bytes"):
            if c[leaf] < 1:
                v.append(f"{level}.{leaf} must be >= 1: {c[leaf]}")
        if not _is_pow2(c["line_bytes"]) or c["line_bytes"] < 8:
            v.append(
                f"{level}.line_bytes must be a power of two >= 8: "
                f"{c['line_bytes']}"
            )
    line = m["l3"]["line_bytes"]
    if not (m["l1"]["line_bytes"] == m["l2"]["line_bytes"] == line):
        v.append(
            f"cache line size must be uniform across levels: "
            f"l1={m['l1']['line_bytes']} l2={m['l2']['line_bytes']} "
            f"l3={line}"
        )
    clusters = m["l3_clusters"]
    for level in ("l1", "l2"):
        c = m[level]
        if min(c["size_bytes"], c["ways"], c["line_bytes"]) < 1:
            continue
        sets, rem = divmod(c["size_bytes"], c["ways"] * c["line_bytes"])
        if rem:
            v.append(
                f"{level}.size_bytes {c['size_bytes']} not divisible by "
                f"ways*line ({c['ways']}*{c['line_bytes']})"
            )
        elif not _is_pow2(sets):
            v.append(f"{level} has a non-power-of-two set count: {sets}")

    # -- L3 organization ------------------------------------------------
    if clusters < 1:
        v.append(f"l3_clusters must be >= 1: {clusters}")
    if m["l3_banks_per_cluster"] < 1:
        v.append(
            f"l3_banks_per_cluster must be >= 1: "
            f"{m['l3_banks_per_cluster']}"
        )
    l3 = m["l3"]
    if clusters >= 1 and min(l3["size_bytes"], l3["ways"],
                             l3["line_bytes"]) >= 1:
        slice_bytes, rem = divmod(l3["size_bytes"], clusters)
        if rem:
            v.append(
                f"l3.size_bytes {l3['size_bytes']} not divisible by "
                f"l3_clusters {clusters}"
            )
        else:
            sets, rem = divmod(slice_bytes, l3["ways"] * l3["line_bytes"])
            if rem:
                v.append(
                    f"l3 slice size {slice_bytes} not divisible by "
                    f"ways*line ({l3['ways']}*{l3['line_bytes']})"
                )
            elif not _is_pow2(sets):
                v.append(
                    f"l3 slice has a non-power-of-two set count: {sets}"
                )
    if m["l3_bank_latency"] < 1:
        v.append(f"l3_bank_latency must be >= 1: {m['l3_bank_latency']}")

    # -- NoC ------------------------------------------------------------
    noc = m["noc"]
    if noc["mc_node"] == -1:  # NocParams' "east end of the top row"
        noc["mc_node"] = noc["mesh_cols"] - 1
    nodes = noc["mesh_cols"] * noc["mesh_rows"]
    if noc["mesh_cols"] < 1 or noc["mesh_rows"] < 1:
        v.append(
            f"mesh must be at least 1x1: "
            f"{noc['mesh_cols']}x{noc['mesh_rows']}"
        )
    else:
        for label in ("host_node", "mc_node"):
            if not 0 <= noc[label] < nodes:
                v.append(
                    f"noc.{label} {noc[label]} outside the "
                    f"{noc['mesh_cols']}x{noc['mesh_rows']} mesh "
                    f"({nodes} nodes)"
                )
        if nodes < clusters:
            v.append(
                f"mesh {noc['mesh_cols']}x{noc['mesh_rows']} "
                f"({nodes} nodes) too small for {clusters} L3 clusters"
            )
        if 0 <= noc["host_node"] < nodes and noc["host_node"] >= clusters:
            v.append(
                f"noc.host_node {noc['host_node']} is not co-located "
                f"with an L3 cluster (l3_clusters={clusters})"
            )
    if noc["hop_latency_cycles"] < 0:
        v.append(
            f"noc.hop_latency_cycles must be >= 0: "
            f"{noc['hop_latency_cycles']}"
        )
    if noc["flit_bytes"] < 1:
        v.append(f"noc.flit_bytes must be >= 1: {noc['flit_bytes']}")
    if noc["credits_per_link"] < 1:
        v.append(
            f"noc.credits_per_link must be >= 1: {noc['credits_per_link']}"
        )

    # -- DRAM -----------------------------------------------------------
    if m["dram"]["size_bytes"] < 1:
        v.append(f"dram.size_bytes must be >= 1: {m['dram']['size_bytes']}")
    if m["dram"]["latency_cycles"] < 0:
        v.append(
            f"dram.latency_cycles must be >= 0: "
            f"{m['dram']['latency_cycles']}"
        )
    if m["dram"]["bandwidth_bytes_per_cycle"] <= 0:
        v.append(
            f"dram.bandwidth_bytes_per_cycle must be positive: "
            f"{m['dram']['bandwidth_bytes_per_cycle']}"
        )

    # -- compute --------------------------------------------------------
    for group, freq in (("core", m["core"]["freq_ghz"]),
                        ("inorder", m["inorder"]["freq_ghz"]),
                        ("cgra", m["cgra"]["freq_ghz"])):
        if freq <= 0:
            v.append(f"{group}.freq_ghz must be positive: {freq}")
    for group, leaf in (("core", "issue_width"), ("core", "rob_entries"),
                        ("core", "mem_level_parallelism"),
                        ("inorder", "issue_width"),
                        ("inorder", "mem_level_parallelism"),
                        ("cgra", "rows"), ("cgra", "cols")):
        if m[group][leaf] < 1:
            v.append(f"{group}.{leaf} must be >= 1: {m[group][leaf]}")
    for leaf in ("int_alus", "float_alus", "complex_alus"):
        if m["cgra"][leaf] < 0:
            v.append(f"cgra.{leaf} must be >= 0: {m['cgra'][leaf]}")

    # -- access unit + Mono-CA private cache ----------------------------
    au = m["access_unit"]
    for leaf in ("buffer_bytes", "acp_ways", "acp_bytes",
                 "fill_burst_elems", "max_buffers"):
        if au[leaf] < 1:
            v.append(f"access_unit.{leaf} must be >= 1: {au[leaf]}")
    if line >= 8 and au["acp_ways"] >= 1 and au["acp_bytes"] >= 1:
        sets, rem = divmod(au["acp_bytes"], au["acp_ways"] * line)
        if rem:
            v.append(
                f"access_unit.acp_bytes {au['acp_bytes']} not divisible "
                f"by acp_ways*line ({au['acp_ways']}*{line})"
            )
        elif not _is_pow2(sets):
            v.append(f"ACP has a non-power-of-two set count: {sets}")
    if m["mono_private_bytes"] < 1:
        v.append(
            f"mono_private_bytes must be >= 1: {m['mono_private_bytes']}"
        )
    elif line >= 8:
        sets, rem = divmod(m["mono_private_bytes"], 4 * line)
        if rem:
            v.append(
                f"mono_private_bytes {m['mono_private_bytes']} not "
                f"divisible by ways*line (4*{line}; the Mono-CA private "
                f"cache is 4-way)"
            )
        elif not _is_pow2(sets):
            v.append(
                f"Mono-CA private cache has a non-power-of-two set "
                f"count: {sets}"
            )

    # -- charge sheets --------------------------------------------------
    for sheet in ("energy", "area"):
        for leaf, value in m[sheet].items():
            if value < 0:
                v.append(f"{sheet}.{leaf} must be >= 0: {value}")
    return v


def validate_document(doc: Mapping) -> dict:
    """Validate ``doc``; return the merged full field dict.

    Raises :class:`MachineDocError` naming **every** violation: unknown
    keys, type mismatches, non-power-of-two set counts, a mesh too
    small for the cluster count, zero bandwidth, ...
    """
    merged, violations = _merge(doc)
    if merged is not None:
        violations.extend(_structural(merged))
    if violations:
        raise MachineDocError(violations)
    assert merged is not None
    return merged


def machine_from_document(doc: Mapping) -> MachineParams:
    """Construct the :class:`MachineParams` a document describes."""
    merged = validate_document(doc)
    try:
        groups = {
            key: cls(**merged[key]) for key, cls in _GROUP_TYPES.items()
        }
        scalars = {
            key: value for key, value in merged.items()
            if key not in _GROUP_TYPES
        }
        return MachineParams(**groups, **scalars)
    except (ValueError, ConfigError) as exc:  # pragma: no cover - belt
        raise MachineDocError([str(exc)]) from exc


def document_from_machine(machine: MachineParams,
                          name: Optional[str] = None) -> dict:
    """The full canonical document describing ``machine``."""
    doc: dict = {"schema_version": SCHEMA_VERSION}
    if name is not None:
        doc["name"] = name
    doc.update(asdict(machine))
    return doc


def document_digest(doc: Mapping) -> str:
    """Digest of the machine a document *describes*.

    Equal to ``machine_digest(machine_from_document(doc))``: invariant
    under JSON field order, sparse-vs-full spelling, the document-only
    keys, and process boundaries.
    """
    return machine_digest(machine_from_document(doc))


def dumps_document(doc: Mapping) -> str:
    """Canonical serialization (stable key order, trailing newline)."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def load_document(path: str) -> dict:
    """Read a machine document from a JSON file (no validation yet)."""
    with open(path) as f:
        try:
            return json.load(f)
        except json.JSONDecodeError as exc:
            raise MachineDocError(
                [f"{path} is not valid JSON: {exc}"]
            ) from exc


_builtin_docs: Optional[Dict[str, dict]] = None
_builtin_machines: Dict[str, MachineParams] = {}


def builtin_documents() -> Dict[str, dict]:
    """All committed builtin documents, keyed by their ``name``."""
    global _builtin_docs
    if _builtin_docs is None:
        docs: Dict[str, dict] = {}
        for entry in sorted(os.listdir(BUILTIN_DIR)):
            if not entry.endswith(".json"):
                continue
            doc = load_document(os.path.join(BUILTIN_DIR, entry))
            stem = entry[: -len(".json")]
            name = doc.get("name", stem)
            if name != stem:
                raise MachineDocError(
                    [f"builtin {entry} declares name {name!r}"]
                )
            docs[name] = doc
        _builtin_docs = docs
    return _builtin_docs


def builtin_machine(name: str) -> MachineParams:
    """Construct (and cache) one builtin machine by document name."""
    machine = _builtin_machines.get(name)
    if machine is None:
        docs = builtin_documents()
        if name not in docs:
            raise ConfigError(
                f"unknown builtin machine document {name!r}; "
                f"known: {sorted(docs)}"
            )
        machine = machine_from_document(docs[name])
        _builtin_machines[name] = machine
    return machine

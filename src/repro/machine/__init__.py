"""Declarative machine-description frontend.

A machine document is a validated JSON description (same spirit as the
DSE sweep specs) from which a :class:`~repro.params.MachineParams` is
*constructed*: variable cluster/bank counts, arbitrary mesh shapes with
configurable host/memory-controller tiles, per-level cache geometry,
and document-sourced energy/area charge sheets. The six shipped
configurations are committed as reference documents under ``builtin/``
and back :data:`repro.params.BASE_MACHINES`; the golden matrix snapshot
pins them bit-identical to the historical factory constructors.
"""

from .doc import (
    BUILTIN_DIR,
    MachineDocError,
    builtin_documents,
    builtin_machine,
    document_digest,
    document_from_machine,
    dumps_document,
    load_document,
    machine_from_document,
    validate_document,
)
from .schema import DOC_ONLY_KEYS, SCHEMA_VERSION, schema_fields, top_level_keys

__all__ = [
    "BUILTIN_DIR",
    "DOC_ONLY_KEYS",
    "MachineDocError",
    "SCHEMA_VERSION",
    "builtin_documents",
    "builtin_machine",
    "document_digest",
    "document_from_machine",
    "dumps_document",
    "load_document",
    "machine_from_document",
    "schema_fields",
    "top_level_keys",
    "validate_document",
]

"""Feature gate for the whole-loop vectorized execution path.

``REPRO_VEC=1`` (the default) enables two numpy-vectorized replacements
for per-element Python loops:

* the vectorized golden interpreter
  (:class:`~repro.ir.vecinterp.VecInterpreter`), which evaluates affine
  loop nests as array expressions over the full iteration grid and falls
  back per-nest to the tree-walking reference interpreter for
  non-vectorizable constructs; and
* the set-level vectorized cache walk
  (:meth:`~repro.mem.cache.Cache.access_batch`), which groups a batch of
  line accesses by cache set and advances each set's LRU state with
  numpy integer ops, preserving program order within a set.

``REPRO_VEC=0`` keeps the per-iteration / per-access scalar reference
paths. Both settings produce bit-identical results — outputs, traces,
op counts and every timing/energy counter — which is enforced by
``tests/ir/test_vecinterp.py`` and the differential oracle
(:mod:`repro.testing.oracle`).

The variable is consulted at every simulation entry (once per kernel
call / batch, never per access), so tests can flip it in-process with
``monkeypatch.setenv``. The variable itself is declared in
:mod:`repro.envcfg`, the authoritative ``REPRO_*`` registry.
"""

from __future__ import annotations

from . import envcfg
from .envcfg import vec_path_enabled

ENV_VAR = envcfg.REPRO_VEC.name

__all__ = ["ENV_VAR", "vec_path_enabled"]

"""Full-system simulation of one workload on one configuration.

Implements the six tested configurations of paper §VI-A and the
sensitivity variants (§VI-E). ``simulate_workload`` is the single entry
point every experiment uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

from ..compiler.pipeline import CompiledKernel, CompileMode, compile_kernel
from ..energy import EnergyLedger
from ..errors import ConfigError
from ..events import cycles_to_ps
from ..interface.intrinsics import CoverageRecorder
from ..ir.vecinterp import make_interpreter
from ..ir.program import Kernel
from ..mem.cache import Cache
from ..mem.coherence import CoherenceManager, Domain
from ..mem.hierarchy import MemoryHierarchy
from ..mem.slab import SlabAllocator
from ..obs import OBS
from ..params import (
    PAGE_BYTES,
    CacheParams,
    MachineParams,
    default_machine,
    mono_da_cgra_machine,
)
from ..accel.inorder import InOrderBackend
from ..accel.cgra import CgraBackend
from ..placement.horizontal import place_partitions
from ..placement.vertical import PlacementLevel
from ..runtime.engine import OffloadEngine
from ..runtime.streams import SiteStreams
from ..workloads.base import WorkloadInstance
from .ooo import OooModel
from .results import AccessDistribution, RunResult
from .tracecache import (
    FunctionalCallRecord,
    TraceCache,
    WorkloadTrace,
)


@dataclass(frozen=True)
class ConfigSpec:
    """One simulated machine configuration."""

    name: str
    mode: Optional[CompileMode]            # None = plain OoO baseline
    backend: Optional[str]                 # "io" | "cgra" | None
    #: Mono-CA's private 8 KB cache on the L3 bus
    private_cache: bool = False
    #: outstanding indirect accesses the accelerator sustains
    io_overlap: float = 1.0
    #: use the 8x8 fabric machine (monolithic CGRA configs)
    big_fabric: bool = False
    #: accelerator clock override (GHz); None keeps Table III defaults
    accel_freq: Optional[float] = None
    #: in-order issue width override (Dist-DA-IO+SW)
    io_issue_width: Optional[int] = None
    #: user-annotated blocked loop nests (Dist-DA-BN/BNS): partition
    #: orchestrators own the nest control, no per-invocation host sync
    localized_control: bool = False
    #: user-scheduled block fill/drain (cp_fill_ra/cp_drain_ra): deeper
    #: decoupling across innermost-loop invocations
    user_scheduled: bool = False
    #: multithreading case study: stream-based access specialization is
    #: skipped (paper Fig 12b discussion)
    no_stream_spec: bool = False


#: the paper's tested configurations (§VI-A)
CONFIGS: Dict[str, ConfigSpec] = {
    "ooo": ConfigSpec("ooo", None, None),
    "mono_ca": ConfigSpec(
        "mono_ca", CompileMode.MONO_CA, "cgra",
        private_cache=True, io_overlap=4.0, big_fabric=True, accel_freq=2.0,
    ),
    "mono_da_io": ConfigSpec(
        "mono_da_io", CompileMode.MONO_DA, "io", io_overlap=2.0,
    ),
    "mono_da_f": ConfigSpec(
        "mono_da_f", CompileMode.MONO_DA, "cgra",
        io_overlap=6.0, big_fabric=True,
    ),
    "dist_da_io": ConfigSpec(
        "dist_da_io", CompileMode.DIST, "io", io_overlap=2.0,
    ),
    "dist_da_f": ConfigSpec(
        "dist_da_f", CompileMode.DIST, "cgra", io_overlap=6.0,
    ),
    # §VI-E software-optimization variants
    "dist_da_io_sw": ConfigSpec(
        "dist_da_io_sw", CompileMode.DIST, "io",
        io_overlap=6.0, io_issue_width=4,
    ),
    # §VI-D case-study variants (Fig 12a): B = the automated compiler
    # offload (= dist_da_f), BN adds user-annotated localized nest
    # control, BNS adds a user block-transfer schedule
    "dist_da_b": ConfigSpec(
        "dist_da_b", CompileMode.DIST, "cgra", io_overlap=6.0,
    ),
    "dist_da_bn": ConfigSpec(
        "dist_da_bn", CompileMode.DIST, "cgra", io_overlap=6.0,
        localized_control=True,
    ),
    "dist_da_bns": ConfigSpec(
        "dist_da_bns", CompileMode.DIST, "cgra", io_overlap=12.0,
        localized_control=True, user_scheduled=True,
    ),
    # multithreading case study (Fig 12b): per-thread slices are
    # scheduled individually, so stream specialization is skipped
    "dist_da_mt": ConfigSpec(
        "dist_da_mt", CompileMode.DIST, "cgra", io_overlap=6.0,
        no_stream_spec=True,
    ),
}

ConfigName = str


def config_spec(name: str) -> ConfigSpec:
    try:
        return CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown configuration {name!r}; known: {sorted(CONFIGS)}"
        ) from None


class SystemSimulator:
    """Simulates one workload instance on one configuration."""

    def __init__(self, config: str,
                 machine: Optional[MachineParams] = None,
                 coverage: Optional[CoverageRecorder] = None,
                 trace_cache: Optional[TraceCache] = None,
                 trace_key: Optional[Tuple[str, str]] = None):
        self.spec = config_spec(config)
        base = machine or default_machine()
        if self.spec.big_fabric:
            base = mono_da_cgra_machine(base)
        if self.spec.accel_freq is not None:
            base = base.with_accel_freq(self.spec.accel_freq)
        if self.spec.io_issue_width is not None:
            base = replace(
                base, inorder=replace(
                    base.inorder, issue_width=self.spec.io_issue_width
                )
            )
        self.machine = base
        self.coverage = coverage if coverage is not None else CoverageRecorder()
        #: shared functional-trace store; the interpretation of a
        #: (workload, scale) pair is configuration-independent, so one
        #: cache entry serves all six configs of the experiment matrix
        self.trace_cache = trace_cache
        self.trace_key = trace_key

    # ------------------------------------------------------------------
    def run(self, instance: WorkloadInstance) -> RunResult:
        energy = EnergyLedger(self.machine.energy)
        hierarchy = MemoryHierarchy(self.machine, energy)
        slab = SlabAllocator()
        stripe = hierarchy.l3.stripe_bytes
        # stripe alignment anchors each object at a home-cluster
        # boundary; the slab itself is page-granular, so topologies
        # whose stripe is smaller than a page align to the lcm (a page
        # boundary is then also a stripe boundary)
        align = math.lcm(stripe, PAGE_BYTES)
        allocations = {
            name: slab.allocate(name, obj.size_bytes, align=align)
            for name, obj in instance.objects.items()
        }
        coherence = CoherenceManager(hierarchy)
        ooo = OooModel(self.machine, hierarchy, energy, slab)
        if self.spec.mode is None:
            result = self._run_ooo(instance, ooo, hierarchy, energy)
        else:
            result = self._run_accel(
                instance, ooo, hierarchy, energy, slab, allocations,
                coherence,
            )
        return result

    # ------------------------------------------------------------------
    def _functional_calls(self, instance: WorkloadInstance) -> Iterator:
        """Yield ``(kernel, scalars, functional result)`` per kernel call.

        The functional interpretation (trace, op counts, loop-iteration
        maps) is configuration-independent, so when a :class:`TraceCache`
        is attached the first configuration records every call and later
        configurations replay without re-running the interpreter. Replays
        restore the final array contents so output validation still
        observes the executed program state.
        """
        cache, key = self.trace_cache, self.trace_key
        if cache is not None and key is not None:
            entry = cache.get(*key)
            if entry is not None:
                OBS.inc("tracecache.replays")
                for record in entry.calls:
                    yield record.kernel, record.scalars, record.view()
                for name, arr in entry.final_arrays.items():
                    instance.arrays[name][...] = arr
                return
        # vectorized whole-loop interpretation when REPRO_VEC allows it;
        # scalar tree-walking otherwise — bit-identical either way
        interp = make_interpreter(record_trace=True)
        recording = cache is not None and key is not None
        records = []
        for call in instance.calls():
            OBS.inc("interp.invocations")
            res = interp.run(call.kernel, instance.arrays, call.scalars)
            OBS.observe_max("interp.peak_trace_elems", len(res.trace or ()))
            if recording:
                records.append(FunctionalCallRecord.from_interp(
                    call.kernel, call.scalars, res
                ))
            yield call.kernel, call.scalars, res
        if recording:
            cache.put(WorkloadTrace(
                workload=key[0], scale=key[1], calls=records,
                final_arrays={
                    name: arr.copy()
                    for name, arr in instance.arrays.items()
                },
            ))

    # ------------------------------------------------------------------
    def _run_ooo(self, instance: WorkloadInstance, ooo: OooModel,
                 hierarchy: MemoryHierarchy,
                 energy: EnergyLedger) -> RunResult:
        total_ps = 0
        insts = 0
        mem_ops = 0
        for kernel, _scalars, res in self._functional_calls(instance):
            out = ooo.run(kernel, res.counts, res.trace,
                          extra_host_insts=instance.host_insts_per_call,
                          serial_fraction=instance.serial_fraction)
            total_ps += out.time_ps
            insts += out.insts
            mem_ops += out.mem_ops
        return self._result(
            instance, "ooo", total_ps, insts, mem_ops, energy, hierarchy,
            AccessDistribution(), mmio=0, accel_iters=0,
        )

    # ------------------------------------------------------------------
    def _run_accel(self, instance: WorkloadInstance, ooo: OooModel,
                   hierarchy: MemoryHierarchy, energy: EnergyLedger,
                   slab: SlabAllocator, allocations, coherence
                   ) -> RunResult:
        spec = self.spec
        backend = self._make_backend()
        private = None
        if spec.private_cache:
            private = Cache(
                CacheParams(size_bytes=self.machine.mono_private_bytes,
                            ways=4, latency_cycles=1, mshrs=8,
                            line_bytes=self.machine.l3.line_bytes),
                name="mono_ca_private",
            )
        engine = OffloadEngine(
            self.machine, hierarchy, energy, slab, backend,
            private_cache=private, io_overlap=spec.io_overlap,
            localized_control=spec.localized_control,
            user_scheduled=spec.user_scheduled,
        )
        compiled: Dict[Tuple[str, str], CompiledKernel] = {}
        fingerprints: Dict[int, Tuple[Kernel, Tuple[str, str]]] = {}
        dist = AccessDistribution()
        total_ps = 0
        insts = 0
        mem_ops = 0
        mmio = 0
        accel_iters = 0
        for kernel, _scalars, res in self._functional_calls(instance):
            mem_ops += res.counts.loads + res.counts.stores
            # compile cache: keyed by stable kernel identity (name +
            # structural fingerprint) — ``id()`` can be reused after a
            # kernel object is garbage collected, silently returning a
            # stale CompiledKernel. The fingerprint is memoized per live
            # object (the held reference keeps its id valid).
            memo = fingerprints.get(id(kernel))
            if memo is not None and memo[0] is kernel:
                ck_key = memo[1]
            else:
                ck_key = (kernel.name, kernel.fingerprint())
                fingerprints[id(kernel)] = (kernel, ck_key)
            ck = compiled.get(ck_key)
            if ck is None:
                OBS.inc("compile.kernels")
                ck = compile_kernel(
                    kernel, spec.mode,
                    trip_count_hint=max(res.inner_iterations, 1),
                    coverage=self.coverage,
                    disable_stream_spec=spec.no_stream_spec,
                )
                compiled[ck_key] = ck
            streams = SiteStreams(res.trace)
            offloaded_insts = 0
            # iteration maps are keyed by structural loop position, so a
            # cached CompiledKernel built from a *different* (structurally
            # identical) kernel object still finds its trip counts
            loop_ids = ck.kernel.innermost_loop_ids()
            for off in ck.offloads:
                clusters = self._place(off, allocations, hierarchy)
                for part_idx in range(off.partitioning.num_partitions):
                    obj = off.partitioning.safe_anchor(part_idx)
                    if obj is not None:
                        coherence.acquire(
                            allocations[obj], Domain.ACCEL,
                            cluster=clusters[part_idx],
                        )
                loop_key = loop_ids[id(off.loop)]
                trips = res.inner_iters_by_loop.get(loop_key, 0)
                invocations = res.inner_invocations_by_loop.get(
                    loop_key, 1
                )
                stats = engine.run(off, clusters, trips, invocations,
                                   streams)
                total_ps += stats.time_ps
                mmio += stats.mmio_bytes
                accel_iters += stats.accel_iterations
                dist.intra += stats.intra_bytes
                dist.d_a += stats.d_a_bytes
                dist.a_a += stats.a_a_bytes
                # one per-iteration instruction count serves both sides
                # of the ledger: credited to the accelerator here and
                # subtracted from the host residual below. (Mixing the
                # microcode's static_insts with the DFG count over/under-
                # counted the residual.)
                per_iter = max(off.dfg.num_insts() + 2, 1)
                offloaded_insts += trips * per_iter
                insts += trips * per_iter
            # host residual: outer-loop control + non-offloaded work
            resid = max(
                res.counts.total_insts - offloaded_insts, 0
            ) + instance.host_insts_per_call
            host_cycles = resid / self.machine.core.issue_width
            energy.charge("core", "ooo_inst_overhead", resid)
            total_ps += cycles_to_ps(host_cycles, self.machine.core.freq_ghz)
            insts += resid
        return self._result(
            instance, spec.name, total_ps, insts, mem_ops, energy,
            hierarchy, dist, mmio, accel_iters,
        )

    def _make_backend(self):
        if self.spec.backend == "io":
            return InOrderBackend(self.machine.inorder)
        if self.spec.backend == "cgra":
            return CgraBackend(self.machine.cgra)
        raise ConfigError(f"config {self.spec.name} has no backend")

    def _place(self, off, allocations, hierarchy) -> Dict[int, int]:
        if self.spec.mode is CompileMode.MONO_CA:
            return {
                p: self.machine.noc.host_node
                for p in range(off.partitioning.num_partitions)
            }
        clusters = place_partitions(
            off.partitioning, allocations, hierarchy.l3
        )
        # vertical placement: near-host partitions sit at the host tile
        for part_idx, level in off.vertical.items():
            if level is PlacementLevel.NEAR_HOST:
                clusters[part_idx] = self.machine.noc.host_node
        return clusters

    # ------------------------------------------------------------------
    def _result(self, instance: WorkloadInstance, name: str, total_ps: int,
                insts: int, mem_ops: int, energy: EnergyLedger,
                hierarchy: MemoryHierarchy, dist: AccessDistribution,
                mmio: int, accel_iters: int) -> RunResult:
        hierarchy.record_obs()
        OBS.inc("sim.cells")
        return RunResult(
            workload=instance.short,
            config=name,
            time_ps=max(total_ps, 1),
            insts=insts,
            mem_ops=mem_ops,
            energy=energy,
            cache_stats=hierarchy.stats(),
            traffic_breakdown=hierarchy.traffic.breakdown(),
            # data movement = level-to-level line moves plus distance-
            # weighted NoC traversals (a centralized accelerator pulling
            # every line across the mesh is penalized accordingly)
            movement_bytes=(
                hierarchy.movement_bytes
                + hierarchy.traffic.total_byte_hops()
            ),
            access_dist=dist,
            validated=instance.validate(),
            mmio_bytes=mmio,
            accel_iterations=accel_iters,
        )


def simulate_workload(instance: WorkloadInstance, config: str,
                      machine: Optional[MachineParams] = None,
                      coverage: Optional[CoverageRecorder] = None,
                      trace_cache: Optional[TraceCache] = None,
                      trace_key: Optional[Tuple[str, str]] = None
                      ) -> RunResult:
    """Simulate one workload instance on one named configuration.

    Pass a shared ``trace_cache`` plus a ``(workload, scale)``
    ``trace_key`` to reuse the functional interpretation across
    configurations of the same workload.
    """
    return SystemSimulator(
        config, machine, coverage,
        trace_cache=trace_cache, trace_key=trace_key,
    ).run(instance)

"""Trace-driven analytic model of the out-of-order baseline core.

The 5-way OoO core (Table III) is modeled with an issue-width/MLP overlap
model over the real address stream:

* compute cycles = dynamic instructions / issue width;
* memory stall cycles = post-L1 latency of each access, overlapped across
  ``min(MLP, L1 MSHRs)`` outstanding misses;
* total = max(compute, memory) + a small serialization term for the loser
  (an OoO window overlaps compute with memory but not perfectly).

This is deliberately *not* a pipeline simulator — the paper uses the OoO
core only as the normalization baseline, so capturing its memory-
boundness on the same access stream is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..energy import EnergyLedger
from ..events import cycles_to_ps
from ..fastpath import fast_path_enabled
from ..ir.interp import MemAccess, OpCounts
from ..ir.program import Kernel
from ..ir.trace import ColumnarTrace
from ..mem.hierarchy import MemoryHierarchy
from ..mem.slab import SlabAllocator
from ..params import MachineParams

#: fraction of the shorter of (compute, memory) that fails to overlap
SERIALIZATION_FACTOR = 0.15

#: accesses replayed per host_access_batch call on the fast path
BATCH_CHUNK = 1 << 16


@dataclass
class OooResult:
    cycles: float
    insts: int
    mem_ops: int
    #: host core clock the cycle count was produced at
    freq_ghz: float = 2.0

    @property
    def ipc(self) -> float:
        return self.insts / self.cycles if self.cycles else 0.0

    @property
    def time_ps(self) -> int:
        return cycles_to_ps(self.cycles, self.freq_ghz)


class OooModel:
    """Executes interpreter traces against the hierarchy's host path."""

    def __init__(self, machine: MachineParams, hierarchy: MemoryHierarchy,
                 energy: EnergyLedger, slab: SlabAllocator):
        self.machine = machine
        self.hierarchy = hierarchy
        self.energy = energy
        self.slab = slab

    def run(self, kernel: Kernel, counts: OpCounts,
            trace: Iterable[MemAccess],
            extra_host_insts: int = 0,
            serial_fraction: float = 0.0) -> OooResult:
        """Model one kernel call: returns cycles at the core clock."""
        obj_alloc = {
            name: self.slab.by_name(name) for name in kernel.objects
        }
        elem_bytes = {
            name: obj.dtype.size_bytes for name, obj in kernel.objects.items()
        }
        l1_lat = self.machine.l1.latency_cycles
        mlp = min(self.machine.core.mem_level_parallelism,
                  self.machine.l1.mshrs)
        # stalls accumulate as an exact integer cycle sum; the MLP overlap
        # factor is applied once at the end, which keeps the scalar and
        # batched replay paths bit-identical (float multiply of the same
        # integer sum) instead of order-dependent float accumulation
        stall_units = 0
        loads = 0
        stores = 0
        if isinstance(trace, ColumnarTrace) and fast_path_enabled():
            addrs = trace.addresses(
                {name: alloc.base for name, alloc in obj_alloc.items()},
                elem_bytes,
            )
            batch = self.hierarchy.host_access_batch
            for lo in range(0, len(addrs), BATCH_CHUNK):
                hi = lo + BATCH_CHUNK
                stall_units += batch(
                    addrs[lo:hi], trace.is_write[lo:hi], trace.site[lo:hi]
                )
            stores = trace.num_writes()
            loads = len(trace) - stores
        else:
            host_access = self.hierarchy.host_access
            for site, obj, idx, is_write in trace:
                addr = obj_alloc[obj].base + idx * elem_bytes[obj]
                latency = host_access(addr, is_write, stream_id=site)
                if is_write:
                    stores += 1
                else:
                    loads += 1
                if latency > l1_lat:
                    stall_units += latency - l1_lat
        overlap = serial_fraction + (1.0 - serial_fraction) / mlp
        stall_cycles = stall_units * overlap

        insts = counts.total_insts + extra_host_insts
        compute_cycles = insts / self.machine.core.issue_width
        # L1 ports: 2 loads + 1 store per cycle (Ice Lake-class LSU)
        port_cycles = max(loads / 2.0, float(stores))
        memory_cycles = stall_cycles + port_cycles
        cycles = (
            max(compute_cycles, memory_cycles)
            + SERIALIZATION_FACTOR * min(compute_cycles, memory_cycles)
        )
        self._charge_energy(counts, insts)
        return OooResult(cycles=cycles, insts=insts, mem_ops=loads + stores,
                         freq_ghz=self.machine.core.freq_ghz)

    def _charge_energy(self, counts: OpCounts, insts: int) -> None:
        e = self.energy
        e.charge("core", "ooo_inst_overhead", insts)
        e.charge("core", "int_op", counts.int_ops + counts.loop_overhead)
        e.charge("core", "float_op", counts.float_ops)
        e.charge("core", "complex_op", counts.complex_ops)
        e.charge("core", "reg_access", 2 * insts)

"""System assembly and baseline core models."""

from .ooo import OooModel, OooResult
from .results import RunResult, AccessDistribution
from .system import ConfigName, simulate_workload, SystemSimulator

__all__ = [
    "OooModel", "OooResult",
    "RunResult", "AccessDistribution",
    "ConfigName", "simulate_workload", "SystemSimulator",
]

"""Reusable functional-interpretation traces.

The golden interpreter's outputs for one workload instance — per-call
address traces, op counts and loop-iteration maps — depend only on the
(workload, scale) pair, never on the simulated machine configuration.
The experiment matrix runs every workload under six configurations, so
interpreting each kernel call once and replaying the recorded
functional results for the other five removes the hottest redundant work
of a full §VI reproduction.

:class:`TraceCache` is a bounded in-memory LRU store keyed by
``(workload, scale)``; each entry holds one :class:`FunctionalCallRecord`
per dynamic kernel call (i.e. the logical key space is
``(workload, scale, call index)``) plus the final array contents so
output validation still observes the executed program on replay. Evicted
entries can optionally spill to on-disk pickles and are transparently
reloaded on the next miss.

Loop-iteration maps are keyed by the loop's *position* among the
kernel's innermost loops (``Kernel.innermost_loop_ids``) end to end —
the interpreter records them that way and the system simulator consumes
them that way — so records survive pickling and never alias across
kernels the way ``id()`` keys can.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..ir.interp import InterpResult, MemAccess, OpCounts
from ..ir.program import Kernel
from ..ir.trace import ColumnarTrace
from ..obs import OBS

#: a recorded access trace: columnar (normal) or a plain MemAccess list
#: (legacy pickles / hand-built tests) — both speak the same sequence
#: protocol
TraceLike = Union[ColumnarTrace, List[MemAccess]]


def functional_key(workload: str, scale: str,
                   build_kwargs: Optional[Mapping[str, object]] = None
                   ) -> Tuple[str, str]:
    """Cache key covering everything that changes *functional* behavior.

    The golden interpretation of a workload depends on the workload, its
    scale and any dataset-shaping build kwargs (e.g. fdtd-2d's ``n`` /
    ``timesteps``) — and on nothing about the simulated machine. Sweeps
    over machine parameters (`repro.dse`) therefore share one entry per
    dataset across every machine point, while dataset axes get distinct
    keys. The kwargs are folded into the scale component canonically
    (sorted, ``scale@k=v,...``) so the key stays a picklable, printable
    ``(workload, variant)`` string pair.

    The active interpreter mode (``REPRO_VEC``) is folded in as well:
    the vectorized and scalar interpreters are bit-identical by
    contract, but keying them apart means a mode flip — which is exactly
    what the differential oracle does — re-interprets under the new mode
    instead of replaying a record produced by the other one, so
    cross-mode comparisons keep their evidentiary value.
    """
    from ..vecpath import vec_path_enabled

    variant = scale
    if build_kwargs:
        kw = ",".join(
            f"{k}={build_kwargs[k]!r}" for k in sorted(build_kwargs)
        )
        variant = f"{scale}@{kw}"
    if not vec_path_enabled():
        variant += "+scalar"
    return (workload, variant)


@dataclass
class FunctionalView:
    """What the system simulator consumes per kernel call.

    Mirrors the subset of :class:`InterpResult` the timing models read,
    with iteration maps keyed by stable innermost-loop position
    (:meth:`~repro.ir.program.Kernel.innermost_loop_ids`).
    """

    counts: OpCounts
    trace: TraceLike
    inner_iterations: int
    inner_iters_by_loop: Dict[int, int]
    inner_invocations_by_loop: Dict[int, int]


@dataclass
class FunctionalCallRecord:
    """Functional interpretation of one dynamic kernel call."""

    kernel: Kernel
    scalars: Dict[str, float]
    counts: OpCounts
    trace: TraceLike
    inner_iterations: int
    #: innermost-loop position (per ``kernel.innermost_loops()``) -> value
    inner_iters_by_index: Dict[int, int] = field(default_factory=dict)
    inner_invocations_by_index: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_interp(cls, kernel: Kernel, scalars: Dict[str, float],
                    res: InterpResult) -> "FunctionalCallRecord":
        # the interpreter already keys its iteration maps by structural
        # loop position, so the record stores them verbatim
        return cls(
            kernel=kernel,
            scalars=dict(scalars),
            counts=res.counts,
            # the interpreter hands back a ColumnarTrace: store it as-is
            # (no per-access tuple copy; spills pickle the column buffers)
            trace=res.trace if res.trace is not None else [],
            inner_iterations=res.inner_iterations,
            inner_iters_by_index=dict(res.inner_iters_by_loop),
            inner_invocations_by_index=dict(res.inner_invocations_by_loop),
        )

    def view(self) -> FunctionalView:
        return FunctionalView(
            counts=self.counts,
            trace=self.trace,
            inner_iterations=self.inner_iterations,
            inner_iters_by_loop=self.inner_iters_by_index,
            inner_invocations_by_loop=self.inner_invocations_by_index,
        )


@dataclass
class WorkloadTrace:
    """All functional state one (workload, scale) execution produced."""

    workload: str
    scale: str
    calls: List[FunctionalCallRecord]
    #: array contents after the last call, for replayed validation
    final_arrays: Dict[str, np.ndarray]

    @property
    def peak_trace_elems(self) -> int:
        return max((len(c.trace) for c in self.calls), default=0)


class TraceCache:
    """Bounded LRU store of workload traces with optional disk spill."""

    def __init__(self, max_entries: int = 2,
                 spill_dir: Optional[str] = None):
        self.max_entries = max(1, int(max_entries))
        self.spill_dir = spill_dir
        self._entries: "OrderedDict[Tuple[str, str], WorkloadTrace]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.spills = 0
        self.disk_loads = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, workload: str, scale: str) -> Optional[WorkloadTrace]:
        key = (workload, scale)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._load_spilled(key)
            if entry is not None:
                self.disk_loads += 1
                OBS.inc("tracecache.disk_loads")
                self._install(key, entry)
        else:
            self._entries.move_to_end(key)
        if entry is None:
            self.misses += 1
            OBS.inc("tracecache.misses")
            return None
        self.hits += 1
        OBS.inc("tracecache.hits")
        return entry

    def put(self, trace: WorkloadTrace) -> None:
        self._install((trace.workload, trace.scale), trace)

    def peak_trace_elems(self, workload: str, scale: str) -> int:
        """Longest per-call trace of a resident entry (0 when absent).

        A pure query: does not count as a hit/miss and does not touch
        LRU order or the spill store.
        """
        entry = self._entries.get((workload, scale))
        return entry.peak_trace_elems if entry is not None else 0

    # ------------------------------------------------------------------
    def _install(self, key: Tuple[str, str], entry: WorkloadTrace) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            old_key, old_entry = self._entries.popitem(last=False)
            self._spill(old_key, old_entry)

    def _path(self, key: Tuple[str, str]) -> str:
        return os.path.join(self.spill_dir, f"trace-{key[0]}-{key[1]}.pkl")

    def _spill(self, key: Tuple[str, str], entry: WorkloadTrace) -> None:
        if self.spill_dir is None:
            return
        os.makedirs(self.spill_dir, exist_ok=True)
        with open(self._path(key), "wb") as f:
            pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
        self.spills += 1
        OBS.inc("tracecache.spills")

    def _load_spilled(self, key: Tuple[str, str]
                      ) -> Optional[WorkloadTrace]:
        if self.spill_dir is None:
            return None
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as f:
            return pickle.load(f)

"""Simulation result records used by every experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..energy import EnergyLedger
from ..mem.hierarchy import AccessStats


@dataclass
class AccessDistribution:
    """Figure 9's dynamic access distribution, in bytes."""

    intra: float = 0.0
    d_a: float = 0.0
    a_a: float = 0.0

    @property
    def total(self) -> float:
        return self.intra + self.d_a + self.a_a

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1.0
        return {
            "intra": self.intra / total,
            "d_a": self.d_a / total,
            "a_a": self.a_a / total,
        }


@dataclass
class RunResult:
    """Everything one (workload, configuration) simulation produced."""

    workload: str
    config: str
    time_ps: int
    insts: int
    mem_ops: int
    energy: EnergyLedger
    cache_stats: AccessStats
    traffic_breakdown: Dict[str, float]
    movement_bytes: float
    access_dist: AccessDistribution
    validated: bool
    mmio_bytes: int = 0
    accel_iterations: int = 0

    # -- derived metrics ---------------------------------------------------
    @property
    def cycles(self) -> float:
        """Equivalent cycles in the 2 GHz host clock domain."""
        return self.time_ps / 500.0

    @property
    def time_us(self) -> float:
        return self.time_ps / 1e6

    @property
    def energy_nj(self) -> float:
        return self.energy.total_nj()

    @property
    def ipc(self) -> float:
        return self.insts / self.cycles if self.cycles else 0.0

    @property
    def mem_op_rate(self) -> float:
        """Memory operations per (2 GHz) cycle — Figure 11a's metric."""
        return self.mem_ops / self.cycles if self.cycles else 0.0

    def energy_efficiency_vs(self, baseline: "RunResult") -> float:
        """Figure 7's metric: baseline energy / this config's energy."""
        return baseline.energy_nj / self.energy_nj if self.energy_nj else 0.0

    def speedup_vs(self, baseline: "RunResult") -> float:
        return baseline.time_ps / self.time_ps if self.time_ps else 0.0

    def movement_reduction_vs(self, baseline: "RunResult") -> float:
        return (
            baseline.movement_bytes / self.movement_bytes
            if self.movement_bytes else 0.0
        )

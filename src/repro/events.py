"""Discrete-event simulation kernel.

Everything timed in the simulator (accelerators, access-unit FSMs, the
host) runs as a *process*: a Python generator that yields commands to the
:class:`Simulator`. Time is kept in integer **picoseconds** so components
in different clock domains (2 GHz host/IO cores vs. 1 GHz CGRA) compose
without rounding drift.

Commands a process may yield:

* :class:`Delay` — advance this process by N picoseconds.
* :class:`Get` — take one item from a :class:`Channel` (blocks when empty).
* :class:`Put` — add one item to a :class:`Channel` (blocks when full).
* :class:`WaitProcess` — block until another process terminates.

Example::

    sim = Simulator()
    ch = Channel(sim, capacity=2)

    def producer():
        for i in range(4):
            yield Put(ch, i)
            yield Delay(500)

    def consumer(out):
        while True:
            item = yield Get(ch)
            out.append(item)

    sim.spawn("prod", producer())
    sim.spawn("cons", consumer(out := []))
    sim.run()
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Any, Callable, Deque, Dict, Generator, Iterator, List, Optional, Tuple,
)

from .envcfg import sched_path_enabled
from .errors import DeadlockError, SimulationError

PS_PER_NS = 1000


def cycles_to_ps(cycles: float, freq_ghz: float) -> int:
    """Convert a cycle count at ``freq_ghz`` into integer picoseconds."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return int(round(cycles * PS_PER_NS / freq_ghz))


def ps_to_cycles(ps: int, freq_ghz: float) -> float:
    """Convert picoseconds into (fractional) cycles at ``freq_ghz``."""
    return ps * freq_ghz / PS_PER_NS


class Command:
    """Base class for commands a process can yield to the simulator."""

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        raise NotImplementedError


class Delay(Command):
    """Suspend the yielding process for ``ps`` picoseconds."""

    __slots__ = ("ps",)

    def __init__(self, ps: int):
        if ps < 0:
            raise SimulationError(f"negative delay: {ps}")
        self.ps = int(ps)

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        sim._schedule(sim.now + self.ps, proc, None)


class Get(Command):
    """Take the oldest item from ``channel``; blocks while empty."""

    __slots__ = ("channel",)

    def __init__(self, channel: "Channel"):
        self.channel = channel

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        self.channel._arm_get(proc)


class Put(Command):
    """Append ``item`` to ``channel``; blocks while full."""

    __slots__ = ("channel", "item")

    def __init__(self, channel: "Channel", item: Any):
        self.channel = channel
        self.item = item

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        self.channel._arm_put(proc, self.item)


class WaitProcess(Command):
    """Block until ``target`` terminates; resumes with its return value."""

    __slots__ = ("target",)

    def __init__(self, target: "Process"):
        self.target = target

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        if self.target.done:
            sim._schedule(sim.now, proc, self.target.result)
        else:
            self.target._waiters.append(proc)


class Process:
    """Handle to a running simulation process."""

    __slots__ = (
        "name", "_gen", "done", "result", "_waiters", "blocked_on", "daemon"
    )

    def __init__(self, name: str, gen: Generator[Command, Any, Any],
                 daemon: bool = False):
        self.name = name
        self._gen = gen
        self.done = False
        self.result: Any = None
        self._waiters: List["Process"] = []
        #: what the process is blocked on — ``("get", channel)`` /
        #: ``("put", channel)``, formatted lazily for deadlock
        #: diagnostics (blocks are frequent; f-strings per block are not
        #: free on the replay hot path)
        self.blocked_on: Optional[tuple] = None
        #: daemon processes (e.g. sinks, FSMs that serve forever) may remain
        #: blocked at end of simulation without signalling deadlock.
        self.daemon = daemon

    @property
    def blocked_desc(self) -> Optional[str]:
        """Human-readable description of the blocking operation."""
        if self.blocked_on is None:
            return None
        op, ch = self.blocked_on
        return f"{op}({ch.name})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else (self.blocked_desc or "ready")
        return f"<Process {self.name}: {state}>"


class Channel:
    """Bounded FIFO channel with blocking put/get semantics.

    Models a hardware buffer: ``capacity`` is the number of slots. A
    ``capacity`` of ``None`` means unbounded (useful for statistics sinks).
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters",
                 "_putters", "total_puts", "total_gets", "max_occupancy")

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "chan"):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"channel capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Process] = deque()
        self._putters: Deque[tuple] = deque()  # (process, item)
        self.total_puts = 0
        self.total_gets = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def try_peek(self) -> Any:
        """Non-blocking peek; raises if empty."""
        if not self._items:
            raise SimulationError(f"peek on empty channel {self.name}")
        return self._items[0]

    def _arm_get(self, proc: Process) -> None:
        if self._items:
            item = self._items.popleft()
            self.total_gets += 1
            self.sim._schedule(self.sim.now, proc, item)
            self._drain_putters()
        else:
            proc.blocked_on = ("get", self)
            self._getters.append(proc)

    def _arm_put(self, proc: Process, item: Any) -> None:
        if not self.full:
            self._accept(item)
            self.sim._schedule(self.sim.now, proc, None)
        else:
            proc.blocked_on = ("put", self)
            self._putters.append((proc, item))

    def _accept(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.blocked_on = None
            self.total_gets += 1
            self.sim._schedule(self.sim.now, getter, item)
        else:
            self._items.append(item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))

    def _drain_putters(self) -> None:
        while self._putters and not self.full:
            putter, item = self._putters.popleft()
            putter.blocked_on = None
            self._accept(item)
            self.sim._schedule(self.sim.now, putter, None)


class Simulator:
    """Discrete-event simulator with generator processes.

    Two interchangeable scheduler cores exist (``REPRO_SCHED``):

    * the **reference** core (``two_level=False``): a single tuple heap
      ordered by ``(time_ps, seq)``;
    * the **two-level** core (``two_level=True``, the default): a FIFO
      run queue for events at the current timestamp in front of a
      calendar queue — a dict of per-timestamp buckets plus a heap of
      the distinct pending timestamps. Events scheduled at ``now``
      (channel rendezvous, immediate wakes) ride the deque for O(1)
      append/pop, and bucket lists are already in seq order by
      construction, so draining a bucket needs no sort. A sole-runner
      fast-forward resumes a process inline after a ``Delay`` when
      nothing else can possibly run before its wakeup, and non-blocking
      channel puts/gets continue inline the same way whenever the
      resume they would schedule at ``now`` would be dispatched next
      anyway (empty run queue), skipping the schedule/dispatch round
      trip per rendezvous.

    Both cores dispatch events in exactly the same order — the run
    queue replicates the heap's sequence-number tie-break because
    same-timestamp schedules always arrive in increasing seq order —
    and the equivalence is pinned by ``tests/runtime/test_sched_equiv``.
    """

    def __init__(self, two_level: Optional[bool] = None) -> None:
        self._now = 0
        self._seq = 0
        self._processes: List[Process] = []
        self.events_executed = 0
        #: resumes served inline by the two-level core (sole-runner
        #: fast-forward on Delay, rendezvous fast path on Put/Get)
        self.fastforwards = 0
        #: most events simultaneously pending (heap depth, or run queue
        #: plus calendar buckets)
        self.peak_pending = 0
        self._pending = 0
        self._two_level = (
            sched_path_enabled() if two_level is None else bool(two_level)
        )
        # reference core
        self._heap: List[tuple] = []
        # two-level core
        self._runq: Deque[tuple] = deque()
        self._buckets: Dict[int, List[tuple]] = {}
        self._times: List[int] = []

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def spawn(self, name: str, gen: Generator[Command, Any, Any],
              daemon: bool = False) -> Process:
        """Register ``gen`` as a new process, runnable at the current time.

        Daemon processes are allowed to remain blocked forever; they model
        hardware that services requests for the lifetime of the system.
        """
        if not isinstance(gen, Iterator):
            raise SimulationError(
                f"process {name!r} must be a generator, got {type(gen)!r}"
            )
        proc = Process(name, gen, daemon=daemon)
        self._processes.append(proc)
        self._schedule(self._now, proc, None)
        return proc

    def call_at(self, time_ps: int, fn: Callable[[], None]) -> None:
        """Schedule a plain callback (no process) at an absolute time."""
        self._enqueue(time_ps, None, fn)

    def _schedule(self, time_ps: int, proc: Process, value: Any) -> None:
        proc.blocked_on = None
        self._enqueue(time_ps, proc, value)

    def _enqueue(self, time_ps: int, proc: Optional[Process],
                 value: Any) -> None:
        if not self._two_level:
            self._seq += 1
            heapq.heappush(self._heap, (time_ps, self._seq, proc, value))
            if len(self._heap) > self.peak_pending:
                self.peak_pending = len(self._heap)
            return
        self._pending += 1
        if self._pending > self.peak_pending:
            self.peak_pending = self._pending
        if time_ps <= self._now:
            # current-timestamp events keep FIFO (== seq) order on the
            # run queue; schedules never target the past in this model,
            # so <= now means "now"
            self._runq.append((proc, value))
            return
        bucket = self._buckets.get(time_ps)
        if bucket is None:
            self._buckets[time_ps] = [(proc, value)]
            heapq.heappush(self._times, time_ps)
        else:
            bucket.append((proc, value))

    def _step(self, proc: Process, value: Any) -> None:
        try:
            cmd = proc._gen.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            for waiter in proc._waiters:
                self._schedule(self._now, waiter, proc.result)
            proc._waiters.clear()
            return
        if not isinstance(cmd, Command):
            raise SimulationError(
                f"process {proc.name!r} yielded {cmd!r}, expected a Command"
            )
        cmd.arm(self, proc)

    def run(self, until_ps: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or a limit is hit).

        Returns the final simulation time in picoseconds. Raises
        :class:`DeadlockError` if processes remain blocked with no
        pending events. With ``until_ps`` the run pauses (and may be
        resumed by calling :meth:`run` again) once every event at or
        before the horizon has executed; no event is lost at the pause.
        """
        if self._two_level:
            finished = self._run_two_level(until_ps, max_events)
        else:
            finished = self._run_heap(until_ps, max_events)
        if not finished:
            return self._now  # paused at the horizon, events remain
        blocked = [
            p for p in self._processes
            if not p.done and p.blocked_on and not p.daemon
        ]
        if blocked:
            detail = ", ".join(f"{p.name} on {p.blocked_desc}" for p in blocked)
            raise DeadlockError(f"deadlock: blocked processes: {detail}")
        return self._now

    def _run_heap(self, until_ps: Optional[int],
                  max_events: Optional[int]) -> bool:
        """Reference tuple-heap dispatch; returns False on horizon pause."""
        if until_ps is None and max_events is None:
            # specialized dispatch loop for the unbounded case (every
            # replay run): no limit checks, counter kept in a local, the
            # generator resumed without the _step call indirection
            heap = self._heap
            pop = heapq.heappop
            executed = 0
            try:
                while heap:
                    time_ps, _seq, proc, value = pop(heap)
                    self._now = time_ps
                    executed += 1
                    if proc is None:
                        value()  # plain callback
                    else:
                        try:
                            cmd = proc._gen.send(value)
                        except StopIteration as stop:
                            proc.done = True
                            proc.result = stop.value
                            for waiter in proc._waiters:
                                self._schedule(time_ps, waiter, stop.value)
                            proc._waiters.clear()
                            continue
                        if cmd.__class__ is Delay:
                            self._schedule(time_ps + cmd.ps, proc, None)
                        elif isinstance(cmd, Command):
                            cmd.arm(self, proc)
                        else:
                            raise SimulationError(
                                f"process {proc.name!r} yielded {cmd!r}, "
                                f"expected a Command"
                            )
            finally:
                self.events_executed += executed
            return True
        while self._heap:
            time_ps, _seq, proc, value = heapq.heappop(self._heap)
            if until_ps is not None and time_ps > until_ps:
                # pause without losing the over-horizon event: push it
                # back with its original sequence number so a resumed
                # run dispatches in the exact original order
                heapq.heappush(self._heap, (time_ps, _seq, proc, value))
                self._now = until_ps
                return False
            self._now = time_ps
            self.events_executed += 1
            if (max_events is not None
                    and self.events_executed > max_events):
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self._now}ps"
                )
            if proc is None:
                value()  # plain callback
            else:
                self._step(proc, value)
        return True

    def _run_two_level(self, until_ps: Optional[int],
                       max_events: Optional[int]) -> bool:
        """Two-level dispatch; returns False on horizon pause."""
        runq = self._runq
        buckets = self._buckets
        times = self._times
        if until_ps is None and max_events is None:
            pop_time = heapq.heappop
            executed = 0
            forwards = 0
            try:
                while True:
                    if runq:
                        proc, value = runq.popleft()
                    else:
                        if not times:
                            break
                        t = pop_time(times)
                        self._now = t
                        bucket = buckets.pop(t)
                        if len(bucket) > 1:
                            runq.extend(bucket)
                            proc, value = runq.popleft()
                        else:
                            proc, value = bucket[0]
                    self._pending -= 1
                    executed += 1
                    if proc is None:
                        value()  # plain callback
                        continue
                    while True:
                        try:
                            cmd = proc._gen.send(value)
                        except StopIteration as stop:
                            proc.done = True
                            proc.result = stop.value
                            for waiter in proc._waiters:
                                self._schedule(self._now, waiter, stop.value)
                            proc._waiters.clear()
                            break
                        cls = cmd.__class__
                        if cls is Delay:
                            wake = self._now + cmd.ps
                            if not runq and (not times or wake < times[0]):
                                # sole-runner fast-forward: nothing else
                                # can run before this wakeup, so advance
                                # time and resume inline
                                self._now = wake
                                executed += 1
                                forwards += 1
                                value = None
                                continue
                            self._schedule(wake, proc, None)
                            break
                        if cls is Put:
                            # inline rendezvous: a non-blocking put's
                            # resume is scheduled at `now`, so when the
                            # run queue is empty it is dispatched next
                            # anyway — continue the generator in place.
                            # With a parked getter the getter's resume
                            # precedes the putter's, so the getter
                            # continues inline and the putter rides the
                            # run queue right behind it. Event order is
                            # identical to the reference core either way.
                            ch = cmd.channel
                            cap = ch.capacity
                            items = ch._items
                            if cap is not None and len(items) >= cap:
                                proc.blocked_on = ("put", ch)
                                ch._putters.append((proc, cmd.item))
                                break
                            ch.total_puts += 1
                            if ch._getters:
                                getter = ch._getters.popleft()
                                getter.blocked_on = None
                                ch.total_gets += 1
                                if runq:
                                    runq.append((getter, cmd.item))
                                    runq.append((proc, None))
                                    pend = self._pending + 2
                                    self._pending = pend
                                    if pend > self.peak_pending:
                                        self.peak_pending = pend
                                    break
                                runq.append((proc, None))
                                pend = self._pending + 1
                                self._pending = pend
                                if pend > self.peak_pending:
                                    self.peak_pending = pend
                                proc, value = getter, cmd.item
                                executed += 1
                                forwards += 1
                                continue
                            items.append(cmd.item)
                            if len(items) > ch.max_occupancy:
                                ch.max_occupancy = len(items)
                            if runq:
                                runq.append((proc, None))
                                pend = self._pending + 1
                                self._pending = pend
                                if pend > self.peak_pending:
                                    self.peak_pending = pend
                                break
                            executed += 1
                            forwards += 1
                            value = None
                            continue
                        if cls is Get:
                            # inline rendezvous, get side: the getter's
                            # resume precedes any putters drained into
                            # the freed slot, so with an empty run queue
                            # the getter continues inline after the
                            # drained putters are queued behind it
                            ch = cmd.channel
                            items = ch._items
                            if items:
                                item = items.popleft()
                                ch.total_gets += 1
                                if runq:
                                    runq.append((proc, item))
                                    pend = self._pending + 1
                                    self._pending = pend
                                    if pend > self.peak_pending:
                                        self.peak_pending = pend
                                    if ch._putters:
                                        ch._drain_putters()
                                    break
                                if ch._putters:
                                    ch._drain_putters()
                                executed += 1
                                forwards += 1
                                value = item
                                continue
                            proc.blocked_on = ("get", ch)
                            ch._getters.append(proc)
                            break
                        if isinstance(cmd, Command):
                            cmd.arm(self, proc)
                            break
                        raise SimulationError(
                            f"process {proc.name!r} yielded {cmd!r}, "
                            f"expected a Command"
                        )
            finally:
                self.events_executed += executed
                self.fastforwards += forwards
            return True
        while True:
            if not runq:
                if not times:
                    break
                if until_ps is not None and times[0] > until_ps:
                    self._now = until_ps
                    return False
                t = heapq.heappop(times)
                self._now = t
                runq.extend(buckets.pop(t))
            proc, value = runq.popleft()
            self._pending -= 1
            self.events_executed += 1
            if (max_events is not None
                    and self.events_executed > max_events):
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self._now}ps"
                )
            if proc is None:
                value()  # plain callback
            else:
                self._step(proc, value)
        return True

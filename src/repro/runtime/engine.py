"""Discrete-event execution of a compiled offload (paper §V-B, Fig 3-5).

Each partition runs as a simulation process; stream accesses are served
by fill/drain FSM processes through bounded buffer channels (decoupling +
backpressure), indirect accesses go through the ACP/L3 path, and cross-
partition operands travel over the mesh as acc_data traffic. Iterations
are simulated in *chunks* (many iterations per event) — buffers are sized
in chunk tokens, so pipelining, decoupled run-ahead and backpressure all
emerge at chunk resolution while event counts stay tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accel.base import PartitionProfile
from ..compiler.pipeline import CompiledOffload
from ..energy import EnergyLedger
from ..envcfg import sched_path_enabled, vec_path_enabled
from ..events import Channel, Delay, Get, Put, Simulator, cycles_to_ps
from ..fastpath import fast_path_enabled
from ..interface.config import AccessConfig, AccessKind, PartitionConfig
from ..interface.intrinsics import mmio_bytes
from ..interface.scheduler import HardwareScheduler
from ..ir.expr import Load
from ..mem.cache import Cache
from ..mem.hierarchy import MemoryHierarchy
from ..mem.slab import SlabAllocator
from ..noc import MessageKind
from ..obs import OBS
from ..params import MachineParams
from . import fastsim
from .streams import SiteStreams

#: target number of chunks an innermost loop is simulated in
TARGET_CHUNKS = 128
#: outstanding fills the stride FSM sustains (burst MLP)
FSM_OVERLAP = 4
#: host->accelerator launch/sync round trip, cycles at 2 GHz
HOST_SYNC_CYCLES = 40
#: memory clock domain for latency accounting
MEM_FREQ_GHZ = 2.0
#: Mono-CA chunks at least this long advance the private cache through
#: the set-parallel batch walk instead of the per-access loop
_PRIVATE_VEC_MIN = 16


@dataclass
class EngineStats:
    """Timing and data-movement results of one offload execution."""

    time_ps: int = 0
    accel_iterations: int = 0
    #: Figure 9 components, in bytes
    intra_bytes: float = 0.0
    d_a_bytes: float = 0.0
    a_a_bytes: float = 0.0
    mmio_bytes: int = 0
    relaunches: int = 0

    def merged(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            time_ps=self.time_ps + other.time_ps,
            accel_iterations=self.accel_iterations + other.accel_iterations,
            intra_bytes=self.intra_bytes + other.intra_bytes,
            d_a_bytes=self.d_a_bytes + other.d_a_bytes,
            a_a_bytes=self.a_a_bytes + other.a_a_bytes,
            mmio_bytes=self.mmio_bytes + other.mmio_bytes,
            relaunches=self.relaunches + other.relaunches,
        )


class OffloadEngine:
    """Executes compiled offloads on a machine model."""

    def __init__(self, machine: MachineParams, hierarchy: MemoryHierarchy,
                 energy: EnergyLedger, slab: SlabAllocator, backend,
                 scheduler: Optional[HardwareScheduler] = None,
                 private_cache: Optional[Cache] = None,
                 io_overlap: float = 1.0,
                 localized_control: bool = False,
                 user_scheduled: bool = False):
        self.machine = machine
        self.hierarchy = hierarchy
        self.energy = energy
        self.slab = slab
        self.backend = backend
        self.scheduler = scheduler or HardwareScheduler(
            machine.l3_clusters, machine.access_unit
        )
        #: Mono-CA's 8 KB private cache on the L3 bus (None otherwise)
        self.private_cache = private_cache
        #: outstanding indirect accesses an accelerator core sustains
        #: (1 = blocking in-order; >1 with SW prefetch or dataflow)
        self.io_overlap = max(io_overlap, 1.0)
        #: DA configurations re-place each access unit at the cluster of
        #: the data it is currently sweeping (paper §V-B: "for every
        #: outer loop iteration, the home node placement decision is
        #: repeated"); the centralized Mono-CA accelerator cannot move
        self.migrating = private_cache is None
        #: BN annotation: the orchestrators own nested-loop control, so
        #: data-dependent inner bounds need no per-invocation host sync
        self.localized_control = localized_control
        #: BNS annotation: user fill_ra/drain_ra block schedule pipelines
        #: across innermost-loop invocations
        self.user_scheduled = user_scheduled
        self._configured_offloads: set = set()
        self._offload_ctx: Dict[int, int] = {}
        self._ctx = 0
        #: batched replay enabled for this run (re-read per run() so tests
        #: can flip REPRO_FAST in-process)
        self._fast = fast_path_enabled()

    def buffer_key(self, offload: CompiledOffload, access_id: int) -> int:
        """Scheduler buffer id serving an access (combining-aware)."""
        ctx = self._offload_ctx.get(id(offload))
        if ctx is None:
            return access_id
        try:
            return self.scheduler.lookup(ctx, access_id).buf_id
        except Exception:
            return 10_000_000 + access_id  # fell back to uncombined

    # ------------------------------------------------------------------
    # memory access paths
    # ------------------------------------------------------------------
    def _line_fetch(self, cluster: int, addr: int, is_write: bool) -> int:
        """One line between buffer and memory system; returns cycles."""
        if self.private_cache is None:
            return self.hierarchy.accel_line_fetch(cluster, addr, is_write)
        # Mono-CA: every line crosses the L3 bus into the private cache
        self.energy.charge("accel", "private_cache_access")
        out = self.private_cache.access(addr, is_write)
        latency = 1
        if out.evicted and out.evicted[1]:
            self.hierarchy.writeback_line_from(out.evicted[0], cluster)
        if not out.hit:
            latency += self.hierarchy.l3_demand(addr, from_node=cluster)
        return latency

    def _elem_access(self, cluster: int, addr: int, is_write: bool,
                     elem_bytes: int) -> int:
        """One element, in place at its home bank (cp_read/cp_write)."""
        if self.private_cache is None:
            return self.hierarchy.accel_elem_access(
                cluster, addr, is_write, elem_bytes
            )
        # centralized accelerator: no in-place access, pull the line
        return self._line_fetch(cluster, addr, is_write)

    def _line_fetch_many(self, cluster: int, line_addrs: np.ndarray,
                         is_write: bool) -> int:
        """Batched :meth:`_line_fetch` over a chunk (REPRO_FAST=1 only);
        bit-identical to the per-line loop."""
        if self.private_cache is None:
            return self.hierarchy.accel_line_fetch_batch(
                cluster, line_addrs, is_write
            )
        return self._private_fetch_many(cluster, line_addrs, is_write)

    def _elem_access_many(self, cluster: int, addrs: np.ndarray,
                          is_write: bool, elem_bytes: int) -> int:
        """Batched :meth:`_elem_access` over a chunk (REPRO_FAST=1 only);
        bit-identical to the per-element loop."""
        if self.private_cache is None:
            return self.hierarchy.accel_elem_access_batch(
                cluster, addrs, is_write, elem_bytes
            )
        return self._private_fetch_many(cluster, addrs, is_write)

    def _private_fetch_many(self, cluster: int, addrs: np.ndarray,
                            is_write: bool) -> int:
        """Mono-CA chunk replay: the private cache advances per access in
        program order; the per-miss L3 accounting is pooled in an
        :class:`~repro.mem.hierarchy.L3DemandWindow`."""
        n = len(addrs)
        if n == 0:
            return 0
        self.energy.charge("accel", "private_cache_access", n)
        pc = self.private_cache
        writeback = self.hierarchy.writeback_line_from
        window = self.hierarchy.l3_demand_batch(cluster)
        total = n  # 1 cycle per private-cache lookup
        try:
            if n >= _PRIVATE_VEC_MIN and vec_path_enabled():
                # advance the private cache set-parallel first: nothing
                # downstream (L3 window, victim writebacks) ever feeds
                # back into it, so visiting only the misses afterwards
                # keeps every downstream transition in scalar order
                hit, vline, vdirty = pc.access_batch(
                    addrs >> pc.line_shift,
                    np.full(n, is_write, dtype=bool),
                )
                for addr, vd, vl in zip(
                        addrs[~hit].tolist(),
                        vdirty[~hit].tolist(),
                        vline[~hit].tolist()):
                    if vd:
                        writeback(vl, cluster)
                    total += window.access(addr)
            else:
                access = pc.access
                for addr in addrs.tolist():
                    out = access(addr, is_write)
                    ev = out.evicted
                    if ev is not None and ev[1]:
                        writeback(ev[0], cluster)
                    if not out.hit:
                        total += window.access(addr)
        finally:
            window.flush()
        return total

    # ------------------------------------------------------------------
    # host configuration phase
    # ------------------------------------------------------------------
    def configure(self, offload: CompiledOffload,
                  clusters: Dict[int, int]) -> Tuple[int, int]:
        """Charge the MMIO configuration traffic; returns (ps, bytes)."""
        calls = offload.config.config_calls()
        total_bytes = mmio_bytes(calls)
        total_ps = 0
        traffic = self.hierarchy.traffic
        # distribute config messages to each partition's cluster
        per_part = max(1, len(calls) // max(len(clusters), 1))
        for part_idx, cluster in clusters.items():
            lat = traffic.record(
                MessageKind.MMIO_CONFIG, self.machine.noc.host_node, cluster,
                payload_bytes=per_part * 16,
            )
            total_ps += lat
        self.energy.charge("host_iface", "mmio_access", len(calls))
        self.energy.charge("scheduler", "sched_table_access",
                           sum(len(p.accesses)
                               for p in offload.config.partitions))
        # buffer allocation through the hardware scheduler
        ctx = self._ctx
        self._ctx += 1
        self._offload_ctx[id(offload)] = ctx
        for part in offload.config.partitions:
            cluster = clusters[part.partition_index]
            for acc in part.accesses:
                try:
                    self.scheduler.allocate(ctx, cluster, acc)
                except Exception:
                    pass  # SRAM pressure: access falls back to uncombined
        # substrate setup (microcode / CGRA configuration load)
        setup_cycles = max(
            (self.backend.setup_cycles(p)
             for p in offload.config.partitions), default=1
        )
        if hasattr(self.backend, "charge_setup"):
            for part in offload.config.partitions:
                self.backend.charge_setup(part, self.energy)
        total_ps += cycles_to_ps(setup_cycles, self.backend.freq_ghz)
        return total_ps, total_bytes

    # ------------------------------------------------------------------
    # main run
    # ------------------------------------------------------------------
    def run(self, offload: CompiledOffload, clusters: Dict[int, int],
            trips: int, invocations: int,
            site_streams: SiteStreams) -> EngineStats:
        """Execute one kernel call's worth of the offloaded loop."""
        self._fast = fast_path_enabled()
        stats = EngineStats()
        if trips <= 0:
            return stats
        key = id(offload)
        if key not in self._configured_offloads:
            config_ps, config_bytes = self.configure(offload, clusters)
            stats.time_ps += config_ps
            stats.mmio_bytes += config_bytes
            self._configured_offloads.add(key)

        chunk = max(1, trips // TARGET_CHUNKS)
        nchunks = math.ceil(trips / chunk)
        chunk_sizes = [
            min(chunk, trips - c * chunk) for c in range(nchunks)
        ]
        sim = Simulator()
        # a centralized accelerator (Mono-CA) funnels every fill/drain
        # through one L3-bus port; distributed access units each have
        # their own cluster port
        shared_port = (
            Channel(sim, capacity=1, name="l3bus")
            if self.private_cache is not None else None
        )
        if shared_port is not None:
            shared_port._items.append(object())  # the single port token
        run_ctx = _RunContext(
            engine=self, offload=offload, clusters=clusters,
            chunk_sizes=chunk_sizes, site_streams=site_streams,
            sim=sim, stats=stats, shared_port=shared_port,
        )
        run_time = None
        # run-scoped deferred accounting: one DRAM pool and pooled
        # batch-tail ledger counts across the whole replay (exact: the
        # pooled charges/records are linear and the ledgers order-free)
        win = self.hierarchy.open_accounting()
        try:
            if sched_path_enabled() and shared_port is None:
                run_time = fastsim.replay(run_ctx)
            if run_time is None:
                run_ctx.build()
                sim.run()
                run_time = sim.now
                OBS.inc("engine.sim_events", sim.events_executed)
                OBS.inc("engine.sim_fastforwards", sim.fastforwards)
                OBS.observe_max("engine.sim_peak_pending",
                                sim.peak_pending)
                for chans in (run_ctx.channels, run_ctx.fill_tokens,
                              run_ctx.drain_tokens):
                    for ch in chans.values():
                        OBS.observe_max("engine.chan_max_occupancy",
                                        ch.max_occupancy)
            else:
                OBS.inc("engine.fastsim_runs")
        finally:
            self.hierarchy.close_accounting(win)
        OBS.inc("engine.offload_runs")
        OBS.inc("engine.accel_iterations", trips)
        OBS.observe_max("engine.peak_chunks", nchunks)
        stats.time_ps += run_time
        stats.accel_iterations += trips
        # per-invocation host relaunch overhead for data-dependent inner
        # bounds (the paper's spmv Dist-DA-B effect); affine bounds are
        # iterated by the partition orchestrators themselves
        if (self._bounds_data_dependent(offload) and invocations > 1
                and not self.localized_control):
            sync_ps = cycles_to_ps(HOST_SYNC_CYCLES, MEM_FREQ_GHZ)
            stats.time_ps += (invocations - 1) * sync_ps
            stats.relaunches += invocations - 1
            self.energy.charge("host_iface", "mmio_access",
                               2 * (invocations - 1))
        return stats

    @staticmethod
    def _bounds_data_dependent(offload: CompiledOffload) -> bool:
        for expr in (offload.loop.lower, offload.loop.upper):
            if any(isinstance(n, Load) for n in expr.walk()):
                return True
        return False


@dataclass
class _RunContext:
    """Wires up all processes/channels of one offload execution."""

    engine: OffloadEngine
    offload: CompiledOffload
    clusters: Dict[int, int]
    chunk_sizes: List[int]
    site_streams: SiteStreams
    sim: Simulator
    stats: EngineStats
    shared_port: Optional[Channel] = None
    channels: Dict[int, Channel] = field(default_factory=dict)
    fill_tokens: Dict[int, Channel] = field(default_factory=dict)
    drain_tokens: Dict[int, Channel] = field(default_factory=dict)
    #: partition index -> unique read/write buffer keys (multi-access
    #: combining: one FSM serves every access sharing a buffer)
    read_bufs: Dict[int, List[int]] = field(default_factory=dict)
    write_bufs: Dict[int, List[int]] = field(default_factory=dict)
    #: (tag, id(acc), chunk) -> element/line address arrays; fill, drain
    #: and partition procs all re-derive the same chunk slices, and the
    #: per-chunk np.unique is measurable across ~100k chunk visits
    _chunk_memo: Dict[tuple, np.ndarray] = field(default_factory=dict)
    #: partial macro-chunk coalescing (fastsim): per-chunk latencies of
    #: processes whose footprint is private to them — their hierarchy
    #: sweeps ran up front in one widened call, so the event process
    #: replays the latencies without touching memory-system state
    pre_fill: Dict[int, List[int]] = field(default_factory=dict)
    pre_drain: Dict[int, List[int]] = field(default_factory=dict)
    pre_ind: Dict[int, List[int]] = field(default_factory=dict)

    def build(self) -> None:
        config = self.offload.config
        groups = self._serial_groups()
        for ch in config.channels:
            # channels inside a fused serial group are modeled by the
            # group's per-iteration round-trip latency, not as buffers
            if self._intra_group(ch, groups):
                continue
            cap = self._token_capacity(ch.payload_bytes)
            self.channels[ch.channel_id] = Channel(
                self.sim, capacity=cap, name=f"ch{ch.channel_id}"
            )
        for part in config.partitions:
            cluster = self.clusters[part.partition_index]
            idx = part.partition_index
            self.read_bufs[idx] = []
            self.write_bufs[idx] = []
            for buf_key, acc in self._grouped(
                self._buffered_reads(part)
            ):
                self.read_bufs[idx].append(buf_key)
                cap = self._token_capacity(acc.elem_bytes)
                tok = Channel(self.sim, capacity=cap,
                              name=f"fill{buf_key}")
                self.fill_tokens[buf_key] = tok
                self.sim.spawn(
                    f"fsm-fill-{buf_key}",
                    self._fill_proc(acc, cluster, tok, buf_key),
                )
            for buf_key, acc in self._grouped(
                self._buffered_writes(part)
            ):
                self.write_bufs[idx].append(buf_key)
                tok = Channel(self.sim, capacity=4,
                              name=f"drain{buf_key}")
                self.drain_tokens[buf_key] = tok
                self.sim.spawn(
                    f"fsm-drain-{buf_key}",
                    self._drain_proc(acc, cluster, tok, buf_key),
                )
        for group in groups:
            if len(group) == 1:
                part = config.partition(group[0])
                self.sim.spawn(
                    f"part-{part.partition_index}",
                    self._partition_proc(
                        part, self.clusters[part.partition_index]
                    ),
                )
            else:
                self.sim.spawn(
                    f"group-{'-'.join(map(str, group))}",
                    self._fused_group_proc(group),
                )

    # -- serialization (partition-level channel cycles) ----------------------
    def _serial_groups(self) -> List[List[int]]:
        """Strongly connected components of the partition channel graph.

        A multi-partition SCC is a true per-iteration dependence cycle
        (e.g. pointer chasing through a remote object): its partitions
        execute serially, paying the operand round-trip every iteration.
        """
        config = self.offload.config
        n = config.num_partitions
        succ: Dict[int, List[int]] = {p: [] for p in range(n)}
        for ch in config.channels:
            succ[ch.producer_partition].append(ch.consumer_partition)
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Dict[int, bool] = {}
        stack: List[int] = []
        out: List[List[int]] = []
        counter = [0]

        def strongconnect(v: int) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack[v] = True
            for w in succ[v]:
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif on_stack.get(w):
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                out.append(sorted(comp))

        for v in range(n):
            if v not in index:
                strongconnect(v)
        return out

    def _intra_group(self, ch, groups: List[List[int]]) -> bool:
        for group in groups:
            if len(group) > 1 and (ch.producer_partition in group
                                   and ch.consumer_partition in group):
                return True
        return False

    # -- helpers -----------------------------------------------------------
    def _token_capacity(self, elem_bytes: int) -> int:
        buf_elems = (
            self.engine.machine.access_unit.buffer_bytes
            // 4 // max(elem_bytes, 1)
        )
        chunk = max(self.chunk_sizes[0], 1)
        return max(1, min(8, buf_elems // chunk))

    @staticmethod
    def _buffered_reads(part: PartitionConfig) -> List[AccessConfig]:
        return [
            a for a in part.accesses
            if a.kind is AccessKind.STREAM_READ and not a.is_write
        ]

    @staticmethod
    def _buffered_writes(part: PartitionConfig) -> List[AccessConfig]:
        return [
            a for a in part.accesses
            if a.kind is AccessKind.STREAM_WRITE and a.is_write
        ]

    def _grouped(self, accesses: List[AccessConfig]
                 ) -> List[Tuple[int, AccessConfig]]:
        """Group accesses by scheduler buffer; pick the representative
        access (longest element stream) that the one FSM will serve."""
        by_buf: Dict[int, List[AccessConfig]] = {}
        for acc in accesses:
            key = self.engine.buffer_key(self.offload, acc.access_id)
            by_buf.setdefault(key, []).append(acc)
        out = []
        for key, group in sorted(by_buf.items()):
            rep = max(
                group, key=lambda a: self.site_streams.length(a.site_ids)
            )
            out.append((key, rep))
        return out

    @staticmethod
    def _indirect(part: PartitionConfig) -> List[AccessConfig]:
        return [
            a for a in part.accesses
            if a.kind in (AccessKind.INDIRECT, AccessKind.RANDOM)
        ]

    def _elem_chunks(self, acc: AccessConfig) -> List[np.ndarray]:
        """Element-stream slices of every chunk, computed in one pass."""
        key = ("e", id(acc))
        out = self._chunk_memo.get(key)
        if out is None:
            stream = self.site_streams.for_sites(acc.site_ids)
            n = len(self.chunk_sizes)
            size = stream.size
            bounds = [(size * c) // n for c in range(n + 1)]
            out = [stream[bounds[c]:bounds[c + 1]] for c in range(n)]
            self._chunk_memo[key] = out
        return out

    def _elems_for_chunk(self, acc: AccessConfig, c: int) -> np.ndarray:
        """Slice of the access's element stream belonging to chunk c."""
        return self._elem_chunks(acc)[c]

    def _addr(self, acc: AccessConfig, elem: int) -> int:
        alloc = self.engine.slab.by_name(acc.obj)
        return alloc.base + int(elem) * acc.elem_bytes

    def _line_chunks(self, acc: AccessConfig) -> List[np.ndarray]:
        """Unique line addresses each chunk's elements touch (64 B
        lines), all chunks in one vectorized pass.

        Streams are almost always monotone, so the per-chunk sorted
        dedup is a single global adjacent-difference mask re-anchored at
        each chunk boundary (~200k chunk visits per small matrix cell
        made the per-chunk set/np.unique cost measurable). Non-monotone
        streams keep the per-chunk reference dedup.
        """
        key = ("l", id(acc))
        out = self._chunk_memo.get(key)
        if out is not None:
            return out
        elem_chunks = self._elem_chunks(acc)
        stream = self.site_streams.for_sites(acc.site_ids)
        n = len(self.chunk_sizes)
        size = stream.size
        if size == 0:
            out = elem_chunks  # every chunk is the empty slice
        else:
            base = self.engine.slab.by_name(acc.obj).base
            eb = acc.elem_bytes
            lines = (base + stream * eb) >> 6
            bounds = [(size * c) // n for c in range(n + 1)]
            if size == 1 or bool((lines[1:] >= lines[:-1]).all()):
                keep = np.empty(size, dtype=bool)
                keep[0] = True
                np.not_equal(lines[1:], lines[:-1], out=keep[1:])
                out = []
                for c in range(n):
                    lo, hi = bounds[c], bounds[c + 1]
                    if lo == hi:
                        out.append(lines[:0])
                        continue
                    k = keep[lo:hi].copy()
                    k[0] = True  # dedup restarts at the chunk boundary
                    out.append(lines[lo:hi][k] << 6)
            else:
                out = [self._chunk_lines_ref(elems, base, eb)
                       for elems in elem_chunks]
        self._chunk_memo[key] = out
        return out

    @staticmethod
    def _chunk_lines_ref(elems: np.ndarray, base: int,
                         eb: int) -> np.ndarray:
        """Reference per-chunk line dedup (non-monotone streams)."""
        if elems.size == 0:
            return elems
        if elems.size <= 16:
            lines = sorted({(base + e * eb) >> 6 for e in elems.tolist()})
            return np.array(lines, dtype=np.int64) << 6
        lines = (base + elems * eb) >> 6
        if (lines[1:] >= lines[:-1]).all():
            keep = np.empty(lines.size, dtype=bool)
            keep[0] = True
            keep[1:] = lines[1:] != lines[:-1]
            return lines[keep] << 6
        return np.unique(lines) << 6

    def _lines_for_chunk(self, acc: AccessConfig, c: int) -> np.ndarray:
        """Unique line addresses a chunk's elements touch (64 B lines)."""
        return self._line_chunks(acc)[c]

    def _is_invariant(self, acc: AccessConfig) -> bool:
        return acc.stride_elems == 0 and acc.kind is AccessKind.STREAM_READ

    def _fetch_chunk(self, at: int, lines: np.ndarray,
                     is_write: bool) -> int:
        """Line fetches for one chunk: batched replay when REPRO_FAST=1,
        the per-line reference loop otherwise."""
        engine = self.engine
        if engine._fast:
            return engine._line_fetch_many(at, lines, is_write)
        total = 0
        for line_addr in lines:
            total += engine._line_fetch(at, int(line_addr), is_write)
        return total

    def _indirect_chunk(self, acc: AccessConfig, at: int,
                        elems: np.ndarray) -> int:
        """Indirect element accesses for one chunk (same gating)."""
        engine = self.engine
        base = engine.slab.by_name(acc.obj).base
        eb = acc.elem_bytes
        if engine._fast:
            return engine._elem_access_many(
                at, base + elems * eb, acc.is_write, eb
            )
        total = 0
        for elem in elems.tolist():
            total += engine._elem_access(
                at, base + elem * eb, acc.is_write, eb
            )
        return total

    def _migrated(self, static_cluster: int, addr) -> int:
        """Cluster the access unit presents at for this chunk."""
        if not self.engine.migrating or addr is None:
            return static_cluster
        return self.engine.hierarchy.l3.home_cluster(int(addr))

    # -- processes -----------------------------------------------------------
    def _fill_proc(self, acc: AccessConfig, cluster: int, tok: Channel,
                   buf_key: int):
        # the per-chunk energy charges and Fig-9 byte tallies are
        # commutative integer accumulations: summing them locally and
        # flushing once per process is bit-identical to per-chunk calls
        engine = self.engine
        energy = engine.energy
        invariant = self._is_invariant(acc)
        line_chunks = self._line_chunks(acc)
        elem_chunks = None if invariant else self._elem_chunks(acc)
        pre = self.pre_fill.get(buf_key)
        fsm_n = buf_n = trans_n = d_a = 0
        for c, iters in enumerate(self.chunk_sizes):
            if invariant and c > 0:
                yield Put(tok, c)
                continue
            lines = line_chunks[c]
            if invariant:
                lines = lines[:1]
            if self.shared_port is not None:
                yield Get(self.shared_port)
            if pre is not None:
                lat_cycles = pre[c]
            else:
                at = self._migrated(cluster,
                                    lines[0] if len(lines) else None)
                lat_cycles = self._fetch_chunk(at, lines, False)
            nlines = len(lines)
            if nlines:
                fsm_n += 1 if invariant else len(elem_chunks[c])
                buf_n += nlines
                trans_n += 1
                d_a += nlines * 64
            yield Delay(cycles_to_ps(
                lat_cycles / FSM_OVERLAP + nlines, MEM_FREQ_GHZ
            ))
            if self.shared_port is not None:
                yield Put(self.shared_port, True)
            yield Put(tok, c)
        if trans_n:
            energy.charge("access_unit", "fsm_step", fsm_n)
            energy.charge("access_unit", "buffer_access", buf_n)
            energy.charge("access_unit", "translation_lookup", trans_n)
            self.stats.d_a_bytes += d_a

    def _drain_proc(self, acc: AccessConfig, cluster: int, tok: Channel,
                    buf_key: int):
        engine = self.engine
        energy = engine.energy
        line_chunks = self._line_chunks(acc)
        pre = self.pre_drain.get(buf_key)
        buf_n = d_a = 0
        for _ in self.chunk_sizes:
            c = yield Get(tok)
            lines = line_chunks[c]
            if self.shared_port is not None:
                yield Get(self.shared_port)
            if pre is not None:
                lat_cycles = pre[c]
            else:
                at = self._migrated(cluster,
                                    lines[0] if len(lines) else None)
                lat_cycles = self._fetch_chunk(at, lines, True)
            nlines = len(lines)
            if nlines:
                buf_n += nlines
                d_a += nlines * 64
            yield Delay(cycles_to_ps(
                lat_cycles / FSM_OVERLAP + nlines, MEM_FREQ_GHZ
            ))
            if self.shared_port is not None:
                yield Put(self.shared_port, True)
        if buf_n:
            energy.charge("access_unit", "fsm_step", buf_n)
            energy.charge("access_unit", "buffer_access", buf_n)
            self.stats.d_a_bytes += d_a

    def _partition_proc(self, part: PartitionConfig, cluster: int):
        engine = self.engine
        energy = engine.energy
        config = self.offload.config
        profile = PartitionProfile.from_config(part)
        timing = engine.backend.timing(profile)
        ii_ps = timing.ii_ps  # property: hoisted out of the chunk loop
        read_bufs = self.read_bufs[part.partition_index]
        write_bufs = self.write_bufs[part.partition_index]
        indirect = self._indirect(part)
        traffic = engine.hierarchy.traffic
        intra_per_iter = (
            profile.buffer_reads + profile.buffer_writes
        )
        ind_chunks = [(acc, self._elem_chunks(acc)) for acc in indirect]
        pre = self.pre_ind.get(part.partition_index)
        # hoist the per-chunk channel/token lookups out of the loop
        consume_chs = [self.channels[ch_id] for ch_id in part.consumes]
        read_toks = [self.fill_tokens[b] for b in read_bufs]
        write_toks = [self.drain_tokens[b] for b in write_bufs]
        produce_chs = [
            (self.channels[ch_id],
             self.clusters[config.channel(ch_id).consumer_partition],
             config.channel(ch_id).payload_bytes)
            for ch_id in part.produces
        ]
        overlap = 1.0 if self.offload.serial_chain else engine.io_overlap
        # deferred commutative accounting, flushed once after the loop
        # (bit-identical to per-chunk charges/records: the ledgers
        # accumulate exact integer counts)
        trans_n = d_a = total_iters = a_a = 0
        operand_recs: Dict[Tuple[int, int], int] = {}
        for c, iters in enumerate(self.chunk_sizes):
            for ch in consume_chs:
                yield Get(ch)
            for tok in read_toks:
                yield Get(tok)
            ind_cycles = 0
            if pre is not None:
                ind_cycles = pre[c]
                for acc, chunks in ind_chunks:
                    n_elems = len(chunks[c])
                    if n_elems:
                        trans_n += n_elems
                        d_a += n_elems * acc.elem_bytes
            else:
                for acc, chunks in ind_chunks:
                    elems = chunks[c]
                    at = self._migrated(
                        cluster,
                        self._addr(acc, elems[0]) if len(elems) else None,
                    )
                    ind_cycles += self._indirect_chunk(acc, at, elems)
                    if len(elems):
                        trans_n += len(elems)
                        d_a += len(elems) * acc.elem_bytes
            compute_ps = ii_ps * iters
            # a loop-carried address chain (pointer chasing) serializes
            # indirect accesses on every substrate (overlap hoisted)
            indirect_ps = cycles_to_ps(ind_cycles / overlap, MEM_FREQ_GHZ)
            yield Delay(compute_ps + indirect_ps)
            total_iters += iters
            for ch, dst_cluster, payload_bytes in produce_chs:
                payload = payload_bytes * iters
                key = (dst_cluster, payload)
                operand_recs[key] = operand_recs.get(key, 0) + 1
                a_a += payload
                if c == 0:
                    lat_ps = traffic.latency_of(
                        cluster, dst_cluster, payload
                    )
                    if lat_ps:
                        yield Delay(lat_ps)  # pipeline fill latency, once
                yield Put(ch, c)
            for tok in write_toks:
                yield Put(tok, c)
        if trans_n:
            energy.charge("access_unit", "translation_lookup", trans_n)
            self.stats.d_a_bytes += d_a
        engine.backend.charge_iteration(profile, energy, count=total_iters)
        # operand reads/writes: access-unit SRAM buffers, or the
        # centralized private cache in Mono-CA
        operand_event = (
            "private_cache_access" if engine.private_cache is not None
            else "buffer_access"
        )
        energy.charge("access_unit", operand_event,
                      intra_per_iter * total_iters)
        self.stats.intra_bytes += intra_per_iter * total_iters * 4
        self.stats.a_a_bytes += a_a
        for (dst_cluster, payload), count in operand_recs.items():
            traffic.record(MessageKind.ACC_OPERAND, cluster, dst_cluster,
                           payload, count=count)
            # every operand message is matched by a zero-payload credit
            traffic.record(MessageKind.ACC_CREDIT, dst_cluster, cluster,
                           0, count=count)

    def _fused_group_proc(self, group: List[int]):
        """Serially executes a dependence cycle of partitions.

        Each iteration pays every member partition's issue time plus the
        NoC round trip of every intra-group operand channel — the physics
        of pointer chasing across distributed access units.
        """
        engine = self.engine
        energy = engine.energy
        config = self.offload.config
        mesh = engine.hierarchy.mesh
        traffic = engine.hierarchy.traffic
        members = [config.partition(p) for p in group]
        profiles = {p.partition_index: PartitionProfile.from_config(p)
                    for p in members}
        per_iter_ps = sum(
            engine.backend.timing(profiles[p.partition_index]).ii_ps
            for p in members
        )
        intra_channels = [
            ch for ch in config.channels
            if ch.producer_partition in group
            and ch.consumer_partition in group
        ]
        hop_ps = sum(
            mesh.latency_ps(
                self.clusters[ch.producer_partition],
                self.clusters[ch.consumer_partition],
                ch.payload_bytes, MEM_FREQ_GHZ,
            )
            for ch in intra_channels
        )
        group_set = set(group)
        external_consumes = [
            ch.channel_id for ch in config.channels
            if ch.consumer_partition in group_set
            and ch.producer_partition not in group_set
        ]
        external_produces = [
            ch for ch in config.channels
            if ch.producer_partition in group_set
            and ch.consumer_partition not in group_set
        ]
        ind_chunks = [
            (part, acc, self._elem_chunks(acc))
            for part in members for acc in self._indirect(part)
        ]
        # deferred commutative accounting (see _partition_proc)
        trans_n = d_a = total_iters = a_a = 0
        operand_recs: Dict[Tuple[int, int, int], int] = {}
        for c, iters in enumerate(self.chunk_sizes):
            for ch_id in external_consumes:
                yield Get(self.channels[ch_id])
            for part in members:
                for buf_key in self.read_bufs[part.partition_index]:
                    yield Get(self.fill_tokens[buf_key])
            ind_cycles = 0
            for part, acc, chunks in ind_chunks:
                cluster = self.clusters[part.partition_index]
                elems = chunks[c]
                at = self._migrated(
                    cluster,
                    self._addr(acc, elems[0]) if len(elems) else None,
                )
                ind_cycles += self._indirect_chunk(acc, at, elems)
                if len(elems):
                    trans_n += len(elems)
                    d_a += len(elems) * acc.elem_bytes
            # dependence cycle: no overlap across iterations
            yield Delay(
                iters * (per_iter_ps + hop_ps)
                + cycles_to_ps(ind_cycles, MEM_FREQ_GHZ)
            )
            total_iters += iters
            for ch in intra_channels:
                payload = ch.payload_bytes * iters
                key = (
                    self.clusters[ch.producer_partition],
                    self.clusters[ch.consumer_partition],
                    payload,
                )
                operand_recs[key] = operand_recs.get(key, 0) + 1
                a_a += payload
            for ch in external_produces:
                payload = ch.payload_bytes * iters
                key = (
                    self.clusters[ch.producer_partition],
                    self.clusters[ch.consumer_partition],
                    payload,
                )
                operand_recs[key] = operand_recs.get(key, 0) + 1
                a_a += payload
                yield Put(self.channels[ch.channel_id], c)
            for part in members:
                for buf_key in self.write_bufs[part.partition_index]:
                    yield Put(self.drain_tokens[buf_key], c)
        if trans_n:
            energy.charge("access_unit", "translation_lookup", trans_n)
            self.stats.d_a_bytes += d_a
        for part in members:
            profile = profiles[part.partition_index]
            engine.backend.charge_iteration(profile, energy,
                                            count=total_iters)
            intra = profile.buffer_reads + profile.buffer_writes
            energy.charge("access_unit", "buffer_access",
                          intra * total_iters)
            self.stats.intra_bytes += intra * total_iters * 4
        self.stats.a_a_bytes += a_a
        for (src, dst, payload), count in operand_recs.items():
            traffic.record(MessageKind.ACC_OPERAND, src, dst, payload,
                           count=count)

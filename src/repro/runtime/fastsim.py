"""Analytic macro-chunk replay of one offload run (``REPRO_SCHED=1``).

The discrete-event engine in :mod:`repro.runtime.engine` spends most of
its time dispatching per-chunk generator resumes whose *timing* is fully
determined by a marked-graph recurrence, and whose *memory-system state
transitions* frequently cannot interact across processes at all. This
module replays such runs without any events:

* **Pass 0 — static safety proof.** The run qualifies only when (a) it
  has no Mono-CA shared L3-bus port (``private_cache is None``), (b) the
  cross-executor channel graph is acyclic (always true after SCC
  fusion, checked anyway), and (c) the (cache-instance, set) cells each
  stateful process can touch — L3 slice sets for fill/drain line
  fetches, ACP sets plus L3 sets (including the L3 sets of lines
  already resident in the touched ACPs, which eviction can retire) for
  indirect element accesses — are pairwise disjoint across processes.
  Set-associative LRU sets are independent state machines and every
  other side effect (energy, NoC records, DRAM counters, movement
  bytes) is a commutative integer accumulation, so under (c) *any*
  interleaving that preserves each process's program order produces
  bit-identical state, latencies and ledgers.

* **Pass 1 — per-process stateful sweep.** Each process's chunks
  execute back to back in program order: the same hierarchy calls, the
  same per-chunk energy/traffic accounting and the same per-chunk
  ``cycles_to_ps`` rounding as the event engine's process bodies. With
  ``REPRO_FAST=1`` consecutive chunks presenting at the same (migrated)
  cluster are coalesced into one widened, segment-delimited
  ``*_batch`` hierarchy call that returns per-chunk latency subtotals.

* **Pass 2 — closed-form schedule.** The per-chunk delays feed the
  exact timing recurrence of the bounded-channel process network
  (get: ``g = max(cursor, p)``; put with capacity ``K``:
  ``p[c] = max(cursor, g[c-K])``), evaluated chunk-major with
  producers before consumers. This reproduces pipelining, decoupled
  run-ahead *and* backpressure — the final time equals the event
  engine's ``sim.now`` exactly, with zero scheduler events.

Anything the proof does not cover falls back to the event engine, so
the replay is an optimization, never a semantic fork; equivalence is
enforced by ``tests/runtime/test_sched_equiv.py`` and the differential
oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..accel.base import PartitionProfile
from ..events import cycles_to_ps
from ..noc import MessageKind
from ..obs import OBS

#: drain-token channel capacity, mirroring ``_RunContext.build``
_DRAIN_CAP = 4


# ----------------------------------------------------------------------
# pass 0: structural + footprint safety proof
# ----------------------------------------------------------------------
def _executor_graph(ctx, groups: List[List[int]]
                    ) -> Optional[List[Tuple[int, ...]]]:
    """Topologically ordered executors (fused groups count as one);
    None when a cross-executor cycle (e.g. a self-loop channel) exists."""
    config = ctx.offload.config
    exec_of: Dict[int, int] = {}
    for i, group in enumerate(groups):
        for p in group:
            exec_of[p] = i
    succ: Dict[int, Set[int]] = {i: set() for i in range(len(groups))}
    indeg = [0] * len(groups)
    for ch in config.channels:
        if ctx._intra_group(ch, groups):
            continue
        a = exec_of[ch.producer_partition]
        b = exec_of[ch.consumer_partition]
        if a == b:
            return None  # channel cycle within one executor: let the
            # event engine produce its deadlock diagnostics
        if b not in succ[a]:
            succ[a].add(b)
            indeg[b] += 1
    order: List[int] = [i for i in range(len(groups)) if indeg[i] == 0]
    head = 0
    while head < len(order):
        for b in succ[order[head]]:
            indeg[b] -= 1
            if indeg[b] == 0:
                order.append(b)
        head += 1
    if len(order) != len(groups):
        return None
    return [tuple(groups[i]) for i in order]


def _l3_cells(ctx, line_addrs: np.ndarray) -> Set[int]:
    """(slice, set) cells of the L3 touched by these line addresses."""
    if line_addrs.size == 0:
        return set()
    l3 = ctx.engine.hierarchy.l3
    sets = l3.slices[0].num_sets
    lines = line_addrs >> l3.slices[0].line_shift
    homes = (line_addrs // l3.stripe_bytes) % l3.num_clusters
    return set((homes * sets + lines % sets).tolist())


def _acp_cells(ctx, addrs: np.ndarray) -> Tuple[Set[int], Set[int]]:
    """(ACP cells, extra L3 cells) for indirect element accesses.

    The extra L3 cells cover eviction retirement: a dirty ACP victim is
    filled into its own line's L3 set, and victims are either lines this
    process itself accesses (already in its L3 footprint) or lines
    resident in the touched ACPs when the run starts.
    """
    if addrs.size == 0:
        return set(), set()
    hier = ctx.engine.hierarchy
    l3 = hier.l3
    acp0 = hier.acps[0]
    asets = acp0.num_sets
    shift = acp0.line_shift
    lines = addrs >> shift
    homes = (addrs // l3.stripe_bytes) % l3.num_clusters
    acp_cells = set((homes * asets + lines % asets).tolist())
    resident: List[int] = []
    for home in set(homes.tolist()):
        resident.extend(
            ln << shift for ln in hier.acps[home].resident_lines()
        )
    extra = _l3_cells(ctx, np.asarray(resident, dtype=np.int64))
    return acp_cells, extra


def _full_lines(ctx, acc) -> np.ndarray:
    """Unique line addresses an access's whole stream touches."""
    stream = ctx.site_streams.for_sites(acc.site_ids)
    if stream.size == 0:
        return stream
    base = ctx.engine.slab.by_name(acc.obj).base
    return np.unique((base + stream * acc.elem_bytes) >> 6) << 6


def _full_addrs(ctx, acc) -> np.ndarray:
    stream = ctx.site_streams.for_sites(acc.site_ids)
    if stream.size == 0:
        return stream
    base = ctx.engine.slab.by_name(acc.obj).base
    return base + stream * acc.elem_bytes


def _disjoint(footprints: List[Tuple[Set[int], Set[int]]]) -> bool:
    """Pairwise disjointness of per-process (L3 cells, ACP cells)."""
    seen_l3: Set[int] = set()
    seen_acp: Set[int] = set()
    for l3_cells, acp_cells in footprints:
        if not l3_cells and not acp_cells:
            continue
        if seen_l3 & l3_cells or seen_acp & acp_cells:
            return False
        seen_l3 |= l3_cells
        seen_acp |= acp_cells
    return True


# ----------------------------------------------------------------------
# partial coalescing: processes private to the run
# ----------------------------------------------------------------------
def _prefetch_lats(ctx, acc, cluster: int, is_write: bool) -> List[int]:
    """Per-chunk fetch latencies of one fill/drain FSM, executed up
    front in program order (one widened call per same-cluster run)."""
    invariant = ctx._is_invariant(acc)
    line_chunks = ctx._line_chunks(acc)
    chunk_lines = []
    for c in range(len(ctx.chunk_sizes)):
        if invariant and c > 0:
            break
        lines = line_chunks[c]
        if invariant:
            lines = lines[:1]
        chunk_lines.append(
            (c, lines, ctx._migrated(cluster, lines[0] if len(lines)
                                     else None))
        )
    return _segmented_fetch(ctx, chunk_lines, is_write)


def _precompute_private(ctx, footprints, fill_accs, drain_accs,
                        groups) -> None:
    """Partial macro-chunk coalescing when the *global* disjointness
    proof fails: a process whose footprint cells no other process
    touches still commutes with the entire run, so its stateful sweep
    can execute up front as widened batch calls whose per-chunk
    latencies the (now stateless) event process replays. The event
    engine keeps ordering the processes that do share state.
    """
    l3_mult: Dict[int, int] = {}
    acp_mult: Dict[int, int] = {}
    for l3_cells, acp_cells in footprints:
        for cell in l3_cells:
            l3_mult[cell] = l3_mult.get(cell, 0) + 1
        for cell in acp_cells:
            acp_mult[cell] = acp_mult.get(cell, 0) + 1

    def _private(fp) -> bool:
        l3_cells, acp_cells = fp
        return (all(l3_mult[c] == 1 for c in l3_cells)
                and all(acp_mult[c] == 1 for c in acp_cells))

    coalesced = 0
    nf = len(fill_accs)
    nd = len(drain_accs)
    for i, (key, acc, cluster) in enumerate(fill_accs):
        if _private(footprints[i]):
            ctx.pre_fill[key] = _prefetch_lats(ctx, acc, cluster, False)
            coalesced += 1
    for i, (key, acc, cluster) in enumerate(drain_accs):
        if _private(footprints[nf + i]):
            ctx.pre_drain[key] = _prefetch_lats(ctx, acc, cluster, True)
            coalesced += 1
    for i, group in enumerate(groups):
        if len(group) != 1 or not _private(footprints[nf + nd + i]):
            continue
        part = ctx.offload.config.partition(group[0])
        indirect = ctx._indirect(part)
        if len(indirect) != 1:
            continue  # several accesses may interleave on shared cells
        cluster = ctx.clusters[part.partition_index]
        ctx.pre_ind[part.partition_index] = [
            lat for lat, _n in _segmented_indirect(
                ctx, indirect[0], cluster)
        ]
        coalesced += 1
    if coalesced:
        OBS.inc("engine.fastsim_coalesced", coalesced)


# ----------------------------------------------------------------------
# pass 1: per-process stateful sweeps
# ----------------------------------------------------------------------
def _fill_delays(ctx, acc, cluster: int) -> List[Optional[int]]:
    """Execute a fill FSM's fetches/accounting; per-chunk delays
    (None marks an invariant put-only chunk with no ``Delay``)."""
    from .engine import FSM_OVERLAP, MEM_FREQ_GHZ

    engine = ctx.engine
    energy = engine.energy
    invariant = ctx._is_invariant(acc)
    nchunks = len(ctx.chunk_sizes)
    delays: List[Optional[int]] = [None] * nchunks
    line_chunks = ctx._line_chunks(acc)
    chunk_lines = []
    for c in range(nchunks):
        if invariant and c > 0:
            break
        lines = line_chunks[c]
        if invariant:
            lines = lines[:1]
        chunk_lines.append(
            (c, lines, ctx._migrated(cluster, lines[0] if len(lines)
                                     else None))
        )
    lat_by_chunk = _segmented_fetch(ctx, chunk_lines, is_write=False)
    for (c, lines, _at), lat_cycles in zip(chunk_lines, lat_by_chunk):
        n_elems = (1 if invariant
                   else len(ctx._elems_for_chunk(acc, c)))
        if len(lines):
            energy.charge("access_unit", "fsm_step", n_elems)
            energy.charge("access_unit", "buffer_access", len(lines))
            energy.charge("access_unit", "translation_lookup", 1)
            ctx.stats.d_a_bytes += len(lines) * 64
        delays[c] = cycles_to_ps(
            lat_cycles / FSM_OVERLAP + len(lines), MEM_FREQ_GHZ
        )
    return delays


def _drain_delays(ctx, acc, cluster: int) -> List[Optional[int]]:
    from .engine import FSM_OVERLAP, MEM_FREQ_GHZ

    engine = ctx.engine
    energy = engine.energy
    line_chunks = ctx._line_chunks(acc)
    chunk_lines = []
    for c in range(len(ctx.chunk_sizes)):
        lines = line_chunks[c]
        chunk_lines.append(
            (c, lines, ctx._migrated(cluster, lines[0] if len(lines)
                                     else None))
        )
    lat_by_chunk = _segmented_fetch(ctx, chunk_lines, is_write=True)
    delays: List[Optional[int]] = [None] * len(ctx.chunk_sizes)
    for (c, lines, _at), lat_cycles in zip(chunk_lines, lat_by_chunk):
        if len(lines):
            energy.charge("access_unit", "fsm_step", len(lines))
            energy.charge("access_unit", "buffer_access", len(lines))
            ctx.stats.d_a_bytes += len(lines) * 64
        delays[c] = cycles_to_ps(
            lat_cycles / FSM_OVERLAP + len(lines), MEM_FREQ_GHZ
        )
    return delays


def _segmented_fetch(ctx, chunk_lines, is_write: bool) -> List[int]:
    """Line fetches for a list of (chunk, lines, at) in program order.

    With the batched fast path on, consecutive chunks presenting at the
    same cluster are widened into one segment-delimited hierarchy call
    (identical per-segment latencies and pooled commutative accounting);
    otherwise each chunk goes through the reference per-chunk path.
    """
    engine = ctx.engine
    out: List[int] = []
    if not engine._fast:
        for _c, lines, at in chunk_lines:
            out.append(ctx._fetch_chunk(at, lines, is_write))
        return out
    hier = engine.hierarchy
    i = 0
    n = len(chunk_lines)
    while i < n:
        at = chunk_lines[i][2]
        j = i + 1
        while j < n and chunk_lines[j][2] == at:
            j += 1
        if j - i == 1:
            out.append(hier.accel_line_fetch_batch(
                at, chunk_lines[i][1], is_write
            ))
        else:
            arrays = [cl[1] for cl in chunk_lines[i:j]]
            seg_ends = np.cumsum([len(a) for a in arrays])
            lat = hier.accel_line_fetch_batch(
                at, np.concatenate(arrays), is_write, seg_ends=seg_ends
            )
            out.extend(int(x) for x in lat)
        i = j
    return out


def _partition_delays(ctx, part, cluster: int
                      ) -> Tuple[List[int], Dict[int, int]]:
    """Execute a partition's indirect accesses/accounting; returns
    (per-chunk delays, chunk-0 pipeline-fill latency per channel)."""
    from .engine import MEM_FREQ_GHZ

    engine = ctx.engine
    energy = engine.energy
    config = ctx.offload.config
    profile = PartitionProfile.from_config(part)
    timing = engine.backend.timing(profile)
    ii_ps = timing.ii_ps
    indirect = ctx._indirect(part)
    traffic = engine.hierarchy.traffic
    intra_per_iter = profile.buffer_reads + profile.buffer_writes
    overlap = (1.0 if ctx.offload.serial_chain else engine.io_overlap)
    nchunks = len(ctx.chunk_sizes)

    # widening coalesces chunks of ONE access; with several indirect
    # accesses their per-chunk interleave is this process's program
    # order (intra-process overlap is allowed by the disjointness
    # proof), so fall back to chunk-major per-chunk calls there
    ind_cycles = [0] * nchunks
    if len(indirect) == 1 and engine._fast:
        acc = indirect[0]
        eb = acc.elem_bytes
        for c, (lat, n_elems) in enumerate(
                _segmented_indirect(ctx, acc, cluster)):
            ind_cycles[c] = lat
            if n_elems:
                energy.charge("access_unit", "translation_lookup", n_elems)
                ctx.stats.d_a_bytes += n_elems * eb
    else:
        for c in range(nchunks):
            for acc in indirect:
                elems = ctx._elems_for_chunk(acc, c)
                at = ctx._migrated(
                    cluster,
                    ctx._addr(acc, elems[0]) if len(elems) else None,
                )
                ind_cycles[c] += ctx._indirect_chunk(acc, at, elems)
                if len(elems):
                    energy.charge("access_unit", "translation_lookup",
                                  len(elems))
                    ctx.stats.d_a_bytes += len(elems) * acc.elem_bytes

    delays: List[int] = [0] * nchunks
    lat0: Dict[int, int] = {}
    for c, iters in enumerate(ctx.chunk_sizes):
        delays[c] = ii_ps * iters + cycles_to_ps(
            ind_cycles[c] / overlap, MEM_FREQ_GHZ
        )
        engine.backend.charge_iteration(profile, energy, count=iters)
        energy.charge("access_unit", "buffer_access",
                      intra_per_iter * iters)
        ctx.stats.intra_bytes += intra_per_iter * iters * 4
        for ch_id in part.produces:
            ch = config.channel(ch_id)
            dst_cluster = ctx.clusters[ch.consumer_partition]
            payload = ch.payload_bytes * iters
            lat_ps = traffic.record(
                MessageKind.ACC_OPERAND, cluster, dst_cluster, payload
            )
            traffic.record(
                MessageKind.ACC_CREDIT, dst_cluster, cluster, 0
            )
            ctx.stats.a_a_bytes += payload
            if c == 0:
                lat0[ch_id] = lat_ps
    return delays, lat0


def _segmented_indirect(ctx, acc, cluster: int
                        ) -> List[Tuple[int, int]]:
    """Per-chunk (latency cycles, element count) of one indirect access,
    widened across same-cluster chunk runs when the fast path is on."""
    engine = ctx.engine
    nchunks = len(ctx.chunk_sizes)
    elem_chunks = ctx._elem_chunks(acc)
    chunks = []
    for c in range(nchunks):
        elems = elem_chunks[c]
        at = ctx._migrated(
            cluster, ctx._addr(acc, elems[0]) if len(elems) else None
        )
        chunks.append((c, elems, at))
    out: List[Tuple[int, int]] = [(0, 0)] * nchunks
    base = engine.slab.by_name(acc.obj).base
    eb = acc.elem_bytes
    if not engine._fast or engine.private_cache is not None:
        for c, elems, at in chunks:
            out[c] = (ctx._indirect_chunk(acc, at, elems), len(elems))
        return out
    hier = engine.hierarchy
    i = 0
    while i < nchunks:
        at = chunks[i][2]
        j = i + 1
        while j < nchunks and chunks[j][2] == at:
            j += 1
        if j - i == 1:
            c, elems, _ = chunks[i]
            lat = hier.accel_elem_access_batch(
                at, base + elems * eb, acc.is_write, eb
            )
            out[c] = (lat, len(elems))
        else:
            arrays = [base + cl[1] * eb for cl in chunks[i:j]]
            seg_ends = np.cumsum([len(a) for a in arrays])
            lat = hier.accel_elem_access_batch(
                at, np.concatenate(arrays), acc.is_write, eb,
                seg_ends=seg_ends,
            )
            for (c, elems, _), sub in zip(chunks[i:j], lat):
                out[c] = (int(sub), len(elems))
        i = j
    return out


def _group_delays(ctx, members: List) -> List[int]:
    """Execute a fused serial group's accesses/accounting; per-chunk
    delays (mirrors ``_fused_group_proc``)."""
    from .engine import MEM_FREQ_GHZ

    engine = ctx.engine
    energy = engine.energy
    config = ctx.offload.config
    mesh = engine.hierarchy.mesh
    traffic = engine.hierarchy.traffic
    profiles = {p.partition_index: PartitionProfile.from_config(p)
                for p in members}
    per_iter_ps = sum(
        engine.backend.timing(profiles[p.partition_index]).ii_ps
        for p in members
    )
    group = [p.partition_index for p in members]
    intra_channels = [
        ch for ch in config.channels
        if ch.producer_partition in group
        and ch.consumer_partition in group
    ]
    hop_ps = sum(
        mesh.latency_ps(
            ctx.clusters[ch.producer_partition],
            ctx.clusters[ch.consumer_partition],
            ch.payload_bytes, MEM_FREQ_GHZ,
        )
        for ch in intra_channels
    )
    group_set = set(group)
    external_produces = [
        ch for ch in config.channels
        if ch.producer_partition in group_set
        and ch.consumer_partition not in group_set
    ]
    nchunks = len(ctx.chunk_sizes)
    # chunk-major, member/access-minor: the fused process's own program
    # order (intra-process footprint overlap is allowed)
    ind_cycles = [0] * nchunks
    for c in range(nchunks):
        for part in members:
            cluster = ctx.clusters[part.partition_index]
            for acc in ctx._indirect(part):
                elems = ctx._elems_for_chunk(acc, c)
                at = ctx._migrated(
                    cluster,
                    ctx._addr(acc, elems[0]) if len(elems) else None,
                )
                ind_cycles[c] += ctx._indirect_chunk(acc, at, elems)
                if len(elems):
                    energy.charge("access_unit", "translation_lookup",
                                  len(elems))
                    ctx.stats.d_a_bytes += len(elems) * acc.elem_bytes
    delays: List[int] = [0] * nchunks
    for c, iters in enumerate(ctx.chunk_sizes):
        delays[c] = (
            iters * (per_iter_ps + hop_ps)
            + cycles_to_ps(ind_cycles[c], MEM_FREQ_GHZ)
        )
        for part in members:
            profile = profiles[part.partition_index]
            engine.backend.charge_iteration(profile, energy, count=iters)
            intra = profile.buffer_reads + profile.buffer_writes
            energy.charge("access_unit", "buffer_access", intra * iters)
            ctx.stats.intra_bytes += intra * iters * 4
        for ch in intra_channels + external_produces:
            payload = ch.payload_bytes * iters
            traffic.record(
                MessageKind.ACC_OPERAND,
                ctx.clusters[ch.producer_partition],
                ctx.clusters[ch.consumer_partition],
                payload,
            )
            ctx.stats.a_a_bytes += payload
    return delays


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def replay(ctx) -> Optional[int]:
    """Analytically replay ``ctx``'s offload run; returns the final
    simulation time in ps, or None when the run is not provably safe
    (the caller then falls back to the event engine)."""
    engine = ctx.engine
    if engine.private_cache is not None:
        return None  # Mono-CA shared-port contention is event-ordered
    config = ctx.offload.config
    groups = ctx._serial_groups()
    order = _executor_graph(ctx, groups)
    if order is None:
        return None

    # mirror build(): per-partition buffer groupings and channel caps
    fill_accs: List[Tuple[int, object, int]] = []   # (buf_key, acc, cluster)
    drain_accs: List[Tuple[int, object, int]] = []
    for part in config.partitions:
        cluster = ctx.clusters[part.partition_index]
        idx = part.partition_index
        ctx.read_bufs[idx] = []
        ctx.write_bufs[idx] = []
        for buf_key, acc in ctx._grouped(ctx._buffered_reads(part)):
            ctx.read_bufs[idx].append(buf_key)
            fill_accs.append((buf_key, acc, cluster))
        for buf_key, acc in ctx._grouped(ctx._buffered_writes(part)):
            ctx.write_bufs[idx].append(buf_key)
            drain_accs.append((buf_key, acc, cluster))

    # pass 0: footprint disjointness (pure reads; no state touched yet)
    footprints: List[Tuple[Set[int], Set[int]]] = []
    for _key, acc, _cl in fill_accs + drain_accs:
        footprints.append((_l3_cells(ctx, _full_lines(ctx, acc)), set()))
    for group in groups:
        l3_cells: Set[int] = set()
        acp_cells: Set[int] = set()
        for pidx in group:
            for acc in ctx._indirect(config.partition(pidx)):
                addrs = _full_addrs(ctx, acc)
                lines = np.unique(addrs >> 6) << 6 if addrs.size else addrs
                cells, extra = _acp_cells(ctx, addrs)
                acp_cells |= cells
                l3_cells |= _l3_cells(ctx, lines) | extra
        footprints.append((l3_cells, acp_cells))
    if not _disjoint(footprints):
        _precompute_private(ctx, footprints, fill_accs, drain_accs,
                            groups)
        OBS.inc("engine.fastsim_fallbacks")
        return None

    # pass 1: stateful sweeps in spawn order
    nchunks = len(ctx.chunk_sizes)
    fill_caps = {key: ctx._token_capacity(acc.elem_bytes)
                 for key, acc, _cl in fill_accs}
    chan_caps = {}
    for ch in config.channels:
        if not ctx._intra_group(ch, groups):
            chan_caps[ch.channel_id] = ctx._token_capacity(ch.payload_bytes)
    fill_d = {key: _fill_delays(ctx, acc, cl)
              for key, acc, cl in fill_accs}
    drain_d = {key: _drain_delays(ctx, acc, cl)
               for key, acc, cl in drain_accs}
    exec_d: Dict[Tuple[int, ...], List[int]] = {}
    exec_lat0: Dict[Tuple[int, ...], Dict[int, int]] = {}
    for group in order:
        if len(group) == 1:
            part = config.partition(group[0])
            d, lat0 = _partition_delays(
                ctx, part, ctx.clusters[part.partition_index]
            )
        else:
            members = [config.partition(p) for p in group]
            d = _group_delays(ctx, members)
            lat0 = {}
        exec_d[group] = d
        exec_lat0[group] = lat0

    # pass 2: exact marked-graph schedule, chunk-major
    fill_cur = {key: 0 for key, _a, _c in fill_accs}
    drain_cur = {key: 0 for key, _a, _c in drain_accs}
    exec_cur = {g: 0 for g in order}
    fill_put = {key: [0] * nchunks for key in fill_cur}     # token avail
    fill_get = {key: [0] * nchunks for key in fill_cur}     # consumption
    drain_put = {key: [0] * nchunks for key in drain_cur}
    drain_get = {key: [0] * nchunks for key in drain_cur}
    chan_put = {cid: [0] * nchunks for cid in chan_caps}
    chan_get = {cid: [0] * nchunks for cid in chan_caps}

    for c in range(nchunks):
        for key, _acc, _cl in fill_accs:
            cur = fill_cur[key]
            d = fill_d[key][c]
            if d is not None:
                cur += d
            cap = fill_caps[key]
            if c >= cap:
                g = fill_get[key][c - cap]
                if g > cur:
                    cur = g
            fill_put[key][c] = cur
            fill_cur[key] = cur
        for group in order:
            cur = exec_cur[group]
            if len(group) == 1:
                part = config.partition(group[0])
                consumes = part.consumes
                reads = ctx.read_bufs[part.partition_index]
                produces = part.produces
                writes = ctx.write_bufs[part.partition_index]
            else:
                group_set = set(group)
                consumes = [ch.channel_id for ch in config.channels
                            if ch.consumer_partition in group_set
                            and ch.producer_partition not in group_set]
                reads = [b for p in group for b in ctx.read_bufs[p]]
                produces = []
                writes = [b for p in group for b in ctx.write_bufs[p]]
                ext = [ch.channel_id for ch in config.channels
                       if ch.producer_partition in group_set
                       and ch.consumer_partition not in group_set]
            for ch_id in consumes:
                p = chan_put[ch_id][c]
                if p > cur:
                    cur = p
                chan_get[ch_id][c] = cur
            for buf in reads:
                p = fill_put[buf][c]
                if p > cur:
                    cur = p
                fill_get[buf][c] = cur
            cur += exec_d[group][c]
            lat0 = exec_lat0[group]
            if len(group) == 1:
                for ch_id in produces:
                    if c == 0 and lat0.get(ch_id):
                        cur += lat0[ch_id]
                    cap = chan_caps[ch_id]
                    if c >= cap:
                        g = chan_get[ch_id][c - cap]
                        if g > cur:
                            cur = g
                    chan_put[ch_id][c] = cur
            else:
                for ch_id in ext:
                    cap = chan_caps[ch_id]
                    if c >= cap:
                        g = chan_get[ch_id][c - cap]
                        if g > cur:
                            cur = g
                    chan_put[ch_id][c] = cur
            for buf in writes:
                if c >= _DRAIN_CAP:
                    g = drain_get[buf][c - _DRAIN_CAP]
                    if g > cur:
                        cur = g
                drain_put[buf][c] = cur
            exec_cur[group] = cur
        for key, _acc, _cl in drain_accs:
            cur = drain_cur[key]
            p = drain_put[key][c]
            if p > cur:
                cur = p
            drain_get[key][c] = cur
            cur += drain_d[key][c]
            drain_cur[key] = cur

    end = 0
    for cur in fill_cur.values():
        if cur > end:
            end = cur
    for cur in exec_cur.values():
        if cur > end:
            end = cur
    for cur in drain_cur.values():
        if cur > end:
            end = cur
    return end

"""Runtime: the execution flow of paper §V-B.

Hosts configure compiled offloads over the MMIO interface; distributed
partitions then execute as decoupled producer/consumer processes on the
discrete-event engine, with stride-FSM fill/drain processes serving the
access-unit buffers and all traffic/energy charged to the shared ledgers.
"""

from .streams import SiteStreams
from .engine import EngineStats, OffloadEngine

__all__ = ["SiteStreams", "EngineStats", "OffloadEngine"]

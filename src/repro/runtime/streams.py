"""Per-site element-index streams extracted from interpreter traces.

The timing engine is value-free: it needs, per static access site, the
ordered element indices that site touched. Stream sites are affine and
predictable, but indirect sites (``B[A[i]]``) depend on data — the golden
interpreter's trace supplies the real indices for both uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..fastpath import fast_path_enabled
from ..ir.interp import MemAccess
from ..ir.trace import ColumnarTrace


class SiteStreams:
    """Ordered element indices per static access site."""

    def __init__(self, trace: Iterable[MemAccess]):
        if isinstance(trace, ColumnarTrace) and fast_path_enabled():
            # vectorized group-by; identical streams to the scalar loop
            self._streams: Dict[int, np.ndarray] = dict(
                trace.streams_by_site()
            )
            return
        buckets: Dict[int, List[int]] = {}
        for acc in trace:
            buckets.setdefault(acc.site_id, []).append(acc.elem_index)
        self._streams = {
            site: np.asarray(idxs, dtype=np.int64)
            for site, idxs in buckets.items()
        }

    def stream(self, site_id: int) -> np.ndarray:
        return self._streams.get(site_id, np.empty(0, dtype=np.int64))

    def for_sites(self, site_ids: Sequence[int]) -> np.ndarray:
        """Representative stream for an access node (CSE-merged sites all
        touch the same addresses, so the first non-empty one stands in)."""
        for site in site_ids:
            stream = self._streams.get(site)
            if stream is not None and stream.size:
                return stream
        return np.empty(0, dtype=np.int64)

    def length(self, site_ids: Sequence[int]) -> int:
        return int(self.for_sites(site_ids).size)

    def sites(self) -> List[int]:
        return sorted(self._streams)

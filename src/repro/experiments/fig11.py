"""Figure 11: performance — memory-operation rate, IPC, and speedup.

Paper headline (Fig 11b): Dist-DA-F speedup of 1.59x over OoO, 1.43x
over Mono-CA and 1.65x over Mono-DA-IO.
"""

from __future__ import annotations

from typing import Dict

from .runner import PAPER_CONFIGS, ResultMatrix, format_table, geomean


def compute(matrix: ResultMatrix) -> Dict:
    mem_rate = {}
    ipc = {}
    speedup = {}
    for workload in matrix.workloads:
        base = matrix.baseline(workload)
        mem_rate[workload] = {}
        ipc[workload] = {}
        speedup[workload] = {}
        for config in PAPER_CONFIGS:
            run = matrix.get(workload, config)
            mem_rate[workload][config] = (
                run.mem_op_rate / max(base.mem_op_rate, 1e-12)
            )
            ipc[workload][config] = run.ipc / max(base.ipc, 1e-12)
            speedup[workload][config] = run.speedup_vs(base)
    gm_speedup = {
        config: geomean(speedup[w][config] for w in matrix.workloads)
        for config in PAPER_CONFIGS
    }
    dist_f = gm_speedup["dist_da_f"]
    return {
        "mem_rate": mem_rate,
        "ipc": ipc,
        "speedup": speedup,
        "gm_speedup": gm_speedup,
        "headline": {
            "dist_da_f_vs_ooo": dist_f,
            "dist_da_f_vs_mono_ca": dist_f / gm_speedup["mono_ca"],
            "dist_da_f_vs_mono_da_io": dist_f / gm_speedup["mono_da_io"],
        },
    }


def format_rows(data: Dict) -> str:
    header = ["bench"] + [
        f"{c}:{m}" for c in PAPER_CONFIGS for m in ("spd", "ipc", "mem")
    ]
    rows = []
    for w in data["speedup"]:
        row = [w]
        for c in PAPER_CONFIGS:
            row += [
                f"{data['speedup'][w][c]:.2f}",
                f"{data['ipc'][w][c]:.2f}",
                f"{data['mem_rate'][w][c]:.2f}",
            ]
        rows.append(row)
    rows.append(
        ["GM"] + [
            v for c in PAPER_CONFIGS
            for v in (f"{data['gm_speedup'][c]:.2f}", "", "")
        ]
    )
    h = data["headline"]
    notes = (
        f"\nDist-DA-F speedup vs OoO {h['dist_da_f_vs_ooo']:.2f}x "
        f"(paper 1.59x) | vs Mono-CA {h['dist_da_f_vs_mono_ca']:.2f}x "
        f"(paper 1.43x) | vs Mono-DA-IO "
        f"{h['dist_da_f_vs_mono_da_io']:.2f}x (paper 1.65x)"
    )
    return ("Figure 11: normalized speedup / IPC / memory-op rate\n"
            + format_table(header, rows) + notes)

"""Figure 14: software-optimization sensitivity (§VI-E).

Two configurations, normalized to Dist-DA-IO:

* **Dist-DA-IO+SW** — 4-issue in-order cores plus software prefetches in
  the offloaded code: hides L3 latency for the indirect-access
  benchmarks (pca, pr most prominently in the paper).
* **Dist-DA-F+A** — manual data-structure allocation for intra-cluster
  locality: minor improvements, because innermost-loop offloads already
  have intra-cluster locality most of the time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from ..params import MachineParams, experiment_machine
from ..sim.system import simulate_workload
from ..workloads import ALL_WORKLOADS, PAPER_ORDER
from .runner import format_table, geomean

VARIANTS = ("dist_da_io_sw", "dist_da_f_alloc")


def compute(workloads: Sequence[str] = PAPER_ORDER,
            machine: Optional[MachineParams] = None,
            scale: str = "small") -> Dict:
    machine = machine or experiment_machine()
    speedup: Dict[str, Dict[str, float]] = {}
    energy: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        base_io = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), "dist_da_io",
            machine=machine,
        )
        sw = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), "dist_da_io_sw",
            machine=machine,
        )
        # +A: allocation tuned for intra-cluster locality — modeled as
        # the F configuration with larger access-unit buffers capturing
        # the manually co-located windows
        alloc_machine = replace(
            machine, access_unit=replace(
                machine.access_unit,
                buffer_bytes=machine.access_unit.buffer_bytes * 2,
            )
        )
        f_alloc = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), "dist_da_f",
            machine=alloc_machine,
        )
        speedup[workload] = {
            "dist_da_io_sw": sw.speedup_vs(base_io),
            "dist_da_f_alloc": f_alloc.speedup_vs(base_io),
        }
        energy[workload] = {
            "dist_da_io_sw": sw.energy_efficiency_vs(base_io),
            "dist_da_f_alloc": f_alloc.energy_efficiency_vs(base_io),
        }
    gm = {
        v: geomean(speedup[w][v] for w in speedup) for v in VARIANTS
    }
    return {"speedup": speedup, "energy_eff": energy, "gm_speedup": gm}


def format_rows(data: Dict) -> str:
    header = ["bench"] + [
        f"{v}:{m}" for v in VARIANTS for m in ("spd", "ee")
    ]
    rows = []
    for w in data["speedup"]:
        row = [w]
        for v in VARIANTS:
            row += [f"{data['speedup'][w][v]:.2f}",
                    f"{data['energy_eff'][w][v]:.2f}"]
        rows.append(row)
    rows.append(["GM"] + [
        x for v in VARIANTS for x in (f"{data['gm_speedup'][v]:.2f}", "")
    ])
    return ("Figure 14: software optimizations (normalized to "
            "Dist-DA-IO)\n" + format_table(header, rows))

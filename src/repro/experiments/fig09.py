"""Figure 9: dynamic access distribution (intra / D-A / A-A).

For each accelerator configuration: *intra* is traffic internal to an
accelerator's local buffers, *D-A* external traffic between accelerator
and cache hierarchy, *A-A* between accelerators. Spatially-local
workloads show a high intra share (cheaper than cache accesses), and
Dist-DA cuts A-A versus Mono-DA (sub-computation placement).
"""

from __future__ import annotations

from typing import Dict

from .runner import ResultMatrix, format_table

#: configurations with accelerators (the OoO baseline has no Fig 9 bars)
ACCEL_CONFIGS = ("mono_da_io", "dist_da_io", "dist_da_f")


def compute(matrix: ResultMatrix) -> Dict:
    rows = {}
    for workload in matrix.workloads:
        rows[workload] = {}
        for config in ACCEL_CONFIGS:
            dist = matrix.get(workload, config).access_dist
            rows[workload][config] = dist.fractions()
    return {"per_workload": rows}


def format_rows(data: Dict) -> str:
    header = ["bench"] + [
        f"{c}:{part}" for c in ACCEL_CONFIGS
        for part in ("intra", "d_a", "a_a")
    ]
    rows = []
    for w, per_cfg in data["per_workload"].items():
        row = [w]
        for c in ACCEL_CONFIGS:
            fr = per_cfg[c]
            row += [f"{fr['intra']:.2f}", f"{fr['d_a']:.2f}",
                    f"{fr['a_a']:.2f}"]
        rows.append(row)
    return ("Figure 9: dynamic access distribution (fractions)\n"
            + format_table(header, rows))

"""Figure 12: case studies (§VI-D).

(a) Control-intensive offloads: spmv and nw on three Dist-DA variants —
    B (compiler-automated blocked implementation), BN (user-annotated
    blocked loop nests with localized control) and BNS (user-scheduled
    block fill/drain). Paper: spmv goes 0.44x -> 1.22x -> 1.95x.

(b) Multithreaded pathfinder and BFS at 1/2/4/8 threads. Threads split
    the parallel outer iterations; shared-LLC/DRAM contention is charged
    from measured DRAM utilization. Pathfinder skips stream-based access
    specialization (per-thread iteration scheduling — paper's framework
    limitation), so its scaling saturates earlier than BFS's.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..interface.intrinsics import CoverageRecorder, Intrinsic
from ..params import MachineParams, experiment_machine
from ..sim.system import simulate_workload
from ..workloads import ALL_WORKLOADS
from .runner import format_table

CASE_CONFIGS = ("dist_da_b", "dist_da_bn", "dist_da_bns")
THREAD_COUNTS = (1, 2, 4, 8)
#: fraction of DRAM-busy time that becomes serialization per extra thread
CONTENTION = 0.5


def user_annotation_coverage(workload: str) -> CoverageRecorder:
    """Table V's user-annotated ('U') mechanism rows for the case studies."""
    cov = CoverageRecorder()
    user = CoverageRecorder.USER
    base = [
        Intrinsic.CP_PRODUCE, Intrinsic.CP_CONSUME, Intrinsic.CP_CONFIG,
        Intrinsic.CP_CONFIG_STREAM, Intrinsic.CP_SET_RF,
        Intrinsic.CP_LOAD_RF, Intrinsic.CP_RUN,
    ]
    extra = {
        "spmv": [],
        "nw": [Intrinsic.CP_WRITE, Intrinsic.CP_READ, Intrinsic.CP_STEP,
               Intrinsic.CP_FILL_RA, Intrinsic.CP_DRAIN_RA],
        "bfs": [Intrinsic.CP_WRITE, Intrinsic.CP_READ, Intrinsic.CP_STEP,
                Intrinsic.CP_DRAIN_RA],
        "pf": [Intrinsic.CP_WRITE, Intrinsic.CP_READ, Intrinsic.CP_STEP,
               Intrinsic.CP_DRAIN_RA],
    }
    for intr in base + extra.get(workload, []):
        cov.record(intr, user)
    return cov


def compute_control_intensive(machine: Optional[MachineParams] = None,
                              scale: str = "small") -> Dict:
    """Fig 12a: spmv & nw speedups for B / BN / BNS, normalized to OoO."""
    machine = machine or experiment_machine()
    rows: Dict[str, Dict[str, float]] = {}
    for workload in ("spmv", "nw"):
        base = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), "ooo", machine=machine
        )
        rows[workload] = {}
        for config in CASE_CONFIGS:
            run = simulate_workload(
                ALL_WORKLOADS[workload].build(scale), config,
                machine=machine,
            )
            rows[workload][config] = run.speedup_vs(base)
    return {"speedup": rows}


def compute_multithreaded(machine: Optional[MachineParams] = None,
                          scale: str = "small") -> Dict:
    """Fig 12b: thread-count scaling for pathfinder and BFS."""
    machine = machine or experiment_machine()
    rows: Dict[str, Dict[int, float]] = {}
    for workload, config in (("pf", "dist_da_mt"), ("bfs", "dist_da_f")):
        base = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), "ooo", machine=machine
        )
        single = simulate_workload(
            ALL_WORKLOADS[workload].build(scale), config, machine=machine
        )
        # DRAM utilization drives the shared-memory contention uplift
        dram_cycles = single.cache_stats.dram * 5
        util = min(dram_cycles / max(single.cycles, 1), 1.0)
        rows[workload] = {}
        for threads in THREAD_COUNTS:
            contention = 1.0 + util * CONTENTION * (threads - 1)
            time_ps = single.time_ps * contention / threads
            rows[workload][threads] = base.time_ps / time_ps
    return {"speedup": rows}


def compute(machine: Optional[MachineParams] = None,
            scale: str = "small") -> Dict:
    return {
        "control_intensive": compute_control_intensive(machine, scale),
        "multithreaded": compute_multithreaded(machine, scale),
    }


def format_rows(data: Dict) -> str:
    a = data["control_intensive"]["speedup"]
    header = ["bench"] + list(CASE_CONFIGS)
    rows: List[List[str]] = [
        [w] + [f"{a[w][c]:.2f}" for c in CASE_CONFIGS] for w in a
    ]
    out = ("Figure 12a: control-intensive case study (speedup vs OoO; "
           "paper spmv: 0.44/1.22/1.95)\n" + format_table(header, rows))
    b = data["multithreaded"]["speedup"]
    header = ["bench"] + [f"{t}T" for t in THREAD_COUNTS]
    rows = [
        [w] + [f"{b[w][t]:.2f}" for t in THREAD_COUNTS] for w in b
    ]
    out += ("\n\nFigure 12b: multithreaded scaling (speedup vs 1-thread "
            "OoO)\n" + format_table(header, rows))
    return out

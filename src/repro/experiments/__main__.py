"""Regenerate every paper table and figure from the command line.

Usage::

    python -m repro.experiments [--scale small] [--out report.txt]

Runs the full 12-benchmark x 6-configuration matrix plus the case
studies and sensitivity sweeps, printing each table/figure in the
paper's order. Expect several minutes of simulation at "small" scale.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..params import experiment_machine
from . import (
    area_wss,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    run_matrix,
    table5,
    table6,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation section.",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    machine = experiment_machine()
    sections = []

    def emit(text: str) -> None:
        print(text, flush=True)
        sections.append(text)

    start = time.time()
    emit(f"== Dist-DA reproduction report (scale={args.scale}) ==\n")
    matrix = run_matrix(scale=args.scale, machine=machine)
    emit(f"[matrix populated in {time.time() - start:.0f}s; "
         f"all validated: {matrix.all_validated()}]\n")

    emit(fig07.format_rows(fig07.compute(matrix)) + "\n")
    emit(fig08.format_rows(fig08.compute(matrix)) + "\n")
    emit(fig09.format_rows(fig09.compute(matrix)) + "\n")
    emit(fig10.format_rows(fig10.compute(matrix)) + "\n")
    emit(fig11.format_rows(fig11.compute(matrix)) + "\n")
    emit(fig12.format_rows(fig12.compute(machine, args.scale)) + "\n")
    emit(fig13.format_rows(
        fig13.compute(machine=machine, scale=args.scale)) + "\n")
    emit(fig14.format_rows(
        fig14.compute(machine=machine, scale=args.scale)) + "\n")
    emit(table5.format_rows(table5.compute(scale="tiny")) + "\n")
    emit(table6.format_rows(table6.compute(scale=args.scale)) + "\n")
    emit(area_wss.format_area(area_wss.compute_area()) + "\n")
    emit(area_wss.format_wss(area_wss.compute_wss(machine=machine)) + "\n")
    emit(f"[total {time.time() - start:.0f}s]")

    if args.out:
        with open(args.out, "w") as f:
            f.write("\n".join(sections) + "\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Regenerate every paper table and figure from the command line.

Usage::

    python -m repro.experiments [--scale small] [--out report.txt]
                                [--out-json matrix.json]
                                [--jobs N] [--stats]

Runs the full 12-benchmark x 6-configuration matrix plus the case
studies and sensitivity sweeps, printing each table/figure in the
paper's order. ``--jobs N`` (or ``REPRO_JOBS=N``) parallelizes the
matrix over worker processes; results are identical to the serial run.
``--out`` writes each section to the file incrementally, so a failure in
a late figure never loses the sections already produced. ``--out-json``
additionally dumps every matrix cell's headline numbers as a
byte-deterministic JSON document (written as soon as the matrix is
populated, before any figure computes): the same bytes regardless of
``--jobs``, suitable for machine diffing across runs. ``--stats``
appends the run-observability report (interpreter invocations, trace
cache hits, per-cell wall clocks, ...).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs import OBS
from ..params import experiment_machine
from . import (
    area_wss,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    run_matrix,
    table5,
    table6,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation section.",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--out", default=None,
                        help="also write the report to this file "
                             "(incrementally, section by section)")
    parser.add_argument("--out-json", default=None,
                        help="dump per-cell matrix headline numbers to "
                             "this file as deterministic JSON")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel matrix workers "
                             "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--stats", action="store_true",
                        help="append the run-observability report")
    args = parser.parse_args(argv)

    machine = experiment_machine()
    # crash-safe report: the file is opened once and flushed after every
    # section, so partial reports survive a failure in a late figure
    out_file = open(args.out, "w") if args.out else None

    def emit(text: str) -> None:
        print(text, flush=True)
        if out_file is not None:
            out_file.write(text + "\n")
            out_file.flush()

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    start = time.time()
    try:
        emit(f"== Dist-DA reproduction report (scale={args.scale}) ==\n")
        matrix = run_matrix(scale=args.scale, machine=machine,
                            jobs=args.jobs, progress=progress)
        emit(f"[matrix populated in {time.time() - start:.0f}s; "
             f"all validated: {matrix.all_validated()}]\n")

        if args.out_json:
            from ..testing.golden import cell_record, snapshot_text

            snapshot = {
                "scale": args.scale,
                "workloads": list(matrix.workloads),
                "configs": list(matrix.configs),
                "cells": {
                    w: {
                        c: cell_record(matrix.results[(w, c)])
                        for c in matrix.configs
                    }
                    for w in matrix.workloads
                },
            }
            with open(args.out_json, "w") as jf:
                jf.write(snapshot_text(snapshot))
            progress(f"matrix JSON written to {args.out_json}")

        emit(fig07.format_rows(fig07.compute(matrix)) + "\n")
        emit(fig08.format_rows(fig08.compute(matrix)) + "\n")
        emit(fig09.format_rows(fig09.compute(matrix)) + "\n")
        emit(fig10.format_rows(fig10.compute(matrix)) + "\n")
        emit(fig11.format_rows(fig11.compute(matrix)) + "\n")
        emit(fig12.format_rows(fig12.compute(machine, args.scale)) + "\n")
        emit(fig13.format_rows(
            fig13.compute(machine=machine, scale=args.scale)) + "\n")
        emit(fig14.format_rows(
            fig14.compute(machine=machine, scale=args.scale)) + "\n")
        emit(table5.format_rows(table5.compute(scale="tiny")) + "\n")
        emit(table6.format_rows(table6.compute(scale=args.scale)) + "\n")
        emit(area_wss.format_area(area_wss.compute_area()) + "\n")
        emit(area_wss.format_wss(area_wss.compute_wss(machine=machine))
             + "\n")
        if args.stats:
            emit(OBS.report() + "\n")
        emit(f"[total {time.time() - start:.0f}s]")
    finally:
        if out_file is not None:
            out_file.close()
            print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

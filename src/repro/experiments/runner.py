"""Experiment matrix: run (workload x configuration) simulations once and
share the results across every figure/table module."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..interface.intrinsics import CoverageRecorder
from ..params import MachineParams, experiment_machine
from ..sim.results import RunResult
from ..sim.system import simulate_workload
from ..workloads import ALL_WORKLOADS, PAPER_ORDER

#: the accelerator configurations of §VI-A, in presentation order
PAPER_CONFIGS = (
    "mono_ca", "mono_da_io", "mono_da_f", "dist_da_io", "dist_da_f",
)
BASELINE = "ooo"


def geomean(values: Iterable[float]) -> float:
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ConfigError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class ResultMatrix:
    """Lazily-populated (workload, config) -> RunResult matrix."""

    scale: str = "small"
    machine: Optional[MachineParams] = None
    workloads: Sequence[str] = PAPER_ORDER
    configs: Sequence[str] = (BASELINE,) + PAPER_CONFIGS
    results: Dict[Tuple[str, str], RunResult] = field(default_factory=dict)
    coverage: Dict[str, CoverageRecorder] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = experiment_machine()

    def get(self, workload: str, config: str) -> RunResult:
        key = (workload, config)
        if key not in self.results:
            if workload not in ALL_WORKLOADS:
                raise ConfigError(f"unknown workload {workload!r}")
            cov = self.coverage.setdefault(workload, CoverageRecorder())
            instance = ALL_WORKLOADS[workload].build(self.scale)
            self.results[key] = simulate_workload(
                instance, config, machine=self.machine, coverage=cov
            )
        return self.results[key]

    def baseline(self, workload: str) -> RunResult:
        return self.get(workload, BASELINE)

    def run_all(self) -> "ResultMatrix":
        for workload in self.workloads:
            for config in self.configs:
                self.get(workload, config)
        return self

    # -- normalized metric helpers (all relative to the OoO baseline) -----
    def energy_efficiency(self, workload: str, config: str) -> float:
        return self.get(workload, config).energy_efficiency_vs(
            self.baseline(workload)
        )

    def speedup(self, workload: str, config: str) -> float:
        return self.get(workload, config).speedup_vs(self.baseline(workload))

    def movement_reduction(self, workload: str, config: str) -> float:
        return self.get(workload, config).movement_reduction_vs(
            self.baseline(workload)
        )

    def gm(self, metric: str, config: str) -> float:
        fn = {
            "ee": self.energy_efficiency,
            "speedup": self.speedup,
            "movement": self.movement_reduction,
        }[metric]
        return geomean(fn(w, config) for w in self.workloads)

    def all_validated(self) -> bool:
        return all(r.validated for r in self.results.values())


def run_matrix(scale: str = "small",
               machine: Optional[MachineParams] = None,
               workloads: Sequence[str] = PAPER_ORDER,
               configs: Sequence[str] = (BASELINE,) + PAPER_CONFIGS
               ) -> ResultMatrix:
    """Build and fully populate a result matrix."""
    return ResultMatrix(
        scale=scale, machine=machine, workloads=tuple(workloads),
        configs=tuple(configs),
    ).run_all()


def format_table(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(str(row[col])) for row in [header] + rows)
        for col in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(header), sep] + [fmt(r) for r in rows])

"""Experiment matrix: run (workload x configuration) simulations once and
share the results across every figure/table module.

The matrix can be populated three ways, all numerically identical:

* lazily, one cell at a time (``matrix.get(w, c)``);
* serially in paper order (``run_matrix()`` / ``run_all(jobs=1)``);
* in parallel over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``run_matrix(jobs=N)`` or ``REPRO_JOBS=N``), fanning the grid out one
  worker per workload so each worker interprets its workload's kernels
  once and replays the functional trace for all remaining configurations
  via the shared :class:`~repro.sim.tracecache.TraceCache`.

Workers ship their per-cell :class:`~repro.sim.results.RunResult`\\ s,
per-workload :class:`~repro.interface.intrinsics.CoverageRecorder`\\ s and
observability snapshots back to the parent, which merges them.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import envcfg
from ..errors import ConfigError
from ..interface.intrinsics import CoverageRecorder
from ..obs import OBS, CellStat
from ..params import MachineParams, experiment_machine
from ..sim.results import RunResult
from ..sim.system import simulate_workload
from ..sim.tracecache import TraceCache, functional_key
from ..workloads import ALL_WORKLOADS, PAPER_ORDER

#: the accelerator configurations of §VI-A, in presentation order
PAPER_CONFIGS = (
    "mono_ca", "mono_da_io", "mono_da_f", "dist_da_io", "dist_da_f",
)
BASELINE = "ooo"

#: a progress sink receives one human-readable line per completed unit
ProgressFn = Callable[[str], None]


def geomean(values: Iterable[float]) -> float:
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ConfigError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def resolve_jobs(jobs: Optional[int]) -> int:
    """CLI/env parallelism knob: explicit value, else $REPRO_JOBS, else 1.

    Serial is the default so tests and figure modules stay deterministic
    in ordering (results are identical either way, cell for cell).
    """
    if jobs is None:
        jobs = envcfg.default_jobs()
    return max(1, int(jobs))


def _default_trace_cache() -> TraceCache:
    return TraceCache(max_entries=2, spill_dir=envcfg.trace_spill_dir())


@dataclass
class ResultMatrix:
    """Lazily-populated (workload, config) -> RunResult matrix."""

    scale: str = "small"
    machine: Optional[MachineParams] = None
    workloads: Sequence[str] = PAPER_ORDER
    configs: Sequence[str] = (BASELINE,) + PAPER_CONFIGS
    results: Dict[Tuple[str, str], RunResult] = field(default_factory=dict)
    coverage: Dict[str, CoverageRecorder] = field(default_factory=dict)
    #: shared functional-trace store; one entry serves every config of a
    #: workload, so only the first config pays the interpreter
    trace_cache: Optional[TraceCache] = None

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = experiment_machine()
        if self.trace_cache is None:
            self.trace_cache = _default_trace_cache()

    def get(self, workload: str, config: str) -> RunResult:
        key = (workload, config)
        if key not in self.results:
            if workload not in ALL_WORKLOADS:
                raise ConfigError(f"unknown workload {workload!r}")
            cov = self.coverage.setdefault(workload, CoverageRecorder())
            start = perf_counter()
            instance = ALL_WORKLOADS[workload].build(self.scale)
            self.results[key] = simulate_workload(
                instance, config, machine=self.machine, coverage=cov,
                trace_cache=self.trace_cache,
                trace_key=functional_key(workload, self.scale),
            )
            OBS.add_cell(CellStat(
                workload, config, perf_counter() - start,
                trace_elems=self.trace_cache.peak_trace_elems(
                    workload, self.scale
                ),
            ))
        return self.results[key]

    def baseline(self, workload: str) -> RunResult:
        return self.get(workload, BASELINE)

    def run_all(self, jobs: Optional[int] = None,
                progress: Optional[ProgressFn] = None) -> "ResultMatrix":
        """Populate every cell; ``jobs > 1`` fans workloads out over a
        process pool. Cell results are identical either way."""
        jobs = resolve_jobs(jobs)
        if jobs > 1 and len(self.workloads) > 1:
            return self._run_all_parallel(jobs, progress)
        total = len(self.workloads) * len(self.configs)
        done = 0
        for workload in self.workloads:
            for config in self.configs:
                start = perf_counter()
                self.get(workload, config)
                done += 1
                if progress is not None:
                    progress(
                        f"[{done}/{total}] {workload} x {config}"
                        f" ({perf_counter() - start:.2f}s)"
                    )
        return self

    def _run_all_parallel(self, jobs: int,
                          progress: Optional[ProgressFn]) -> "ResultMatrix":
        pending = [
            w for w in self.workloads
            if any((w, c) not in self.results for c in self.configs)
        ]
        for w in pending:
            if w not in ALL_WORKLOADS:
                raise ConfigError(f"unknown workload {w!r}")
        args = [
            (w, tuple(self.configs), self.scale, self.machine)
            for w in pending
        ]
        done = 0
        with ProcessPoolExecutor(max_workers=min(jobs, len(args))) as pool:
            futures = {
                pool.submit(_matrix_worker, a): a[0] for a in args
            }
            for future in as_completed(futures):
                workload, cells, cov, snapshot = future.result()
                for config, result in cells:
                    self.results[(workload, config)] = result
                self.coverage[workload] = cov
                OBS.merge(snapshot)
                done += 1
                if progress is not None:
                    wall = sum(s[2] for s in snapshot.get("cells", ()))
                    progress(
                        f"[{done}/{len(args)} workloads] {workload}"
                        f" ({len(cells)} cells, {wall:.2f}s)"
                    )
        return self

    # -- normalized metric helpers (all relative to the OoO baseline) -----
    def energy_efficiency(self, workload: str, config: str) -> float:
        return self.get(workload, config).energy_efficiency_vs(
            self.baseline(workload)
        )

    def speedup(self, workload: str, config: str) -> float:
        return self.get(workload, config).speedup_vs(self.baseline(workload))

    def movement_reduction(self, workload: str, config: str) -> float:
        return self.get(workload, config).movement_reduction_vs(
            self.baseline(workload)
        )

    def gm(self, metric: str, config: str) -> float:
        fn = {
            "ee": self.energy_efficiency,
            "speedup": self.speedup,
            "movement": self.movement_reduction,
        }[metric]
        return geomean(fn(w, config) for w in self.workloads)

    def all_validated(self) -> bool:
        return all(r.validated for r in self.results.values())


def _matrix_worker(args: Tuple[str, Tuple[str, ...], str, MachineParams]):
    """Simulate every configuration of one workload (pool worker).

    Runs in a child process: resets the inherited observability registry
    so the returned snapshot covers exactly this worker's cells, and uses
    a private single-entry trace cache (one workload per worker).
    """
    workload, configs, scale, machine = args
    OBS.reset()
    cache = TraceCache(max_entries=1)
    cov = CoverageRecorder()
    cells: List[Tuple[str, RunResult]] = []
    for config in configs:
        start = perf_counter()
        instance = ALL_WORKLOADS[workload].build(scale)
        result = simulate_workload(
            instance, config, machine=machine, coverage=cov,
            trace_cache=cache, trace_key=functional_key(workload, scale),
        )
        OBS.add_cell(CellStat(
            workload, config, perf_counter() - start,
            trace_elems=cache.peak_trace_elems(workload, scale),
        ))
        cells.append((config, result))
    return workload, cells, cov, OBS.snapshot()


def run_matrix(scale: str = "small",
               machine: Optional[MachineParams] = None,
               workloads: Sequence[str] = PAPER_ORDER,
               configs: Sequence[str] = (BASELINE,) + PAPER_CONFIGS,
               jobs: Optional[int] = None,
               progress: Optional[ProgressFn] = None) -> ResultMatrix:
    """Build and fully populate a result matrix.

    ``jobs`` (default: ``$REPRO_JOBS`` or 1) fans the grid out over a
    process pool, one worker per workload; every cell's metrics are
    identical to the serial run.
    """
    return ResultMatrix(
        scale=scale, machine=machine, workloads=tuple(workloads),
        configs=tuple(configs),
    ).run_all(jobs=jobs, progress=progress)


def format_table(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(str(row[col])) for row in [header] + rows)
        for col in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(header), sep] + [fmt(r) for r in rows])

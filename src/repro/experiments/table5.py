"""Table V: coverage of interface mechanisms per benchmark.

'C' marks compiler-automated use, 'U' user-annotated use (the §VI-D case
studies). The compiler rows come straight from the coverage recorders
populated during compilation; the user rows from the case studies'
annotation sets.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..interface.intrinsics import CoverageRecorder, Intrinsic
from ..ir.interp import Interpreter
from ..compiler import CompileMode, compile_kernel
from ..workloads import ALL_WORKLOADS, PAPER_ORDER
from .fig12 import user_annotation_coverage
from .runner import format_table

CASE_STUDIES = (
    ("spmv (annotated)", "spmv"),
    ("nw (annotated)", "nw"),
    ("bfs (multi-thread)", "bfs"),
    ("pf (multi-thread)", "pf"),
)


def coverage_for_workload(short: str, scale: str = "tiny"
                          ) -> CoverageRecorder:
    """Compile every kernel of a workload and collect mechanism use."""
    cov = CoverageRecorder()
    instance = ALL_WORKLOADS[short].build(scale)
    interp = Interpreter()
    seen = set()
    for call in instance.calls():
        if id(call.kernel) in seen:
            continue
        seen.add(id(call.kernel))
        compile_kernel(call.kernel, CompileMode.DIST, coverage=cov)
        interp.run(call.kernel, instance.arrays, call.scalars)
    return cov


def compute(workloads: Sequence[str] = PAPER_ORDER,
            scale: str = "tiny") -> Dict:
    rows: Dict[str, Dict[str, str]] = {}
    for workload in workloads:
        rows[workload] = coverage_for_workload(workload, scale).row()
    for label, short in CASE_STUDIES:
        rows[label] = user_annotation_coverage(short).row()
    return {"rows": rows}


def format_rows(data: Dict) -> str:
    mechanisms = [i.mnemonic for i in Intrinsic]
    header = ["benchmark"] + [m.replace("cp_", "") for m in mechanisms]
    rows = [
        [name] + [row.get(m, "") for m in mechanisms]
        for name, row in data["rows"].items()
    ]
    return ("Table V: interface-mechanism coverage (C = compiler, "
            "U = user)\n" + format_table(header, rows))

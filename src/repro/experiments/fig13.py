"""Figure 13: accelerator clocking sensitivity (§VI-E).

Dist-DA-IO is re-clocked from 1 to 3 GHz. Speedup improves for most
benchmarks while IPC *drops* for the access-dominated ones (more cycles
spent waiting per instruction); seidel's arithmetic density keeps its
IPC loss small — supporting the paper's argument that distributed ALP
beats clock scaling.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..params import MachineParams, experiment_machine
from ..sim.system import simulate_workload
from ..workloads import ALL_WORKLOADS, PAPER_ORDER
from .runner import format_table

FREQS_GHZ = (1.0, 2.0, 3.0)


def compute(workloads: Sequence[str] = PAPER_ORDER,
            machine: Optional[MachineParams] = None,
            scale: str = "small") -> Dict:
    machine = machine or experiment_machine()
    speedup: Dict[str, Dict[float, float]] = {}
    ipc: Dict[str, Dict[float, float]] = {}
    for workload in workloads:
        runs = {}
        for freq in FREQS_GHZ:
            m = machine.with_accel_freq(freq)
            runs[freq] = simulate_workload(
                ALL_WORKLOADS[workload].build(scale), "dist_da_io",
                machine=m,
            )
        base = runs[FREQS_GHZ[0]]
        speedup[workload] = {
            f: runs[f].speedup_vs(base) for f in FREQS_GHZ
        }
        # IPC at the accelerator clock: insts per accelerator cycle
        ipc[workload] = {
            f: (runs[f].insts / (runs[f].time_ps * f / 1000.0))
            / (base.insts / (base.time_ps * FREQS_GHZ[0] / 1000.0))
            for f in FREQS_GHZ
        }
    return {"speedup": speedup, "ipc": ipc}


def format_rows(data: Dict) -> str:
    header = ["bench"] + [
        f"{f:g}GHz:{m}" for f in FREQS_GHZ for m in ("spd", "ipc")
    ]
    rows = []
    for w in data["speedup"]:
        row = [w]
        for f in FREQS_GHZ:
            row += [f"{data['speedup'][w][f]:.2f}",
                    f"{data['ipc'][w][f]:.2f}"]
        rows.append(row)
    return ("Figure 13: clocking sensitivity (normalized to "
            "Dist-DA-IO@1GHz)\n" + format_table(header, rows))

"""Figure 13: accelerator clocking sensitivity (§VI-E).

Dist-DA-IO is re-clocked from 1 to 3 GHz. Speedup improves for most
benchmarks while IPC *drops* for the access-dominated ones (more cycles
spent waiting per instruction); seidel's arithmetic density keeps its
IPC loss small — supporting the paper's argument that distributed ALP
beats clock scaling.

Implemented on the design-space sweep engine (:mod:`repro.dse`): the
clock is a machine axis (the ``accel_freq_ghz`` override alias), so each
workload is interpreted once and replayed at every frequency, and
``jobs`` shards workloads over worker processes. The shipped
``repro/dse/specs/clocking.json`` spec is this study for the benchmark
suite's representative subset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..params import MachineParams, experiment_machine
from ..workloads import PAPER_ORDER
from .runner import format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..dse import SweepSpec

FREQS_GHZ = (1.0, 2.0, 3.0)


def clocking_spec(workloads: Sequence[str] = PAPER_ORDER,
                  scale: str = "small") -> "SweepSpec":
    """The clocking study as a DSE sweep spec."""
    from ..dse import SweepSpec

    return SweepSpec(
        name="clocking", workloads=tuple(workloads),
        configs=("dist_da_io",), scale=scale, base="experiment",
        machine_axes={"accel_freq_ghz": FREQS_GHZ},
    )


def compute(workloads: Sequence[str] = PAPER_ORDER,
            machine: Optional[MachineParams] = None,
            scale: str = "small",
            jobs: Optional[int] = None) -> Dict:
    machine = machine or experiment_machine()
    from ..dse import run_sweep

    result = run_sweep(clocking_spec(workloads, scale), jobs=jobs,
                       base=machine)
    speedup: Dict[str, Dict[float, float]] = {}
    ipc: Dict[str, Dict[float, float]] = {}
    for workload in workloads:
        runs = {
            f: result.metrics(
                workload, "dist_da_io",
                machine_overrides={"accel_freq_ghz": f},
            )
            for f in FREQS_GHZ
        }
        base = runs[FREQS_GHZ[0]]
        speedup[workload] = {
            f: base["time_ps"] / runs[f]["time_ps"] for f in FREQS_GHZ
        }
        # IPC at the accelerator clock: insts per accelerator cycle
        ipc[workload] = {
            f: (runs[f]["insts"] / (runs[f]["time_ps"] * f / 1000.0))
            / (base["insts"] / (base["time_ps"] * FREQS_GHZ[0] / 1000.0))
            for f in FREQS_GHZ
        }
    return {"speedup": speedup, "ipc": ipc}


def format_rows(data: Dict) -> str:
    header = ["bench"] + [
        f"{f:g}GHz:{m}" for f in FREQS_GHZ for m in ("spd", "ipc")
    ]
    rows = []
    for w in data["speedup"]:
        row = [w]
        for f in FREQS_GHZ:
            row += [f"{data['speedup'][w][f]:.2f}",
                    f"{data['ipc'][w][f]:.2f}"]
        rows.append(row)
    return ("Figure 13: clocking sensitivity (normalized to "
            "Dist-DA-IO@1GHz)\n" + format_table(header, rows))

"""Section VI-E: area overheads and working-set-size sensitivity."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..energy import default_area_model
from ..params import MachineParams, experiment_machine
from .runner import format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..dse import SweepSpec


def compute_area() -> Dict:
    """Accelerator area overheads (paper: IO 1.9 %/cluster, 0.3 % chip;
    5x5 CGRA + buffers + ACP 2.9 %/cluster, 0.48 % chip)."""
    model = default_area_model()
    return {
        "io": model.io_report(),
        "cgra": model.cgra_report(),
        "chip_area_mm2": model.chip_area(),
        "cgra_area_mm2": model.cgra_area(),
    }


def format_area(data: Dict) -> str:
    rows = [
        ["IO core", f"{data['io']['per_cluster_pct']:.2f}",
         f"{data['io']['chip_pct']:.2f}", "1.9", "0.3"],
        ["5x5 CGRA", f"{data['cgra']['per_cluster_pct']:.2f}",
         f"{data['cgra']['chip_pct']:.2f}", "2.9", "0.48"],
    ]
    header = ["unit", "%/cluster", "%chip", "paper %/cluster", "paper %chip"]
    return "Area overheads (Section VI-E)\n" + format_table(header, rows)


#: fdtd-2d grid sizes for the working-set sweep (WS grows past the LLC)
WSS_SIZES = (48, 88, 128, 176)


def wss_spec(sizes: Sequence[int] = WSS_SIZES,
             timesteps: int = 2) -> "SweepSpec":
    """The working-set study as a DSE sweep spec (shipped as
    ``repro/dse/specs/wss.json`` for the default sizes)."""
    from ..dse import SweepSpec

    return SweepSpec(
        name="wss", workloads=("fdt",),
        configs=("mono_da_f", "dist_da_f"), scale="small",
        base="experiment",
        workload_axes={"n": tuple(sizes), "timesteps": (timesteps,)},
    )


def compute_wss(machine: Optional[MachineParams] = None,
                sizes: Sequence[int] = WSS_SIZES,
                jobs: Optional[int] = None) -> Dict:
    """Working-set sweep: fdtd-2d vs the Mono-DA baseline.

    The paper grows fdtd-2d from 5.8 MB to 1.11 GB against a 2 MB LLC and
    finds Dist-DA still cuts *on-chip* movement 2.5x for a 9.5 % energy
    win over Mono-DA once DRAM dominates.

    Implemented on the design-space sweep engine (:mod:`repro.dse`): the
    grid sizes are a workload axis, so each dataset is interpreted once
    and replayed for both configurations, and ``jobs`` shards the sizes
    over worker processes.
    """
    machine = machine or experiment_machine()
    from ..dse import run_sweep

    result = run_sweep(wss_spec(sizes), jobs=jobs, base=machine)
    rows = {}
    for n in sizes:
        kwargs = {"n": int(n), "timesteps": 2}
        mono = result.metrics("fdt", "mono_da_f", workload_kwargs=kwargs)
        dist = result.metrics("fdt", "dist_da_f", workload_kwargs=kwargs)
        ws_bytes = 3 * n * n * 4
        rows[n] = {
            "ws_over_llc": ws_bytes / machine.l3.size_bytes,
            # the paper's §VI-E metric is *on-chip* movement: once DRAM
            # dominates the totals, the Dist-vs-Mono difference lives in
            # the inter-accelerator operand traffic
            "movement_reduction": (
                mono["a_a_bytes"] / max(dist["a_a_bytes"], 1)
            ),
            "energy_gain": mono["energy_pj"] / dist["energy_pj"],
            "speedup": mono["time_ps"] / dist["time_ps"],
        }
    return {"rows": rows}


def format_wss(data: Dict) -> str:
    header = ["n", "WS/LLC", "on-chip mov red.", "energy gain", "speedup"]
    rows = [
        [str(n), f"{r['ws_over_llc']:.2f}",
         f"{r['movement_reduction']:.2f}", f"{r['energy_gain']:.3f}",
         f"{r['speedup']:.2f}"]
        for n, r in data["rows"].items()
    ]
    return ("Working-set sensitivity: fdtd-2d, Dist-DA-F vs Mono-DA-F "
            "(paper: 2.5x movement, +9.5% energy at 1.11 GB)\n"
            + format_table(header, rows))

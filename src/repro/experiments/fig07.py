"""Figure 7: normalized energy efficiency.

Paper headline: Dist-DA-F achieves geometric-mean energy efficiency of
3.3x over OoO, 2.46x over Mono-CA and 1.46x over Mono-DA-IO; Dist-DA-IO
reaches 2.67x over OoO; compute specialization (Dist-DA-F over
Dist-DA-IO) is worth 1.23x.
"""

from __future__ import annotations

from typing import Dict, List

from .runner import PAPER_CONFIGS, ResultMatrix, format_table, geomean


def compute(matrix: ResultMatrix) -> Dict:
    rows = {
        workload: {
            config: matrix.energy_efficiency(workload, config)
            for config in PAPER_CONFIGS
        }
        for workload in matrix.workloads
    }
    gm = {
        config: geomean(rows[w][config] for w in matrix.workloads)
        for config in PAPER_CONFIGS
    }
    dist_f = gm["dist_da_f"]
    return {
        "per_workload": rows,
        "gm": gm,
        "headline": {
            "dist_da_f_vs_ooo": dist_f,
            "dist_da_f_vs_mono_ca": dist_f / gm["mono_ca"],
            "dist_da_f_vs_mono_da_io": dist_f / gm["mono_da_io"],
            "dist_da_io_vs_ooo": gm["dist_da_io"],
            "compute_specialization": dist_f / gm["dist_da_io"],
        },
    }


def format_rows(data: Dict) -> str:
    header = ["bench"] + [c for c in PAPER_CONFIGS]
    rows: List[List[str]] = [
        [w] + [f"{data['per_workload'][w][c]:.2f}" for c in PAPER_CONFIGS]
        for w in data["per_workload"]
    ]
    rows.append(["GM"] + [f"{data['gm'][c]:.2f}" for c in PAPER_CONFIGS])
    table = format_table(header, rows)
    h = data["headline"]
    notes = (
        f"\nDist-DA-F vs OoO {h['dist_da_f_vs_ooo']:.2f}x (paper 3.3x) | "
        f"vs Mono-CA {h['dist_da_f_vs_mono_ca']:.2f}x (paper 2.46x) | "
        f"vs Mono-DA-IO {h['dist_da_f_vs_mono_da_io']:.2f}x (paper 1.46x)"
        f"\nDist-DA-IO vs OoO {h['dist_da_io_vs_ooo']:.2f}x (paper 2.67x) | "
        f"compute specialization {h['compute_specialization']:.2f}x "
        f"(paper 1.23x)"
    )
    return "Figure 7: normalized energy efficiency\n" + table + notes

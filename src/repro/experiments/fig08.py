"""Figure 8: number of cache accesses, normalized to OoO.

Decentralizing accesses removes the L1/L2 traversal per operand, so all
DA configurations show a large reduction that is identical across DA
variants (the paper: "remains the same for all DA configurations").
"""

from __future__ import annotations

from typing import Dict

from .runner import PAPER_CONFIGS, ResultMatrix, format_table, geomean


def compute(matrix: ResultMatrix) -> Dict:
    rows = {}
    for workload in matrix.workloads:
        base = matrix.baseline(workload).cache_stats.total_cache_accesses()
        rows[workload] = {
            config: (
                matrix.get(workload, config)
                .cache_stats.total_cache_accesses() / max(base, 1)
            )
            for config in PAPER_CONFIGS
        }
    gm = {
        config: geomean(rows[w][config] for w in matrix.workloads)
        for config in PAPER_CONFIGS
    }
    return {"per_workload": rows, "gm": gm}


def format_rows(data: Dict) -> str:
    header = ["bench"] + list(PAPER_CONFIGS)
    rows = [
        [w] + [f"{data['per_workload'][w][c]:.3f}" for c in PAPER_CONFIGS]
        for w in data["per_workload"]
    ]
    rows.append(["GM"] + [f"{data['gm'][c]:.3f}" for c in PAPER_CONFIGS])
    return ("Figure 8: # cache accesses (normalized to OoO; lower is "
            "better)\n" + format_table(header, rows))

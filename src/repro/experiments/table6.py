"""Table VI: offload characteristics for Dist-DA.

Columns: benchmark, %code coverage, %data coverage, %init (MMIO)
overhead, average #buffers per partitioned offload, maximum static
instructions and DFG dimensions, and the in-order microcode size in
bytes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..compiler import CompileMode, compile_kernel
from ..interface.intrinsics import MMIO_WORD_BYTES
from ..ir.interp import Interpreter
from ..workloads import ALL_WORKLOADS, PAPER_ORDER
from .runner import format_table


def compute_workload(short: str, scale: str = "small") -> Dict:
    instance = ALL_WORKLOADS[short].build(scale)
    interp = Interpreter()
    kernel_insts = 0
    kernel_accesses = 0
    host_insts = 0
    host_accesses = 0
    init_mmio_words = 0
    max_insts = 0
    dims = (0, 0)
    max_ucode = 0
    buffers = []
    compiled = set()
    calls = 0
    for call in instance.calls():
        calls += 1
        res = interp.run(call.kernel, instance.arrays, call.scalars)
        kernel_insts += res.counts.total_insts
        kernel_accesses += res.counts.loads + res.counts.stores
        host_insts += instance.host_insts_per_call
        host_accesses += instance.host_accesses_per_call
        if id(call.kernel) in compiled:
            continue
        compiled.add(id(call.kernel))
        ck = compile_kernel(call.kernel, CompileMode.DIST,
                            trip_count_hint=max(res.inner_iterations, 1))
        for off in ck.offloads:
            init_mmio_words += off.init_mmio_bytes // MMIO_WORD_BYTES
            if off.num_insts > max_insts:
                max_insts = off.num_insts
                dims = off.dfg_dims
            max_ucode = max(max_ucode, off.microcode_bytes)
            buffers.append(off.avg_physical_buffers())
    total_insts = kernel_insts + host_insts
    total_accesses = kernel_accesses + host_accesses
    return {
        "pct_cc": 100.0 * kernel_insts / max(total_insts, 1),
        "pct_dc": 100.0 * kernel_accesses / max(total_accesses, 1),
        "pct_init": 100.0 * init_mmio_words / max(total_accesses, 1),
        "avg_buffers": sum(buffers) / len(buffers) if buffers else 0.0,
        "max_insts": max_insts,
        "dfg_dims": dims,
        "ucode_bytes": max_ucode,
    }


def compute(workloads: Sequence[str] = PAPER_ORDER,
            scale: str = "small") -> Dict:
    return {"rows": {w: compute_workload(w, scale) for w in workloads}}


def format_rows(data: Dict) -> str:
    header = ["bench", "%cc", "%dc", "%init", "#buf", "#insts",
              "DFG dim", "insts(B)"]
    rows = []
    for w, r in data["rows"].items():
        depth, width = r["dfg_dims"]
        rows.append([
            w, f"{r['pct_cc']:.0f}", f"{r['pct_dc']:.2f}",
            f"{r['pct_init']:.2f}", f"{r['avg_buffers']:.1f}",
            str(r["max_insts"]), f"{depth}x{width}",
            str(r["ucode_bytes"]),
        ])
    return ("Table VI: offload characteristics (Dist-DA)\n"
            + format_table(header, rows))

"""Figure 10: data transferred through the NoC, by class, normalized.

Four components per configuration: host-initiated control (*ctrl*) and
*data* traffic, and inter-accelerator control (*acc_ctrl*) and data
(*acc_data*). Dist-DA's partitioning/placement moves computation to the
cluster, shrinking acc_* versus Mono-DA.
"""

from __future__ import annotations

from typing import Dict

from .runner import PAPER_CONFIGS, ResultMatrix, format_table

CLASSES = ("ctrl", "data", "acc_ctrl", "acc_data")


def compute(matrix: ResultMatrix) -> Dict:
    rows = {}
    for workload in matrix.workloads:
        base_total = sum(
            matrix.baseline(workload).traffic_breakdown.values()
        ) or 1.0
        rows[workload] = {}
        for config in PAPER_CONFIGS:
            breakdown = matrix.get(workload, config).traffic_breakdown
            rows[workload][config] = {
                cls: breakdown.get(cls, 0.0) / base_total for cls in CLASSES
            }
    return {"per_workload": rows}


def acc_traffic_total(data: Dict, workload: str, config: str) -> float:
    row = data["per_workload"][workload][config]
    return row["acc_ctrl"] + row["acc_data"]


def format_rows(data: Dict) -> str:
    header = ["bench", "config"] + list(CLASSES) + ["total"]
    rows = []
    for w, per_cfg in data["per_workload"].items():
        for c, breakdown in per_cfg.items():
            rows.append(
                [w, c]
                + [f"{breakdown[cls]:.3f}" for cls in CLASSES]
                + [f"{sum(breakdown.values()):.3f}"]
            )
    return ("Figure 10: NoC traffic by class (normalized to OoO total)\n"
            + format_table(header, rows))

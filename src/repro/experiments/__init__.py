"""Experiment harness: regenerates every table and figure of §VI.

Each ``figNN``/``tableN`` module exposes ``compute(matrix)`` returning
structured rows and ``format_rows(rows)`` producing the printable
table, so benchmarks and examples share one implementation.
"""

from .runner import (
    BASELINE,
    PAPER_CONFIGS,
    ResultMatrix,
    geomean,
    run_matrix,
)
from . import (
    fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
    table5, table6, area_wss,
)

__all__ = [
    "BASELINE", "PAPER_CONFIGS", "ResultMatrix", "geomean", "run_matrix",
    "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
    "fig14", "table5", "table6", "area_wss",
]

"""Offload-configuration records: the "distributed accelerator definitions".

These are what the compiler emits (Figure 3-4) and what the host transfers
through ``cp_config`` at runtime. A :class:`PartitionConfig` fully
describes one distributed accelerator: its anchored memory object, its
specialized accesses, its operand channels to peer accelerators, its
compute payload (microcode for IO cores / a mapped DFG for CGRAs), and its
iteration-control orchestrator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InterfaceError


class AccessKind(enum.Enum):
    """What an access-id names once configured."""

    STREAM_READ = "stream_read"      # cp_config_stream, FSM-filled
    STREAM_WRITE = "stream_write"    # cp_config_stream, FSM-drained
    INDIRECT = "indirect"            # cp_read/cp_write via translation block
    RANDOM = "random"                # cp_config_random window
    CHANNEL = "channel"              # inter-accelerator operand buffer


@dataclass
class AccessConfig:
    """One configured access-id of a partition."""

    access_id: int
    kind: AccessKind
    obj: Optional[str] = None
    elem_bytes: int = 4
    #: element stride (STREAM kinds)
    stride_elems: int = 1
    #: first-element offset (elements) within the object, when static
    start_offset: int = 0
    #: elements per offload invocation, when statically known
    length: Optional[int] = None
    #: does this access carry data into (read) or out of (write) the unit
    is_write: bool = False
    #: DFG access-node ids folded into this access
    dfg_nodes: Tuple[int, ...] = ()
    #: interpreter trace site ids served by this access
    site_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind in (AccessKind.STREAM_READ, AccessKind.STREAM_WRITE,
                         AccessKind.INDIRECT, AccessKind.RANDOM):
            if self.obj is None:
                raise InterfaceError(
                    f"access {self.access_id}: kind {self.kind.value} "
                    "requires a memory object"
                )
        if self.elem_bytes <= 0:
            raise InterfaceError("elem_bytes must be positive")


@dataclass
class ChannelConfig:
    """A producer->consumer operand edge between two partitions.

    Maps one DFG cross-edge onto a pair of access-ids: the producer's
    write pointer and the consumer's read pointer (Figure 4's %a1 / %a2
    pair, with the proxy pointer handled by the runtime).
    """

    channel_id: int
    producer_partition: int
    consumer_partition: int
    producer_access_id: int
    consumer_access_id: int
    width_bits: int = 32
    #: predicate channels carry control decisions, 1 bit of payload
    is_predicate: bool = False

    @property
    def payload_bytes(self) -> int:
        return max(1, self.width_bits // 8)


@dataclass
class PartitionConfig:
    """One distributed accelerator definition."""

    partition_index: int
    #: the single memory object anchored at this partition (None for
    #: compute-only partitions)
    anchor_object: Optional[str]
    accesses: List[AccessConfig] = field(default_factory=list)
    #: channel ids consumed / produced each iteration
    consumes: List[int] = field(default_factory=list)
    produces: List[int] = field(default_factory=list)
    #: per-iteration compute profile {op_class: count}
    compute_ops: Dict[str, int] = field(default_factory=dict)
    #: address-generation ops folded into accessors, per iteration
    addr_ops: int = 0
    #: DFG node ids owned by this partition
    dfg_nodes: Tuple[int, ...] = ()
    #: microcode image for IO-core backends (bytes; 8 B/inst)
    microcode: bytes = b""
    #: scalar register file preset (reg-id -> value), via cp_set_rf
    rf_presets: Dict[int, float] = field(default_factory=dict)

    def access(self, access_id: int) -> AccessConfig:
        for acc in self.accesses:
            if acc.access_id == access_id:
                return acc
        raise InterfaceError(
            f"partition {self.partition_index}: unknown access {access_id}"
        )

    @property
    def static_insts(self) -> int:
        """Static instruction count (Table VI #insts)."""
        return len(self.microcode) // 8


@dataclass
class OffloadConfig:
    """A complete compiled offload: all partitions plus metadata."""

    offload_id: int
    kernel_name: str
    partitions: List[PartitionConfig]
    channels: List[ChannelConfig] = field(default_factory=list)
    scalars: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        indices = [p.partition_index for p in self.partitions]
        if sorted(indices) != list(range(len(indices))):
            raise InterfaceError(
                f"partition indices must be 0..n-1, got {indices}"
            )
        for ch in self.channels:
            for side in (ch.producer_partition, ch.consumer_partition):
                if not (0 <= side < len(self.partitions)):
                    raise InterfaceError(
                        f"channel {ch.channel_id} references partition {side}"
                    )

    def partition(self, index: int) -> PartitionConfig:
        return self.partitions[index]

    def channel(self, channel_id: int) -> ChannelConfig:
        for ch in self.channels:
            if ch.channel_id == channel_id:
                return ch
        raise InterfaceError(f"unknown channel {channel_id}")

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def config_calls(self) -> List:
        """The host-side intrinsic sequence that installs this offload.

        Used both to drive the runtime and to charge MMIO/%init overhead.
        """
        from .intrinsics import Intrinsic, IntrinsicCall

        calls: List[IntrinsicCall] = []
        for part in self.partitions:
            calls.append(IntrinsicCall(
                Intrinsic.CP_CONFIG, (self.offload_id, part.partition_index)
            ))
            for acc in part.accesses:
                if acc.kind in (AccessKind.STREAM_READ,
                                AccessKind.STREAM_WRITE,
                                AccessKind.CHANNEL):
                    calls.append(IntrinsicCall(
                        Intrinsic.CP_CONFIG_STREAM,
                        (acc.access_id, acc.start_offset, acc.stride_elems,
                         acc.length or 0),
                    ))
                else:
                    calls.append(IntrinsicCall(
                        Intrinsic.CP_CONFIG_RANDOM,
                        (acc.access_id, acc.start_offset, acc.length or 0),
                    ))
            for reg, value in part.rf_presets.items():
                calls.append(IntrinsicCall(Intrinsic.CP_SET_RF, (reg, value)))
        calls.append(IntrinsicCall(Intrinsic.CP_RUN, (self.offload_id,)))
        return calls

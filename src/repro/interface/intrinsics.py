"""The cp_* interface mechanisms (paper Table II).

Every mechanism is an MMIO-based software intrinsic. Four classes:

* **Host-initiated** — allocate/configure accelerator resources.
* **Dataflow** — decoupled producer/consumer operand movement.
* **Random access** — explicit buffer fill/drain and object-relative
  read/write for indirect patterns.
* **Accelerator control** — scalar register transfer and kick-off.

The enum carries each mechanism's operand signature so MMIO traffic (and
the paper's %init overhead) can be computed mechanically, and
:class:`CoverageRecorder` reproduces Table V's per-benchmark coverage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Set, Tuple

#: bytes per MMIO transfer beat (one 64-bit register write/read)
MMIO_WORD_BYTES = 8


class Intrinsic(enum.Enum):
    """All interface mechanisms of Table II, with operand names."""

    # host-initiated
    CP_CONFIG = ("cp_config", ("offload_id", "args"))
    CP_CONFIG_STREAM = (
        "cp_config_stream", ("access_id", "start", "stride", "length")
    )
    CP_CONFIG_RANDOM = ("cp_config_random", ("access_id", "start", "end"))
    # dataflow
    CP_PRODUCE = ("cp_produce", ("access_id", "data"))
    CP_CONSUME = ("cp_consume", ("access_id",))
    CP_STEP = ("cp_step", ("access_id", "n"))
    CP_FILL_BUF = ("cp_fill_buf", ("access_id", "num_elements"))
    CP_DRAIN_BUF = ("cp_drain_buf", ("access_id", "num_elements"))
    # random access
    CP_WRITE = ("cp_write", ("obj_id", "obj_offset", "data"))
    CP_READ = ("cp_read", ("obj_id", "obj_offset"))
    CP_FILL_RA = ("cp_fill_ra", ("buf_id", "addr", "num_elements"))
    CP_DRAIN_RA = ("cp_drain_ra", ("buf_id", "addr", "num_elements"))
    # accelerator control
    CP_SET_RF = ("cp_set_rf", ("reg_id", "data"))
    CP_LOAD_RF = ("cp_load_rf", ("reg_id",))
    CP_RUN = ("cp_run", ("offload_id",))

    def __init__(self, mnemonic: str, operands: Tuple[str, ...]):
        self.mnemonic = mnemonic
        self.operands = operands

    @property
    def mmio_bytes(self) -> int:
        """MMIO bytes of one invocation: one word per operand + command."""
        return MMIO_WORD_BYTES * (1 + len(self.operands))


HOST_INTRINSICS = frozenset({
    Intrinsic.CP_CONFIG, Intrinsic.CP_CONFIG_STREAM,
    Intrinsic.CP_CONFIG_RANDOM,
})
DATAFLOW_INTRINSICS = frozenset({
    Intrinsic.CP_PRODUCE, Intrinsic.CP_CONSUME, Intrinsic.CP_STEP,
    Intrinsic.CP_FILL_BUF, Intrinsic.CP_DRAIN_BUF,
})
RANDOM_INTRINSICS = frozenset({
    Intrinsic.CP_WRITE, Intrinsic.CP_READ,
    Intrinsic.CP_FILL_RA, Intrinsic.CP_DRAIN_RA,
})
CTRL_INTRINSICS = frozenset({
    Intrinsic.CP_SET_RF, Intrinsic.CP_LOAD_RF, Intrinsic.CP_RUN,
})


@dataclass(frozen=True)
class IntrinsicCall:
    """One static intrinsic occurrence in a compiled offload."""

    intrinsic: Intrinsic
    args: Tuple = ()

    @property
    def mmio_bytes(self) -> int:
        return self.intrinsic.mmio_bytes


def mmio_bytes(calls: Sequence[IntrinsicCall]) -> int:
    """Total MMIO traffic of a call sequence (feeds %init, Table VI)."""
    return sum(call.mmio_bytes for call in calls)


class CoverageRecorder:
    """Tracks which mechanisms a workload exercised (paper Table V).

    Mechanisms are recorded as compiler-automated ('C') or
    user-annotated ('U'); user annotations win if both occur.
    """

    COMPILER = "C"
    USER = "U"

    def __init__(self) -> None:
        self._used: Dict[Intrinsic, str] = {}

    def record(self, intrinsic: Intrinsic, source: str = COMPILER) -> None:
        if source not in (self.COMPILER, self.USER):
            raise ValueError(f"bad coverage source {source!r}")
        previous = self._used.get(intrinsic)
        if previous == self.USER:
            return
        self._used[intrinsic] = source

    def used(self) -> Set[Intrinsic]:
        return set(self._used)

    def row(self) -> Dict[str, str]:
        """Table V row: mnemonic -> 'C' / 'U' / ''."""
        return {
            intr.mnemonic: self._used.get(intr, "")
            for intr in Intrinsic
        }

    def merge(self, other: "CoverageRecorder") -> None:
        for intr, source in other._used.items():
            self.record(intr, source)

"""Hardware accelerator scheduler with buffer-allocation table (Fig 2b/2d).

The scheduler owns the per-cluster buffer pools inside the access units.
At allocation time it:

* hands out ``buf-id``s for configured accesses, maintaining the
  access-id -> buf-id mapping per application context;
* performs **multi-access combining**: stream accesses to the same object
  whose windows overlap at a constant distance within the buffer limit
  share one buffer (Figure 2d case 1), enabling spatial reuse; and
* refuses allocation when a cluster's buffer SRAM is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AllocationError, InterfaceError
from ..params import AccessUnitParams
from .config import AccessConfig, AccessKind


@dataclass
class BufferEntry:
    """One allocated buffer in a cluster's access unit."""

    buf_id: int
    cluster: int
    obj: Optional[str]
    elem_bytes: int
    capacity_elems: int
    #: access-ids sharing this buffer (multi-access combining)
    access_ids: List[int] = field(default_factory=list)
    #: element offsets of each combined access at iteration 0
    base_offsets: List[int] = field(default_factory=list)
    stride_elems: int = 1


class HardwareScheduler:
    """Allocation-time resource manager for all clusters' access units."""

    def __init__(self, num_clusters: int, params: AccessUnitParams):
        if num_clusters < 1:
            raise InterfaceError("need at least one cluster")
        self.num_clusters = num_clusters
        self.params = params
        self._buffers: Dict[int, BufferEntry] = {}
        self._by_cluster: Dict[int, List[int]] = {
            c: [] for c in range(num_clusters)
        }
        self._access_map: Dict[Tuple[int, int], int] = {}  # (ctx, acc) -> buf
        self._next_buf = 0
        self.combines = 0
        self.table_accesses = 0

    # ------------------------------------------------------------------
    def allocate(self, ctx: int, cluster: int, access: AccessConfig,
                 capacity_elems: Optional[int] = None) -> int:
        """Allocate (or combine into) a buffer; returns the buf-id."""
        if not (0 <= cluster < self.num_clusters):
            raise InterfaceError(f"bad cluster {cluster}")
        key = (ctx, access.access_id)
        if key in self._access_map:
            raise AllocationError(
                f"access {access.access_id} already mapped in context {ctx}"
            )
        self.table_accesses += 1
        combined = self._try_combine(ctx, cluster, access)
        if combined is not None:
            self._access_map[key] = combined
            self.combines += 1
            return combined
        capacity = capacity_elems or self._default_capacity(access)
        self._check_cluster_space(cluster, capacity * access.elem_bytes)
        buf = BufferEntry(
            buf_id=self._next_buf,
            cluster=cluster,
            obj=access.obj,
            elem_bytes=access.elem_bytes,
            capacity_elems=capacity,
            access_ids=[access.access_id],
            base_offsets=[access.start_offset],
            stride_elems=access.stride_elems,
        )
        self._next_buf += 1
        self._buffers[buf.buf_id] = buf
        self._by_cluster[cluster].append(buf.buf_id)
        self._access_map[key] = buf.buf_id
        return buf.buf_id

    def _default_capacity(self, access: AccessConfig) -> int:
        # a quarter of the 4 KB SRAM per buffer by default, in elements
        return max(8, self.params.buffer_bytes // 4 // access.elem_bytes)

    def _check_cluster_space(self, cluster: int, extra_bytes: int) -> None:
        used = sum(
            self._buffers[b].capacity_elems * self._buffers[b].elem_bytes
            for b in self._by_cluster[cluster]
        )
        if used + extra_bytes > self.params.buffer_bytes:
            raise AllocationError(
                f"cluster {cluster}: access-unit SRAM exhausted "
                f"({used}+{extra_bytes} > {self.params.buffer_bytes})"
            )
        if len(self._by_cluster[cluster]) >= self.params.max_buffers:
            raise AllocationError(
                f"cluster {cluster}: out of buffer ids"
            )

    # ------------------------------------------------------------------
    def _try_combine(self, ctx: int, cluster: int,
                     access: AccessConfig) -> Optional[int]:
        """Figure 2d case 1: overlapping constant-distance stream windows."""
        if access.kind not in (AccessKind.STREAM_READ,
                               AccessKind.STREAM_WRITE):
            return None
        if access.obj is None:
            return None
        for buf_id in self._by_cluster[cluster]:
            buf = self._buffers[buf_id]
            if buf.obj != access.obj:
                continue
            if buf.stride_elems != access.stride_elems:
                continue
            if buf.elem_bytes != access.elem_bytes:
                continue
            distance = abs(access.start_offset - min(buf.base_offsets))
            if distance < buf.capacity_elems:
                buf.access_ids.append(access.access_id)
                buf.base_offsets.append(access.start_offset)
                return buf_id
        return None

    # ------------------------------------------------------------------
    def lookup(self, ctx: int, access_id: int) -> BufferEntry:
        """Access-id -> buffer (the Figure 2b table walk)."""
        self.table_accesses += 1
        try:
            return self._buffers[self._access_map[(ctx, access_id)]]
        except KeyError:
            raise InterfaceError(
                f"no buffer mapped for access {access_id} in context {ctx}"
            ) from None

    def buffers_in(self, cluster: int) -> List[BufferEntry]:
        return [self._buffers[b] for b in self._by_cluster[cluster]]

    def free_context(self, ctx: int) -> int:
        """Release every buffer of an application context; returns count."""
        buf_ids = {
            buf for (c, _), buf in self._access_map.items() if c == ctx
        }
        self._access_map = {
            key: buf for key, buf in self._access_map.items()
            if key[0] != ctx
        }
        freed = 0
        for buf_id in buf_ids:
            still_used = buf_id in self._access_map.values()
            if still_used:
                continue
            buf = self._buffers.pop(buf_id)
            self._by_cluster[buf.cluster].remove(buf_id)
            freed += 1
        return freed

    def buffers_allocated(self) -> int:
        return len(self._buffers)

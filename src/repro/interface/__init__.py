"""The Dist-DA offload interface (paper §IV, Table II).

This package defines the architecture interface itself — the fifteen
MMIO-mapped ``cp_*`` intrinsics, the offload-configuration records the
compiler emits ("distributed accelerator definitions"), and the hardware
scheduler that owns the buffer-allocation table and performs multi-access
combining (Figure 2b/2d).

The interface deliberately says nothing about the accelerator substrate
(requirement R3): IO-core and CGRA backends in :mod:`repro.accel` both
speak it.
"""

from .intrinsics import (
    Intrinsic,
    IntrinsicCall,
    CoverageRecorder,
    DATAFLOW_INTRINSICS,
    HOST_INTRINSICS,
    RANDOM_INTRINSICS,
    CTRL_INTRINSICS,
    mmio_bytes,
)
from .config import (
    AccessKind,
    AccessConfig,
    ChannelConfig,
    PartitionConfig,
    OffloadConfig,
)
from .scheduler import HardwareScheduler, BufferEntry

__all__ = [
    "Intrinsic", "IntrinsicCall", "CoverageRecorder",
    "HOST_INTRINSICS", "DATAFLOW_INTRINSICS", "RANDOM_INTRINSICS",
    "CTRL_INTRINSICS", "mmio_bytes",
    "AccessKind", "AccessConfig", "ChannelConfig", "PartitionConfig",
    "OffloadConfig",
    "HardwareScheduler", "BufferEntry",
]

"""Dependence-based offload classification (paper §V-A-2).

Each candidate innermost loop is conservatively classified as:

1. **PARALLELIZABLE** — partitionable accesses/computations with no memory
   dependence cycles across loop iterations;
2. **SERIAL** — non-partitionable (unresolved pointers or cross-iteration
   memory dependence cycles that defeat per-object ordering);
3. **PIPELINABLE** — partitionable but non-parallelizable due to irregular
   or loop-carried write accesses; decoupled pipelined execution is legal
   because every object has a single serializing access point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.program import Kernel
from ..ir.stmt import Loop, Store, When
from .node import AccessPattern
from .scev import analyze_index, classify_pattern


class Classification(enum.Enum):
    PARALLELIZABLE = "parallelizable"
    PIPELINABLE = "pipelinable"
    SERIAL = "serial"

    @property
    def offloadable(self) -> bool:
        return self is not Classification.SERIAL


@dataclass
class ClassifyResult:
    kind: Classification
    reasons: List[str] = field(default_factory=list)


def classify_kernel_loop(loop: Loop, kernel: Kernel) -> ClassifyResult:
    """Classify an innermost loop for offload partitioning."""
    var = loop.var
    loads: Dict[str, List] = {}
    stores: Dict[str, List] = {}
    for load in loop.all_loads():
        loads.setdefault(load.obj, []).append(load.index)
    for stmt in _stores_of(loop):
        stores.setdefault(stmt.obj, []).append(stmt.index)

    reasons: List[str] = []
    kind = Classification.PARALLELIZABLE
    for obj, store_indices in stores.items():
        store_patterns = [classify_pattern(ix, var) for ix in store_indices]
        load_indices = loads.get(obj, [])
        load_patterns = [classify_pattern(ix, var) for ix in load_indices]

        if AccessPattern.RANDOM in store_patterns:
            if AccessPattern.RANDOM in load_patterns:
                return ClassifyResult(
                    Classification.SERIAL,
                    [f"{obj}: unanalyzable read & write indices"],
                )
            kind = Classification.PIPELINABLE
            reasons.append(f"{obj}: irregular write access")
            continue
        if AccessPattern.INDIRECT in store_patterns:
            kind = Classification.PIPELINABLE
            reasons.append(f"{obj}: indirect (data-dependent) write")
            continue
        if not load_indices:
            continue  # write-only object: no cycle through it

        dep = _affine_dependence(store_indices, load_indices, var)
        if dep == "none":
            continue
        kind = Classification.PIPELINABLE
        reasons.append(f"{obj}: {dep}")

    return ClassifyResult(kind, reasons)


def _affine_dependence(store_indices, load_indices, var: str) -> str:
    """Compare affine store/load recurrences on one object.

    Returns "none" when every (store, load) pair provably touches the same
    element in the same iteration (RMW), otherwise names the dependence.
    """
    for s_ix in store_indices:
        s_rec = analyze_index(s_ix, var)
        for l_ix in load_indices:
            l_rec = analyze_index(l_ix, var)
            if l_rec is None:
                return "indirect read of written object"
            if s_rec is None:
                return "unanalyzable write index"
            if s_rec.stride == 0:
                # store hits the same element every iteration: a reduction
                # through memory, unless the load provably reads a
                # *different* invariant element.
                provably_disjoint = (
                    l_rec.stride == 0
                    and s_rec.const_offset is not None
                    and l_rec.const_offset is not None
                    and s_rec.const_offset != l_rec.const_offset
                    and not s_rec.outer_dependent
                    and not l_rec.outer_dependent
                )
                if provably_disjoint:
                    continue
                return "reduction (loop-carried accumulator)"
            if l_rec.stride == s_rec.stride:
                if (s_rec.const_offset is not None
                        and s_rec.const_offset == l_rec.const_offset
                        and not s_rec.outer_dependent
                        and not l_rec.outer_dependent):
                    continue  # same element, same iteration: plain RMW
                if (s_rec.const_offset is not None
                        and l_rec.const_offset is not None
                        and s_rec.const_offset != l_rec.const_offset):
                    return "loop-carried affine dependence"
                # outer-dependent offsets: cannot prove independence
                return "possibly overlapping affine accesses"
            return "cross-stride affine dependence"
    return "none"


def has_serial_chain(loop: Loop, kernel: Kernel) -> bool:
    """Detect a loop-carried *address* dependence chain (pointer chasing).

    True when some object is written at a loop-invariant index (a carried
    scalar through memory) and an indirect access's address computation
    reads that same object — each iteration's address then depends on the
    previous iteration's loaded value, so no access parallelism exists
    for *any* execution substrate.
    """
    var = loop.var
    carried_objects = set()
    for stmt in _stores_of(loop):
        rec = analyze_index(stmt.index, var)
        if rec is not None and rec.stride == 0:
            carried_objects.add(stmt.obj)
    if not carried_objects:
        return False
    for load in loop.all_loads():
        for inner in load.index.loads():
            if inner.obj in carried_objects:
                return True
    return False


def _stores_of(loop: Loop) -> List[Store]:
    """Every store in the loop body, at any predication depth."""
    out: List[Store] = []

    def walk(body) -> None:
        for stmt in body:
            if isinstance(stmt, Store):
                out.append(stmt)
            elif isinstance(stmt, (When, Loop)):
                walk(stmt.body)

    walk(loop.body)
    return out

"""Scalar-evolution-style recurrence analysis of index expressions.

The paper leverages LLVM's SCEV ("chains of recurrences" [37]) to find
address-recurrent (streaming) access patterns. Our equivalent decomposes
an index expression with respect to one induction variable ``var`` into

    index = stride * var + invariant

where ``invariant`` may reference outer loop variables and scalars but not
``var`` itself. Expressions containing loads are data-dependent
(indirect); non-affine uses of ``var`` are unanalyzable (random).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from .node import AccessPattern


@dataclass(frozen=True)
class AffineRec:
    """``stride * var + invariant`` decomposition."""

    stride: int
    #: the invariant addend when it is a compile-time constant, else None
    const_offset: Optional[int]
    #: True when the invariant part references outer loop variables
    outer_dependent: bool

    @property
    def pattern(self) -> AccessPattern:
        if self.stride == 0:
            return AccessPattern.INVARIANT
        return AccessPattern.STREAM


def analyze_index(index: Expr, var: str) -> Optional[AffineRec]:
    """Decompose ``index`` w.r.t. induction variable ``var``.

    Returns None when the expression is indirect (contains loads) or not
    affine in ``var``.
    """
    result = _affine(index, var)
    if result is None:
        return None
    stride, const_offset, outer_dep = result
    return AffineRec(stride, const_offset, outer_dep)


def classify_pattern(index: Expr, var: str) -> AccessPattern:
    """Full pattern classification including indirect/random cases."""
    if any(True for _ in index.loads()):
        return AccessPattern.INDIRECT
    rec = analyze_index(index, var)
    if rec is None:
        return AccessPattern.RANDOM
    return rec.pattern


def _affine(expr: Expr, var: str):
    """Returns (stride, const_offset | None, outer_dependent) or None."""
    kind = expr.__class__
    if kind is Const:
        return (0, int(expr.value), False)
    if kind is LoopVar:
        if expr.name == var:
            return (1, 0, False)
        return (0, None, True)
    if kind is Scalar or kind is Temp:
        # runtime-constant w.r.t. the loop, value unknown statically
        return (0, None, False)
    if kind is Load:
        return None
    if kind is UnaryOp:
        if expr.op == "-":
            inner = _affine(expr.operand, var)
            if inner is None:
                return None
            stride, off, outer = inner
            return (-stride, -off if off is not None else None, outer)
        return None
    if kind is Select:
        return None
    if kind is BinOp:
        return _affine_binop(expr, var)
    return None


def _affine_binop(expr: BinOp, var: str):
    left = _affine(expr.lhs, var)
    right = _affine(expr.rhs, var)
    if left is None or right is None:
        return None
    ls, lo, louter = left
    rs, ro, router = right
    outer = louter or router

    def add_off(a, b, sign=1):
        if a is None or b is None:
            return None
        return a + sign * b

    if expr.op == "+":
        return (ls + rs, add_off(lo, ro), outer)
    if expr.op == "-":
        return (ls - rs, add_off(lo, ro, -1), outer)
    if expr.op == "*":
        # affine only when one side is entirely invariant *and* constant
        if ls == 0 and lo is not None and not louter:
            return (lo * rs, lo * ro if ro is not None else None, router)
        if rs == 0 and ro is not None and not router:
            return (ro * ls, ro * lo if lo is not None else None, louter)
        if ls == 0 and rs == 0:
            # product of two invariants: invariant, offset unknown unless
            # both constant
            off = lo * ro if (lo is not None and ro is not None) else None
            return (0, off, outer)
        return None
    # division/modulo/shifts of the induction variable break affinity
    if expr.op in ("/", "%", ">>", "<<"):
        if ls == 0 and rs == 0:
            return (0, None, outer)
        return None
    if expr.op in ("min", "max"):
        if ls == 0 and rs == 0:
            return (0, None, outer)
        return None
    return None

"""Lift an innermost-loop body into a DFG (paper Figure 3, step 2).

Grouping rules follow §V-A-2:

* every static load/store site becomes an **access node**; its address
  computation ops are folded into the node (``addr_ops``);
* structurally identical loads within one iteration share one access node
  (common-subexpression elimination at the accessor level);
* all other operations become **compute nodes**;
* ``When`` control dependencies become predicate edges into the stores
  they guard ("control-dependencies ... converted to data dependencies by
  predication").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DFGError
from ..ir.expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
    COMPLEX_OPS,
)
from ..ir.program import Kernel
from ..ir.stmt import Assign, Loop, Store, When
from .graph import Dfg
from .node import AccessNode, ComputeNode, NodeKind
from .scev import analyze_index, classify_pattern


def build_dfg(loop: Loop, kernel: Kernel, name: Optional[str] = None) -> Dfg:
    """Build the DFG of ``loop``'s body w.r.t. its induction variable."""
    if not loop.is_innermost:
        raise DFGError(
            f"build_dfg requires an innermost loop, got nest over {loop.var!r}"
        )
    builder = _Builder(loop, kernel, name or f"{kernel.name}.{loop.var}")
    return builder.build()


class _Builder:
    def __init__(self, loop: Loop, kernel: Kernel, name: str):
        self.loop = loop
        self.kernel = kernel
        self.dfg = Dfg(name)
        self.var = loop.var
        self._load_cse: Dict[str, int] = {}
        self._temps: Dict[str, int] = {}
        self._sites = kernel.site_ids()

    def build(self) -> Dfg:
        for stmt in self.loop.body:
            self._lower_stmt(stmt, pred=None)
        self.dfg.validate()
        return self.dfg

    # ------------------------------------------------------------------
    def _lower_stmt(self, stmt, pred: Optional[int]) -> None:
        if isinstance(stmt, Assign):
            node = self._lower_expr(stmt.value)
            if node is None:
                node = self._make_compute("mov", stmt.value)
            self._temps[stmt.name] = node
        elif isinstance(stmt, Store):
            self._lower_store(stmt, pred)
        elif isinstance(stmt, When):
            cond = self._lower_expr(stmt.cond)
            if cond is None:
                cond = self._make_compute("mov", stmt.cond)
            for inner in stmt.body:
                self._lower_stmt(inner, pred=cond)
        else:
            raise DFGError(f"cannot lower statement {stmt!r}")

    def _lower_store(self, stmt: Store, pred: Optional[int]) -> None:
        value_node = self._lower_expr(stmt.value)
        store_node = self._make_access(
            stmt.obj, stmt.index, is_write=True, origin=stmt
        )
        if value_node is not None:
            src = self.dfg.nodes[value_node]
            width = getattr(src, "width_bits", 32)
            self.dfg.add_edge(value_node, store_node, width)
        if pred is not None:
            self.dfg.add_edge(pred, store_node, 1, is_predicate=True)

    # ------------------------------------------------------------------
    def _lower_expr(self, expr: Expr) -> Optional[int]:
        """Lower a value expression; returns node id or None for immediates."""
        kind = expr.__class__
        if kind in (Const, LoopVar, Scalar):
            return None
        if kind is Temp:
            node = self._temps.get(expr.name)
            if node is None:
                raise DFGError(f"temp %{expr.name} used before definition")
            return node
        if kind is Load:
            return self._make_access(
                expr.obj, expr.index, is_write=False, origin=expr
            )
        if kind is BinOp:
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            node = self._make_compute(expr.op, expr)
            for operand in (lhs, rhs):
                if operand is not None:
                    width = getattr(self.dfg.nodes[operand], "width_bits", 32)
                    self._add_edge_once(operand, node, width)
            return node
        if kind is UnaryOp:
            operand = self._lower_expr(expr.operand)
            node = self._make_compute(expr.op, expr)
            if operand is not None:
                width = getattr(self.dfg.nodes[operand], "width_bits", 32)
                self._add_edge_once(operand, node, width)
            return node
        if kind is Select:
            cond = self._lower_expr(expr.cond)
            t = self._lower_expr(expr.if_true)
            f = self._lower_expr(expr.if_false)
            node = self._make_compute("select", expr)
            for operand in (cond, t, f):
                if operand is not None:
                    width = getattr(self.dfg.nodes[operand], "width_bits", 32)
                    self._add_edge_once(operand, node, width)
            return node
        raise DFGError(f"cannot lower expression {expr!r}")

    def _add_edge_once(self, src: int, dst: int, width: int) -> None:
        for edge in self.dfg.successors(src):
            if edge.dst == dst and not edge.is_predicate:
                return
        self.dfg.add_edge(src, dst, width)

    # ------------------------------------------------------------------
    def _make_access(self, obj: str, index: Expr, is_write: bool,
                     origin=None) -> int:
        key = f"{'W' if is_write else 'R'}:{obj}:{index!r}"
        site = self._sites.get(id(origin)) if origin is not None else None
        if not is_write and key in self._load_cse:
            merged = self.dfg.nodes[self._load_cse[key]]
            if site is not None and site not in merged.site_ids:
                merged.site_ids = merged.site_ids + (site,)
            return self._load_cse[key]
        pattern = classify_pattern(index, self.var)
        rec = analyze_index(index, self.var)
        dtype = self.kernel.objects[obj].dtype
        inner_loads = self._top_level_loads(index)
        addr_ops = index.op_count()
        for inner in inner_loads:
            addr_ops -= inner.index.op_count()
        node = AccessNode(
            id=self.dfg.new_id(),
            kind=NodeKind.ACCESS,
            label=f"{'st' if is_write else 'ld'} {obj}",
            obj=obj,
            is_write=is_write,
            pattern=pattern,
            stride_elems=rec.stride if rec else None,
            base_offset=(
                rec.const_offset
                if rec and not rec.outer_dependent else None
            ),
            addr_ops=addr_ops,
            dtype=dtype,
            site_ids=(site,) if site is not None else (),
        )
        self.dfg.add_node(node)
        for inner in inner_loads:
            inner_id = self._lower_expr(inner)
            width = self.kernel.objects[inner.obj].dtype.size_bytes * 8
            self.dfg.add_edge(inner_id, node.id, width, is_index=True)
        if not is_write:
            self._load_cse[key] = node.id
        return node.id

    @staticmethod
    def _top_level_loads(index: Expr):
        """Loads directly inside ``index`` (not nested within other loads)."""
        found = []

        def visit(expr: Expr) -> None:
            if isinstance(expr, Load):
                found.append(expr)
                return  # loads nested deeper belong to this inner access
            for child in expr.children():
                visit(child)

        visit(index)
        return found

    def _make_compute(self, op: str, expr: Expr) -> int:
        is_float = self._is_float(expr)
        if op in COMPLEX_OPS:
            op_class = "complex"
        elif is_float:
            op_class = "float"
        else:
            op_class = "int"
        node = ComputeNode(
            id=self.dfg.new_id(),
            kind=NodeKind.COMPUTE,
            label=op,
            op=op,
            op_class=op_class,
            width_bits=64 if self._is_wide(expr) else 32,
        )
        self.dfg.add_node(node)
        return node.id

    def _is_float(self, expr: Expr) -> bool:
        for node in expr.walk():
            if isinstance(node, Load):
                if self.kernel.objects[node.obj].dtype.is_float:
                    return True
            elif isinstance(node, Const) and isinstance(node.value, float):
                return True
            elif isinstance(node, Scalar):
                default = self.kernel.scalars.get(node.name)
                if isinstance(default, float):
                    return True
        return False

    def _is_wide(self, expr: Expr) -> bool:
        for node in expr.walk():
            if isinstance(node, Load):
                if self.kernel.objects[node.obj].dtype.size_bytes == 8:
                    return True
        return False

"""DFG node and edge types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..ir.types import DType


class NodeKind(enum.Enum):
    ACCESS = "access"
    COMPUTE = "compute"


class AccessPattern(enum.Enum):
    """Memory access pattern of an access node (from SCEV-like analysis)."""

    #: affine in the innermost induction variable, nonzero stride
    STREAM = "stream"
    #: loop-invariant w.r.t. the innermost variable (reuse within the loop)
    INVARIANT = "invariant"
    #: index depends on loaded data (e.g. B[A[i]])
    INDIRECT = "indirect"
    #: statically unanalyzable (neither affine nor data-dependent)
    RANDOM = "random"


@dataclass
class Node:
    """Base DFG node."""

    id: int
    kind: NodeKind
    label: str

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other) -> bool:
        return isinstance(other, Node) and other.id == self.id


@dataclass(eq=False)
class AccessNode(Node):
    """A static load/store site plus its folded address computation."""

    obj: str = ""
    is_write: bool = False
    pattern: AccessPattern = AccessPattern.RANDOM
    #: element stride w.r.t. the innermost loop var (STREAM pattern only)
    stride_elems: Optional[int] = None
    #: constant element offset at iteration 0 of the innermost loop, when
    #: statically known (used for multi-access combining, Fig. 2d)
    base_offset: Optional[int] = None
    #: address-computation ops folded into this accessor
    addr_ops: int = 0
    dtype: Optional[DType] = None
    #: interpreter site ids merged into this accessor (CSE may merge
    #: several static sites), to join access nodes with traces
    site_ids: tuple = ()

    @property
    def width_bits(self) -> int:
        return (self.dtype.size_bytes if self.dtype else 8) * 8


@dataclass(eq=False)
class ComputeNode(Node):
    """One arithmetic operation on values."""

    op: str = "+"
    #: functional-unit class: "int" | "float" | "complex"
    op_class: str = "int"
    width_bits: int = 32


@dataclass(frozen=True)
class Edge:
    """Directed dataflow edge with a communication bit-width."""

    src: int
    dst: int
    width_bits: int = 32
    #: True for predicate (control-converted-to-data) edges
    is_predicate: bool = False
    #: True when the edge feeds an access node's *address* port (indirect
    #: index value) rather than its data port
    is_index: bool = False

"""DFG container with traversal, validation and shape metrics."""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import DFGError
from .node import AccessNode, ComputeNode, Edge, Node


class Dfg:
    """A directed acyclic dataflow graph for one offloadable region."""

    def __init__(self, name: str = "dfg"):
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self.edges: List[Edge] = []
        self._succ: Dict[int, List[Edge]] = defaultdict(list)
        self._pred: Dict[int, List[Edge]] = defaultdict(list)
        self._next_id = 0

    # -- construction ------------------------------------------------------
    def new_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    def add_node(self, node: Node) -> Node:
        if node.id in self.nodes:
            raise DFGError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        return node

    def add_edge(self, src: int, dst: int, width_bits: int = 32,
                 is_predicate: bool = False, is_index: bool = False) -> Edge:
        if src not in self.nodes or dst not in self.nodes:
            raise DFGError(f"edge ({src}->{dst}) references unknown node")
        if src == dst:
            raise DFGError(f"self edge on node {src}")
        edge = Edge(src, dst, width_bits, is_predicate, is_index)
        self.edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    # -- queries -------------------------------------------------------------
    def successors(self, nid: int) -> List[Edge]:
        return self._succ.get(nid, [])

    def predecessors(self, nid: int) -> List[Edge]:
        return self._pred.get(nid, [])

    def access_nodes(self) -> List[AccessNode]:
        return [n for n in self.nodes.values() if isinstance(n, AccessNode)]

    def compute_nodes(self) -> List[ComputeNode]:
        return [n for n in self.nodes.values() if isinstance(n, ComputeNode)]

    def objects(self) -> List[str]:
        seen: List[str] = []
        for node in self.access_nodes():
            if node.obj not in seen:
                seen.append(node.obj)
        return seen

    def num_insts(self) -> int:
        """Static instruction count: compute ops + accesses + addr ops."""
        insts = len(self.compute_nodes())
        for acc in self.access_nodes():
            insts += 1 + acc.addr_ops
        return insts

    # -- structure ------------------------------------------------------------
    def topo_order(self) -> List[int]:
        indeg = {nid: len(self._pred.get(nid, ())) for nid in self.nodes}
        queue = deque(sorted(nid for nid, d in indeg.items() if d == 0))
        order: List[int] = []
        while queue:
            nid = queue.popleft()
            order.append(nid)
            for edge in self._succ.get(nid, ()):
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    queue.append(edge.dst)
        if len(order) != len(self.nodes):
            raise DFGError(f"cycle detected in DFG {self.name!r}")
        return order

    def levels(self) -> Dict[int, int]:
        """ASAP level (longest path from any source) per node."""
        level: Dict[int, int] = {}
        for nid in self.topo_order():
            preds = self._pred.get(nid, ())
            level[nid] = (
                max(level[e.src] for e in preds) + 1 if preds else 0
            )
        return level

    def dims(self) -> Tuple[int, int]:
        """(depth, max-width) when topologically leveled — Table VI's
        "DFG dim" column."""
        if not self.nodes:
            return (0, 0)
        levels = self.levels()
        width: Dict[int, int] = defaultdict(int)
        for lv in levels.values():
            width[lv] += 1
        return (max(levels.values()) + 1, max(width.values()))

    def validate(self) -> None:
        self.topo_order()  # raises on cycles
        for edge in self.edges:
            if edge.width_bits <= 0:
                raise DFGError(f"edge {edge} has non-positive width")

    # -- partition views ---------------------------------------------------------
    def cut_edges(self, assignment: Dict[int, int]) -> List[Edge]:
        """Edges crossing partitions under a node->partition assignment."""
        missing = set(self.nodes) - set(assignment)
        if missing:
            raise DFGError(f"assignment missing nodes: {sorted(missing)}")
        return [
            e for e in self.edges if assignment[e.src] != assignment[e.dst]
        ]

    def cut_cost_bits(self, assignment: Dict[int, int]) -> int:
        return sum(e.width_bits for e in self.cut_edges(assignment))

    def partition_objects(self, assignment: Dict[int, int]
                          ) -> Dict[int, Set[str]]:
        """Distinct memory objects referenced per partition."""
        out: Dict[int, Set[str]] = defaultdict(set)
        for node in self.access_nodes():
            out[assignment[node.id]].add(node.obj)
        return dict(out)

    def subgraph(self, node_ids: Iterable[int],
                 name: Optional[str] = None) -> "Dfg":
        """Induced subgraph over ``node_ids`` (ids preserved)."""
        ids = set(node_ids)
        sub = Dfg(name or f"{self.name}-sub")
        sub._next_id = self._next_id
        for nid in ids:
            if nid not in self.nodes:
                raise DFGError(f"unknown node {nid} in subgraph request")
            sub.nodes[nid] = self.nodes[nid]
        for edge in self.edges:
            if edge.src in ids and edge.dst in ids:
                sub.edges.append(edge)
                sub._succ[edge.src].append(edge)
                sub._pred[edge.dst].append(edge)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Dfg {self.name}: {len(self.nodes)} nodes, "
            f"{len(self.edges)} edges>"
        )

"""Dataflow-graph abstraction of offloadable code regions (paper §IV-A).

An innermost-loop body lifts to a DFG of *access nodes* (one per static
load/store site, annotated with its access pattern from recurrence
analysis) and *compute nodes* (one per arithmetic operation on values).
Address-computation instructions are folded into their access node,
mirroring the paper: "all the address computation instructions leading to
load or store instruction are grouped together as accessors".
"""

from .node import (
    AccessNode,
    AccessPattern,
    ComputeNode,
    Edge,
    Node,
    NodeKind,
)
from .graph import Dfg
from .scev import AffineRec, analyze_index
from .build import build_dfg
from .classify import Classification, classify_kernel_loop

__all__ = [
    "Node", "NodeKind", "AccessNode", "ComputeNode", "Edge", "AccessPattern",
    "Dfg",
    "AffineRec", "analyze_index",
    "build_dfg",
    "Classification", "classify_kernel_loop",
]

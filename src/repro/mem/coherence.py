"""Software-managed, object-granular coherence (paper §IV-D).

Accelerator-visible data structures do not participate in the hardware
coherence protocol. Each memory object is owned by exactly one *domain*
at a time — the host (cache hierarchy above L3) or an accelerator cluster.
When ownership changes, the previous owner's cached copies are flushed or
invalidated (the paper: "the data will need to be invalidated if the scope
of access changes between processor/accelerator domain"), and the flush
cost is charged. One serializing point per memory object makes this safe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import InterfaceError
from .slab import Allocation


class Domain(enum.Enum):
    HOST = "host"
    ACCEL = "accel"


@dataclass
class _Ownership:
    domain: Domain
    cluster: Optional[int] = None  # meaningful for ACCEL domain


class CoherenceManager:
    """Tracks per-object ownership and triggers flushes on transitions."""

    def __init__(self, hierarchy: "MemoryHierarchy"):  # noqa: F821
        self.hierarchy = hierarchy
        self._owner: Dict[int, _Ownership] = {}
        self.transitions = 0
        self.flushed_lines = 0

    def owner(self, obj_id: int) -> Optional[_Ownership]:
        return self._owner.get(obj_id)

    def acquire(self, alloc: Allocation, domain: Domain,
                cluster: Optional[int] = None) -> int:
        """Move ``alloc`` into ``domain``; returns dirty lines flushed.

        Acquiring for the same domain (and cluster) is idempotent and free.
        """
        if domain is Domain.ACCEL and cluster is None:
            raise InterfaceError(
                f"accel acquire of {alloc.name!r} needs a cluster"
            )
        current = self._owner.get(alloc.obj_id)
        if current is not None and current.domain is domain:
            if domain is Domain.HOST or current.cluster == cluster:
                return 0
        flushed = 0
        if current is not None:
            flushed = self._flush_for_transition(alloc, current)
            self.transitions += 1
        self._owner[alloc.obj_id] = _Ownership(domain, cluster)
        return flushed

    def release(self, alloc: Allocation) -> int:
        """Return an object to the host domain (offload scope ends)."""
        return self.acquire(alloc, Domain.HOST)

    def _flush_for_transition(self, alloc: Allocation,
                              current: _Ownership) -> int:
        if current.domain is Domain.HOST:
            flushed = self.hierarchy.flush_host_range(alloc.base, alloc.size)
        else:
            flushed = self.hierarchy.flush_accel_range(
                current.cluster, alloc.base, alloc.size
            )
        self.flushed_lines += flushed
        return flushed

"""Assembled memory hierarchy with host and accelerator access paths.

Two access paths exist, mirroring the paper's architecture (Figure 2a):

* **Host path** — L1 -> L2 (stride prefetcher) -> home L3 slice over the
  mesh -> DRAM. Used by the OoO baseline and by non-offloaded code.
* **Accelerator path** — per-cluster ACP (1-way 1 KB) -> home L3 slice
  (local, or remote over the mesh) -> DRAM. Used by access units; data
  never climbs into L1/L2, which is where decentralized accesses save
  their traffic (Figure 8).

The hierarchy charges all energies, NoC traffic (Figure 10 classes) and
keeps the byte-movement ledger behind the Figure 9 / data-movement
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..energy import EnergyLedger
from ..noc import HOST_NODE, Mesh, MessageKind, TrafficLedger
from ..obs import OBS
from ..params import CACHE_LINE_BYTES, CacheParams, MachineParams
from .cache import Cache
from .dram import Dram
from .nuca import NucaL3
from .prefetch import StridePrefetcher

#: mesh node where the memory controller attaches
MC_NODE = 3


@dataclass
class AccessStats:
    """Per-level access counters (Figure 8's cache-access metric)."""

    l1: int = 0
    l2: int = 0
    l3: int = 0
    acp: int = 0
    dram: int = 0
    prefetches: int = 0

    def total_cache_accesses(self) -> int:
        return self.l1 + self.l2 + self.l3 + self.acp

    def as_dict(self) -> Dict[str, int]:
        return {
            "l1": self.l1, "l2": self.l2, "l3": self.l3,
            "acp": self.acp, "dram": self.dram,
            "prefetches": self.prefetches,
        }


class MemoryHierarchy:
    """The full Table III memory system."""

    def __init__(self, machine: MachineParams, energy: EnergyLedger,
                 traffic: Optional[TrafficLedger] = None):
        self.machine = machine
        self.energy = energy
        self.mesh = Mesh(machine.noc)
        self.traffic = traffic or TrafficLedger(self.mesh, energy)
        self.l1 = Cache(machine.l1, name="l1d")
        self.l2 = Cache(machine.l2, name="l2")
        self.l3 = NucaL3(machine)
        self.dram = Dram(machine.dram, energy)
        self.prefetcher: Optional[StridePrefetcher] = (
            StridePrefetcher(line_bytes=machine.l1.line_bytes)
            if machine.l2_stride_prefetcher else None
        )
        acp_params = CacheParams(
            size_bytes=machine.access_unit.acp_bytes,
            ways=machine.access_unit.acp_ways,
            latency_cycles=1,
            mshrs=4,
        )
        self.acps: List[Cache] = [
            Cache(acp_params, name=f"acp{i}")
            for i in range(machine.l3_clusters)
        ]
        #: total bytes moved between hierarchy levels (fills + writebacks)
        self.movement_bytes = 0
        self._line = CACHE_LINE_BYTES
        self._stats_prefetches = 0
        #: line -> residual latency a late prefetch exposes to the first
        #: demand hit (prefetch timeliness model)
        self._late_prefetch: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # host path
    # ------------------------------------------------------------------
    def host_access(self, addr: int, is_write: bool,
                    stream_id: Optional[int] = None) -> int:
        """Demand access from the core; returns total latency in cycles."""
        m = self.machine
        self.energy.charge("l1", "l1_access")
        latency = m.l1.latency_cycles
        out1 = self.l1.access(addr, is_write)
        if out1.evicted and out1.evicted[1]:
            self._writeback_into_l2(out1.evicted[0])
        if out1.hit:
            return latency

        # L1 miss -> L2
        self.energy.charge("l2", "l2_access")
        latency += m.l2.latency_cycles
        out2 = self.l2.access(addr, is_write=False)
        self.movement_bytes += self._line  # L2 -> L1 fill
        if out2.evicted and out2.evicted[1]:
            self._writeback_into_l3(out2.evicted[0])
        if self.prefetcher is not None and stream_id is not None:
            self._run_prefetcher(stream_id, addr)
        if out2.hit:
            # a prefetched line may still be in flight: the prefetcher
            # runs only `degree` lines ahead, so DRAM-sourced fills are
            # partially exposed to the first demand hit
            residual = self._late_prefetch.pop(self.l2.line_of(addr), 0)
            return latency + residual

        # L2 miss -> home L3 slice over the mesh
        latency += self._l3_demand(addr, from_node=HOST_NODE,
                                   kind_fill=MessageKind.CACHE_FILL)
        self.movement_bytes += self._line  # L3 -> L2 fill
        return latency

    #: fraction of a prefetch fill's latency the first demand hit still
    #: waits for (the prefetcher runs only a couple of lines ahead)
    PREFETCH_LATE_FRACTION = 0.5

    def _run_prefetcher(self, stream_id: int, addr: int) -> None:
        for pf_addr in self.prefetcher.observe(stream_id, addr):
            if self.l2.probe(pf_addr):
                continue
            # fetch from L3/DRAM into L2
            fill_latency = self._l3_demand(
                pf_addr, from_node=HOST_NODE,
                kind_fill=MessageKind.CACHE_FILL,
            )
            evicted = self.l2.fill(pf_addr, is_prefetch=True)
            self.movement_bytes += self._line
            if evicted and evicted[1]:
                self._writeback_into_l3(evicted[0])
            self._late_prefetch[self.l2.line_of(pf_addr)] = int(
                fill_latency * self.PREFETCH_LATE_FRACTION
            )
            self._stats_prefetches += 1

    def _l3_demand(self, addr: int, from_node: int,
                   kind_fill: MessageKind) -> int:
        """Access the home L3 slice from ``from_node``; fills from DRAM on
        miss. Returns latency cycles including mesh traversal."""
        m = self.machine
        cluster = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        lat_req = self.traffic.record(
            MessageKind.CACHE_REQ, from_node, cluster, 0
        )
        lat_fill = self.traffic.record(
            kind_fill, cluster, from_node, self._line
        )
        latency = m.l3.latency_cycles
        latency += _ps_to_cycles_int(lat_req + lat_fill, m.core.freq_ghz)
        out3 = self.l3.access(addr, is_write=False)
        if out3.evicted and out3.evicted[1]:
            self._writeback_to_dram(cluster)
        if not out3.hit:
            latency += self._dram_fill(cluster)
        return latency

    def _dram_fill(self, cluster: int) -> int:
        lat_req = self.traffic.record(
            MessageKind.CACHE_REQ, cluster, MC_NODE, 0
        )
        lat_fill = self.traffic.record(
            MessageKind.CACHE_FILL, MC_NODE, cluster, self._line
        )
        self.movement_bytes += self._line
        cycles = self.dram.access(is_write=False)
        return cycles + _ps_to_cycles_int(
            lat_req + lat_fill, self.machine.core.freq_ghz
        )

    def _writeback_into_l2(self, line: int) -> None:
        addr = line * self._line
        self.energy.charge("l2", "l2_access")
        self.movement_bytes += self._line
        evicted = self.l2.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_into_l3(evicted[0])

    def _writeback_into_l3(self, line: int) -> None:
        addr = line * self._line
        cluster = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        self.traffic.record(
            MessageKind.CACHE_WRITEBACK, HOST_NODE, cluster, self._line
        )
        self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(cluster)

    def _writeback_to_dram(self, cluster: int) -> None:
        self.traffic.record(
            MessageKind.CACHE_WRITEBACK, cluster, MC_NODE, self._line
        )
        self.movement_bytes += self._line
        self.dram.access(is_write=True)

    # ------------------------------------------------------------------
    # accelerator path
    # ------------------------------------------------------------------
    def accel_access(self, local_cluster: int, addr: int,
                     is_write: bool) -> int:
        """Access from an accelerator at ``local_cluster`` via its ACP.

        Data is served from the home L3 slice (local or remote) without
        touching L1/L2. Returns latency in cycles (2 GHz domain).
        """
        acp = self.acps[local_cluster]
        self.energy.charge("access_unit", "acp_access")
        latency = 1  # ACP lookup
        out = acp.access(addr, is_write)
        if out.evicted and out.evicted[1]:
            self._accel_writeback(local_cluster, out.evicted[0])
        if out.hit:
            return latency
        latency += self._l3_demand(
            addr, from_node=local_cluster, kind_fill=MessageKind.ACC_OPERAND
        )
        self.movement_bytes += self._line  # L3 -> ACP fill
        return latency

    def accel_line_fetch(self, local_cluster: int, addr: int,
                         is_write: bool) -> int:
        """Line-granular transfer between an access-unit buffer and the
        home L3 slice (stride-FSM fill/drain path).

        The ACP is a coherent *port* here, not an allocating cache: one
        line moves L3 <-> buffer, nothing is installed in between.
        Returns latency in cycles (2 GHz domain).
        """
        self.energy.charge("access_unit", "acp_access")
        home = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        lat_req = self.traffic.record(
            MessageKind.ACC_HANDSHAKE, local_cluster, home, 0
        )
        lat_data = self.traffic.record(
            MessageKind.ACC_OPERAND,
            home if not is_write else local_cluster,
            local_cluster if not is_write else home,
            self._line,
        )
        if home != local_cluster:
            # remote fill: the line crosses the mesh. A co-located
            # buffer<->bank transfer is the near-data case and does not
            # count as hierarchy data movement.
            self.movement_bytes += self._line
        latency = 1 + (
            self.machine.l3_bank_latency if home == local_cluster
            else self.machine.l3.latency_cycles
        )
        latency += _ps_to_cycles_int(
            lat_req + lat_data, self.machine.core.freq_ghz
        )
        out = self.l3.access(addr, is_write=is_write)
        if out.evicted and out.evicted[1]:
            self._writeback_to_dram(home)
        if not out.hit and not is_write:
            latency += self._dram_fill(home)
        elif not out.hit and is_write:
            # write-allocate of a fully-written line needs no DRAM read
            pass
        return latency

    def accel_elem_access(self, local_cluster: int, addr: int,
                          is_write: bool, elem_bytes: int) -> int:
        """Element-granular in-place access at the home L3 bank.

        This is the near-data cp_read/cp_write path: the access executes
        at the data's home cluster, where the bank-side ACP coalesces
        spatially-local indirect accesses into line-granular bank reads;
        only the *element* crosses the NoC back to the requester. Line
        moves between a bank and its own ACP are intra-cluster and do not
        count as hierarchy data movement. Returns latency cycles.
        """
        home = self.l3.home_cluster(addr)
        acp = self.acps[home]
        self.energy.charge("access_unit", "acp_access")
        lat_req = self.traffic.record(
            MessageKind.ACC_HANDSHAKE, local_cluster, home, 0
        )
        lat_data = self.traffic.record(
            MessageKind.ACC_OPERAND,
            home if not is_write else local_cluster,
            local_cluster if not is_write else home,
            elem_bytes,
        )
        if home != local_cluster:
            self.movement_bytes += elem_bytes
        latency = 1 + _ps_to_cycles_int(
            lat_req + lat_data, self.machine.core.freq_ghz
        )
        out = acp.access(addr, is_write)
        if out.evicted and out.evicted[1]:
            # dirty line retires into the local bank
            self.energy.charge("l3", "l3_access")
            evicted = self.l3.fill(out.evicted[0] * self._line, dirty=True)
            if evicted and evicted[1]:
                self._writeback_to_dram(home)
        if out.hit:
            return latency
        self.energy.charge("l3", "l3_access")
        latency += self.machine.l3_bank_latency
        out3 = self.l3.access(addr, is_write=False)
        if out3.evicted and out3.evicted[1]:
            self._writeback_to_dram(home)
        if not out3.hit:
            latency += self._dram_fill(home)
        return latency

    def l3_demand(self, addr: int, from_node: int,
                  as_accel: bool = False) -> int:
        """Public demand access to the home L3 slice from any mesh node.

        Used by accelerators with private caches (Mono-CA) whose misses go
        straight to the shared L3. Returns latency cycles.
        """
        kind = (MessageKind.ACC_OPERAND if as_accel
                else MessageKind.CACHE_FILL)
        latency = self._l3_demand(addr, from_node=from_node, kind_fill=kind)
        self.movement_bytes += self._line
        return latency

    def writeback_line_from(self, line: int, from_node: int) -> None:
        """Public dirty-line writeback into L3 from any mesh node."""
        addr = line * self._line
        cluster = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        self.traffic.record(
            MessageKind.CACHE_WRITEBACK, from_node, cluster, self._line
        )
        self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(cluster)

    def _accel_writeback(self, local_cluster: int, line: int) -> None:
        addr = line * self._line
        home = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        self.traffic.record(
            MessageKind.ACC_OPERAND, local_cluster, home, self._line
        )
        self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(home)

    # ------------------------------------------------------------------
    # flushes (coherence transitions)
    # ------------------------------------------------------------------
    def flush_host_range(self, base: int, size: int) -> int:
        """Flush [base, base+size) from L1+L2; returns dirty lines."""
        dirty = self.l1.invalidate_range(base, size)
        dirty += self.l2.invalidate_range(base, size)
        # dirty lines stream down to their home L3 slices
        for _ in range(dirty):
            self.energy.charge("l3", "l3_access")
        self.movement_bytes += dirty * self._line
        return dirty

    def flush_accel_range(self, cluster: Optional[int], base: int,
                          size: int) -> int:
        if cluster is None:
            return 0
        dirty = self.acps[cluster].invalidate_range(base, size)
        self.movement_bytes += dirty * self._line
        return dirty

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> AccessStats:
        return AccessStats(
            l1=self.l1.accesses,
            l2=self.l2.accesses,
            l3=self.l3.accesses,
            acp=sum(a.accesses for a in self.acps),
            dram=self.dram.accesses,
            prefetches=self._stats_prefetches,
        )

    def record_obs(self) -> None:
        """Publish this hierarchy's lifetime totals into the process
        observability registry. Called once per simulation run (the
        per-access hot paths stay instrumentation-free)."""
        s = self.stats()
        OBS.inc("mem.l1_accesses", s.l1)
        OBS.inc("mem.l2_accesses", s.l2)
        OBS.inc("mem.l3_accesses", s.l3)
        OBS.inc("mem.acp_accesses", s.acp)
        OBS.inc("mem.dram_accesses", s.dram)
        OBS.inc("mem.prefetches", s.prefetches)
        OBS.inc("mem.movement_bytes", self.movement_bytes)


def _ps_to_cycles_int(ps: int, freq_ghz: float) -> int:
    from ..events import ps_to_cycles

    return int(round(ps_to_cycles(ps, freq_ghz)))

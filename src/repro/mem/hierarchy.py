"""Assembled memory hierarchy with host and accelerator access paths.

Two access paths exist, mirroring the paper's architecture (Figure 2a):

* **Host path** — L1 -> L2 (stride prefetcher) -> home L3 slice over the
  mesh -> DRAM. Used by the OoO baseline and by non-offloaded code.
* **Accelerator path** — per-cluster ACP (1-way 1 KB) -> home L3 slice
  (local, or remote over the mesh) -> DRAM. Used by access units; data
  never climbs into L1/L2, which is where decentralized accesses save
  their traffic (Figure 8).

The hierarchy charges all energies, NoC traffic (Figure 10 classes) and
keeps the byte-movement ledger behind the Figure 9 / data-movement
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..energy import EnergyLedger
from ..events import ps_to_cycles
from ..noc import Mesh, MessageKind, TrafficLedger
from ..obs import OBS
from ..params import CacheParams, MachineParams
from ..vecpath import vec_path_enabled
from .cache import Cache
from .dram import Dram
from .nuca import NucaL3
from .prefetch import StridePrefetcher

#: accelerator chunk batches below this length take the scalar walk
#: even under ``REPRO_VEC`` — the per-call array setup costs more than
#: it saves (chunks are frequently a single line or element)
_ACCEL_BATCH_VEC_MIN = 10**9

#: segment-coalesced (``seg_ends``) batches at least this long take the
#: per-home vectorized walk; per-access latencies are materialized as an
#: array and cut into per-segment subtotals by prefix sums
_SEG_VEC_MIN = 48


@dataclass
class AccessStats:
    """Per-level access counters (Figure 8's cache-access metric)."""

    l1: int = 0
    l2: int = 0
    l3: int = 0
    acp: int = 0
    dram: int = 0
    prefetches: int = 0

    def total_cache_accesses(self) -> int:
        return self.l1 + self.l2 + self.l3 + self.acp

    def as_dict(self) -> Dict[str, int]:
        return {
            "l1": self.l1, "l2": self.l2, "l3": self.l3,
            "acp": self.acp, "dram": self.dram,
            "prefetches": self.prefetches,
        }


class MemoryHierarchy:
    """The full Table III memory system."""

    def __init__(self, machine: MachineParams, energy: EnergyLedger,
                 traffic: Optional[TrafficLedger] = None):
        self.machine = machine
        self.energy = energy
        self.mesh = Mesh(machine.noc)
        self.traffic = traffic or TrafficLedger(self.mesh, energy)
        self.l1 = Cache(machine.l1, name="l1d")
        self.l2 = Cache(machine.l2, name="l2")
        self.l3 = NucaL3(machine)
        self.dram = Dram(machine.dram, energy)
        self.prefetcher: Optional[StridePrefetcher] = (
            StridePrefetcher(line_bytes=machine.l1.line_bytes)
            if machine.l2_stride_prefetcher else None
        )
        acp_params = CacheParams(
            size_bytes=machine.access_unit.acp_bytes,
            ways=machine.access_unit.acp_ways,
            latency_cycles=1,
            mshrs=4,
            line_bytes=machine.l3.line_bytes,
        )
        self.acps: List[Cache] = [
            Cache(acp_params, name=f"acp{i}")
            for i in range(machine.l3_clusters)
        ]
        #: total bytes moved between hierarchy levels (fills + writebacks)
        self.movement_bytes = 0
        self._line = machine.l3.line_bytes
        #: host tile / memory-controller mesh attachment points
        self._host = machine.noc.host_node
        self._mc = machine.noc.mc_node
        self._stats_prefetches = 0
        #: line -> residual latency a late prefetch exposes to the first
        #: demand hit (prefetch timeliness model). Bounded: entries for
        #: prefetched lines evicted before any demand hit are never
        #: popped, so without a cap the map grows for the whole run.
        self._late_prefetch: Dict[int, int] = {}
        #: deferred DRAM fill/writeback accounting, open only while a
        #: batch replay method is on the stack (None on the scalar path)
        self._dram_pool: Optional[_DramPool] = None
        #: run-scoped pooled batch-tail accounting (energy charge counts
        #: and traffic record counts by key); None outside a window
        self._acct_energy: Optional[Dict[Tuple[str, str], int]] = None
        self._acct_traffic: Optional[Dict[Tuple, int]] = None

    # ------------------------------------------------------------------
    # host path
    # ------------------------------------------------------------------
    def host_access(self, addr: int, is_write: bool,
                    stream_id: Optional[int] = None) -> int:
        """Demand access from the core; returns total latency in cycles."""
        m = self.machine
        self.energy.charge("l1", "l1_access")
        latency = m.l1.latency_cycles
        out1 = self.l1.access(addr, is_write)
        if out1.evicted and out1.evicted[1]:
            self._writeback_into_l2(out1.evicted[0])
        if out1.hit:
            return latency

        # L1 miss -> L2
        self.energy.charge("l2", "l2_access")
        latency += m.l2.latency_cycles
        out2 = self.l2.access(addr, is_write=False)
        self.movement_bytes += self._line  # L2 -> L1 fill
        if out2.evicted and out2.evicted[1]:
            self._writeback_into_l3(out2.evicted[0])
        if self.prefetcher is not None and stream_id is not None:
            self._run_prefetcher(stream_id, addr)
        if out2.hit:
            # a prefetched line may still be in flight: the prefetcher
            # runs only `degree` lines ahead, so DRAM-sourced fills are
            # partially exposed to the first demand hit
            residual = self._late_prefetch.pop(self.l2.line_of(addr), 0)
            return latency + residual

        # L2 miss -> home L3 slice over the mesh
        latency += self._l3_demand(addr, from_node=self._host,
                                   kind_fill=MessageKind.CACHE_FILL)
        self.movement_bytes += self._line  # L3 -> L2 fill
        return latency

    #: fraction of a prefetch fill's latency the first demand hit still
    #: waits for (the prefetcher runs only a couple of lines ahead)
    PREFETCH_LATE_FRACTION = 0.5

    #: most late-prefetch residuals tracked at once; a prefetch this many
    #: prefetches old has either been demanded (popped) or evicted from
    #: L2, so dropping its residual FIFO-style loses nothing meaningful
    LATE_PREFETCH_CAP = 8192

    def _note_late_prefetch(self, line: int, residual: int) -> None:
        late = self._late_prefetch
        if line not in late and len(late) >= self.LATE_PREFETCH_CAP:
            late.pop(next(iter(late)))  # oldest surviving entry
        late[line] = residual

    def _run_prefetcher(self, stream_id: int, addr: int) -> None:
        for pf_addr in self.prefetcher.observe(stream_id, addr):
            if self.l2.probe(pf_addr):
                continue
            # fetch from L3/DRAM into L2
            fill_latency = self._l3_demand(
                pf_addr, from_node=self._host,
                kind_fill=MessageKind.CACHE_FILL,
            )
            evicted = self.l2.fill(pf_addr, is_prefetch=True)
            self.movement_bytes += self._line
            if evicted and evicted[1]:
                self._writeback_into_l3(evicted[0])
            self._note_late_prefetch(self.l2.line_of(pf_addr), int(
                fill_latency * self.PREFETCH_LATE_FRACTION
            ))
            self._stats_prefetches += 1

    def _l3_demand(self, addr: int, from_node: int,
                   kind_fill: MessageKind) -> int:
        """Access the home L3 slice from ``from_node``; fills from DRAM on
        miss. Returns latency cycles including mesh traversal."""
        m = self.machine
        cluster = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        lat_req = self.traffic.record(
            MessageKind.CACHE_REQ, from_node, cluster, 0
        )
        lat_fill = self.traffic.record(
            kind_fill, cluster, from_node, self._line
        )
        latency = m.l3.latency_cycles
        latency += _ps_to_cycles_int(lat_req + lat_fill, m.core.freq_ghz)
        out3 = self.l3.access(addr, is_write=False)
        if out3.evicted and out3.evicted[1]:
            self._writeback_to_dram(cluster)
        if not out3.hit:
            latency += self._dram_fill(cluster)
        return latency

    def _dram_fill(self, cluster: int) -> int:
        pool = self._dram_pool
        if pool is not None:
            pool.fills[cluster] = pool.fills.get(cluster, 0) + 1
            lat = pool.fill_lat.get(cluster)
            if lat is None:
                lat = pool.fill_lat[cluster] = (
                    self.dram.params.latency_cycles + _ps_to_cycles_int(
                        self.traffic.latency_of(cluster, self._mc, 0)
                        + self.traffic.latency_of(
                            self._mc, cluster, self._line),
                        self.machine.core.freq_ghz,
                    )
                )
            return lat
        lat_req = self.traffic.record(
            MessageKind.CACHE_REQ, cluster, self._mc, 0
        )
        lat_fill = self.traffic.record(
            MessageKind.CACHE_FILL, self._mc, cluster, self._line
        )
        self.movement_bytes += self._line
        cycles = self.dram.access(is_write=False)
        return cycles + _ps_to_cycles_int(
            lat_req + lat_fill, self.machine.core.freq_ghz
        )

    def open_accounting(self):
        """Open a run-scoped deferred-accounting window: one DRAM pool
        plus pooled batch-tail energy/traffic counts shared by every
        batch replay call until :meth:`close_accounting`.

        Energy charges and ``count=``-style traffic records are linear in
        their count and the ledgers are order-free (sorted summaries), so
        merging them per key across a whole offload run is bit-identical
        to flushing per batch call. Nothing may read the ledgers while a
        window is open.
        """
        pool = self._open_dram_pool()
        owned = self._acct_energy is None
        if owned:
            self._acct_energy = {}
            self._acct_traffic = {}
        return (pool, owned)

    def close_accounting(self, win) -> None:
        """Flush a window opened by :meth:`open_accounting`."""
        pool, owned = win
        if pool is not None:
            self._flush_dram_pool(pool)
        if owned:
            en = self._acct_energy
            tr = self._acct_traffic
            self._acct_energy = None
            self._acct_traffic = None
            charge = self.energy.charge
            for (unit, event), n in en.items():
                charge(unit, event, n)
            record = self.traffic.record
            for (kind, src, dst, payload), c in tr.items():
                record(kind, src, dst, payload, count=c)

    def _charge(self, unit: str, event: str, n: int) -> None:
        """Energy charge, pooled while an accounting window is open."""
        acct = self._acct_energy
        if acct is None:
            self.energy.charge(unit, event, n)
        else:
            key = (unit, event)
            acct[key] = acct.get(key, 0) + n

    def _record(self, kind: MessageKind, src: int, dst: int, payload: int,
                count: int) -> None:
        """Traffic record (return value unused), pooled while an
        accounting window is open."""
        acct = self._acct_traffic
        if acct is None:
            self.traffic.record(kind, src, dst, payload, count=count)
        else:
            key = (kind, src, dst, payload)
            acct[key] = acct.get(key, 0) + count

    def _open_dram_pool(self) -> Optional["_DramPool"]:
        """Start deferring DRAM fill/writeback accounting; returns the
        pool to pass to :meth:`_flush_dram_pool`, or None when an
        enclosing batch already owns one."""
        if self._dram_pool is not None:
            return None
        pool = self._dram_pool = _DramPool()
        return pool

    def _flush_dram_pool(self, pool: "_DramPool") -> None:
        """Charge the pooled DRAM traffic/energy/movement (commutative
        integer counts — bit-identical to the per-fill scalar charges)."""
        self._dram_pool = None
        if not (pool.fills or pool.wbs or pool.l2_wbs or pool.l3_wbs):
            return  # every access hit: nothing pooled (the common case)
        traffic = self.traffic
        line = self._line
        total = 0
        for cluster, count in pool.fills.items():
            total += count
            traffic.record(MessageKind.CACHE_REQ, cluster, self._mc, 0,
                           count=count)
            traffic.record(MessageKind.CACHE_FILL, self._mc, cluster,
                           line, count=count)
        if total:
            self.dram.reads += total
            self.energy.charge("dram", "dram_line_access", total)
            self.movement_bytes += total * line
        total = 0
        for cluster, count in pool.wbs.items():
            total += count
            traffic.record(MessageKind.CACHE_WRITEBACK, cluster, self._mc,
                           line, count=count)
        if total:
            self.dram.writes += total
            self.energy.charge("dram", "dram_line_access", total)
            self.movement_bytes += total * line
        if pool.l2_wbs:
            self.energy.charge("l2", "l2_access", pool.l2_wbs)
            self.movement_bytes += pool.l2_wbs * line
        total = 0
        for cluster, count in pool.l3_wbs.items():
            total += count
            self.energy.charge("l3", "l3_access", count)
            traffic.record(MessageKind.CACHE_WRITEBACK, self._host,
                           cluster, line, count=count)
        if total:
            self.movement_bytes += total * line

    def _writeback_into_l2(self, line: int) -> None:
        addr = line * self._line
        pool = self._dram_pool
        if pool is not None:
            pool.l2_wbs += 1
        else:
            self.energy.charge("l2", "l2_access")
            self.movement_bytes += self._line
        evicted = self.l2.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_into_l3(evicted[0])

    def _writeback_into_l3(self, line: int) -> None:
        addr = line * self._line
        cluster = self.l3.home_cluster(addr)
        pool = self._dram_pool
        if pool is not None:
            pool.l3_wbs[cluster] = pool.l3_wbs.get(cluster, 0) + 1
        else:
            self.energy.charge("l3", "l3_access")
            self.traffic.record(
                MessageKind.CACHE_WRITEBACK, self._host, cluster, self._line
            )
            self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(cluster)

    def _writeback_to_dram(self, cluster: int) -> None:
        pool = self._dram_pool
        if pool is not None:
            pool.wbs[cluster] = pool.wbs.get(cluster, 0) + 1
            return
        self.traffic.record(
            MessageKind.CACHE_WRITEBACK, cluster, self._mc, self._line
        )
        self.movement_bytes += self._line
        self.dram.access(is_write=True)

    # ------------------------------------------------------------------
    # accelerator path
    # ------------------------------------------------------------------
    def accel_access(self, local_cluster: int, addr: int,
                     is_write: bool) -> int:
        """Access from an accelerator at ``local_cluster`` via its ACP.

        Data is served from the home L3 slice (local or remote) without
        touching L1/L2. Returns latency in cycles (2 GHz domain).
        """
        acp = self.acps[local_cluster]
        self.energy.charge("access_unit", "acp_access")
        latency = 1  # ACP lookup
        out = acp.access(addr, is_write)
        if out.evicted and out.evicted[1]:
            self._accel_writeback(local_cluster, out.evicted[0])
        if out.hit:
            return latency
        latency += self._l3_demand(
            addr, from_node=local_cluster, kind_fill=MessageKind.ACC_OPERAND
        )
        self.movement_bytes += self._line  # L3 -> ACP fill
        return latency

    def accel_line_fetch(self, local_cluster: int, addr: int,
                         is_write: bool) -> int:
        """Line-granular transfer between an access-unit buffer and the
        home L3 slice (stride-FSM fill/drain path).

        The ACP is a coherent *port* here, not an allocating cache: one
        line moves L3 <-> buffer, nothing is installed in between.
        Returns latency in cycles (2 GHz domain).
        """
        self.energy.charge("access_unit", "acp_access")
        home = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        lat_req = self.traffic.record(
            MessageKind.ACC_HANDSHAKE, local_cluster, home, 0
        )
        lat_data = self.traffic.record(
            MessageKind.ACC_OPERAND,
            home if not is_write else local_cluster,
            local_cluster if not is_write else home,
            self._line,
        )
        if home != local_cluster:
            # remote fill: the line crosses the mesh. A co-located
            # buffer<->bank transfer is the near-data case and does not
            # count as hierarchy data movement.
            self.movement_bytes += self._line
        latency = 1 + (
            self.machine.l3_bank_latency if home == local_cluster
            else self.machine.l3.latency_cycles
        )
        latency += _ps_to_cycles_int(
            lat_req + lat_data, self.machine.core.freq_ghz
        )
        out = self.l3.access(addr, is_write=is_write)
        if out.evicted and out.evicted[1]:
            self._writeback_to_dram(home)
        if not out.hit and not is_write:
            latency += self._dram_fill(home)
        elif not out.hit and is_write:
            # write-allocate of a fully-written line needs no DRAM read
            pass
        return latency

    def accel_elem_access(self, local_cluster: int, addr: int,
                          is_write: bool, elem_bytes: int) -> int:
        """Element-granular in-place access at the home L3 bank.

        This is the near-data cp_read/cp_write path: the access executes
        at the data's home cluster, where the bank-side ACP coalesces
        spatially-local indirect accesses into line-granular bank reads;
        only the *element* crosses the NoC back to the requester. Line
        moves between a bank and its own ACP are intra-cluster and do not
        count as hierarchy data movement. Returns latency cycles.
        """
        home = self.l3.home_cluster(addr)
        acp = self.acps[home]
        self.energy.charge("access_unit", "acp_access")
        lat_req = self.traffic.record(
            MessageKind.ACC_HANDSHAKE, local_cluster, home, 0
        )
        lat_data = self.traffic.record(
            MessageKind.ACC_OPERAND,
            home if not is_write else local_cluster,
            local_cluster if not is_write else home,
            elem_bytes,
        )
        if home != local_cluster:
            self.movement_bytes += elem_bytes
        latency = 1 + _ps_to_cycles_int(
            lat_req + lat_data, self.machine.core.freq_ghz
        )
        out = acp.access(addr, is_write)
        if out.evicted and out.evicted[1]:
            # dirty line retires into the local bank
            self.energy.charge("l3", "l3_access")
            evicted = self.l3.fill(out.evicted[0] * self._line, dirty=True)
            if evicted and evicted[1]:
                self._writeback_to_dram(home)
        if out.hit:
            return latency
        self.energy.charge("l3", "l3_access")
        latency += self.machine.l3_bank_latency
        out3 = self.l3.access(addr, is_write=False)
        if out3.evicted and out3.evicted[1]:
            self._writeback_to_dram(home)
        if not out3.hit:
            latency += self._dram_fill(home)
        return latency

    def l3_demand(self, addr: int, from_node: int,
                  as_accel: bool = False) -> int:
        """Public demand access to the home L3 slice from any mesh node.

        Used by accelerators with private caches (Mono-CA) whose misses go
        straight to the shared L3. Returns latency cycles.
        """
        kind = (MessageKind.ACC_OPERAND if as_accel
                else MessageKind.CACHE_FILL)
        latency = self._l3_demand(addr, from_node=from_node, kind_fill=kind)
        self.movement_bytes += self._line
        return latency

    def writeback_line_from(self, line: int, from_node: int) -> None:
        """Public dirty-line writeback into L3 from any mesh node."""
        addr = line * self._line
        cluster = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        self.traffic.record(
            MessageKind.CACHE_WRITEBACK, from_node, cluster, self._line
        )
        self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(cluster)

    def _accel_writeback(self, local_cluster: int, line: int) -> None:
        addr = line * self._line
        home = self.l3.home_cluster(addr)
        self.energy.charge("l3", "l3_access")
        self.traffic.record(
            MessageKind.ACC_OPERAND, local_cluster, home, self._line
        )
        self.movement_bytes += self._line
        evicted = self.l3.fill(addr, dirty=True)
        if evicted and evicted[1]:
            self._writeback_to_dram(home)

    # ------------------------------------------------------------------
    # batched fast paths (REPRO_FAST=1)
    #
    # Each *_batch method replays a chunk of accesses through exactly the
    # same cache/DRAM state transitions as its scalar counterpart, in the
    # same order, but (a) hoists attribute and latency lookups out of the
    # loop, (b) collapses runs of back-to-back same-line host accesses
    # into one full access plus a bulk hit update, and (c) defers the
    # per-access energy charges and NoC records into per-(kind, src, dst)
    # counters flushed once per chunk. All deferred quantities are
    # commutative integer counts, so the resulting ledgers are
    # bit-identical to the scalar path (enforced by
    # tests/sim/test_fastpath_equiv.py).
    # ------------------------------------------------------------------
    def host_access_batch(self, addrs: np.ndarray, is_write: np.ndarray,
                          stream_ids: np.ndarray) -> int:
        """Replay a chunk of host demand accesses (see :meth:`host_access`).

        Returns the summed post-L1 exposure ``sum(max(lat - l1_lat, 0))``
        in cycles — the only per-access timing quantity the OoO model
        consumes.
        """
        n = len(addrs)
        if n == 0:
            return 0
        m = self.machine
        l1, l2, l3 = self.l1, self.l2, self.l3
        l1_lat = m.l1.latency_cycles
        l2_lat = m.l2.latency_cycles
        l3_lat = m.l3.latency_cycles
        line = self._line
        freq = m.core.freq_ghz
        prefetcher = self.prefetcher
        late = self._late_prefetch
        stripe = l3.stripe_bytes
        ncl = l3.num_clusters
        lat_of = self.traffic.latency_of
        l1_access = l1.access
        l2_line_of = l2.line_of

        lines = addrs >> l1.line_shift
        cuts = np.flatnonzero(lines[1:] != lines[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        run_write = np.logical_or.reduceat(is_write, starts)
        if vec_path_enabled():
            return self._host_access_batch_vec(
                addrs, stream_ids, starts, ends, run_write
            )
        addr_l = addrs.tolist()
        write_l = is_write.tolist()
        sid_l = stream_ids.tolist()

        stall = 0
        n_l2 = 0
        moved = 0
        demand_counts: Dict[int, int] = {}
        demand_cycles: Dict[int, int] = {}
        pool = self._open_dram_pool()
        try:
            for i, end, any_write in zip(starts.tolist(), ends.tolist(),
                                         run_write.tolist()):
                addr = addr_l[i]
                lat = l1_lat
                out1 = l1_access(addr, write_l[i])
                ev1 = out1.evicted
                if ev1 is not None and ev1[1]:
                    self._writeback_into_l2(ev1[0])
                if not out1.hit:
                    # L1 miss -> L2
                    n_l2 += 1
                    lat += l2_lat
                    out2 = l2.access(addr, is_write=False)
                    moved += line
                    ev2 = out2.evicted
                    if ev2 is not None and ev2[1]:
                        self._writeback_into_l3(ev2[0])
                    if prefetcher is not None:
                        for pf_addr in prefetcher.observe(sid_l[i], addr):
                            if l2.probe(pf_addr):
                                continue
                            cluster = (pf_addr // stripe) % ncl
                            demand_counts[cluster] = (
                                demand_counts.get(cluster, 0) + 1
                            )
                            conv = demand_cycles.get(cluster)
                            if conv is None:
                                conv = demand_cycles[cluster] = (
                                    _ps_to_cycles_int(
                                        lat_of(self._host, cluster, 0)
                                        + lat_of(cluster, self._host, line),
                                        freq,
                                    )
                                )
                            fill_latency = l3_lat + conv
                            out3 = l3.access(pf_addr, is_write=False)
                            ev3 = out3.evicted
                            if ev3 is not None and ev3[1]:
                                self._writeback_to_dram(cluster)
                            if not out3.hit:
                                fill_latency += self._dram_fill(cluster)
                            evp = l2.fill(pf_addr, is_prefetch=True)
                            moved += line
                            if evp and evp[1]:
                                self._writeback_into_l3(evp[0])
                            self._note_late_prefetch(
                                l2_line_of(pf_addr), int(
                                    fill_latency
                                    * self.PREFETCH_LATE_FRACTION
                                )
                            )
                            self._stats_prefetches += 1
                    if out2.hit:
                        lat += late.pop(l2_line_of(addr), 0)
                    else:
                        # L2 miss -> home L3 slice over the mesh
                        cluster = (addr // stripe) % ncl
                        demand_counts[cluster] = (
                            demand_counts.get(cluster, 0) + 1
                        )
                        conv = demand_cycles.get(cluster)
                        if conv is None:
                            conv = demand_cycles[cluster] = (
                                _ps_to_cycles_int(
                                    lat_of(self._host, cluster, 0)
                                    + lat_of(cluster, self._host, line),
                                    freq,
                                )
                            )
                        lat += l3_lat + conv
                        out3 = l3.access(addr, is_write=False)
                        ev3 = out3.evicted
                        if ev3 is not None and ev3[1]:
                            self._writeback_to_dram(cluster)
                        if not out3.hit:
                            lat += self._dram_fill(cluster)
                        moved += line
                rest = end - i - 1
                if rest:
                    # back-to-back same-line accesses: guaranteed L1 hits
                    l1.touch_resident(addr, any_write, rest)
                if lat > l1_lat:
                    stall += lat - l1_lat
        finally:
            if pool is not None:
                self._flush_dram_pool(pool)
        self._charge("l1", "l1_access", n)
        if n_l2:
            self._charge("l2", "l2_access", n_l2)
        for cluster, count in demand_counts.items():
            self._charge("l3", "l3_access", count)
            self._record(MessageKind.CACHE_REQ, self._host, cluster, 0,
                         count)
            self._record(MessageKind.CACHE_FILL, cluster, self._host,
                         line, count)
        self.movement_bytes += moved
        return stall

    def _host_access_batch_vec(self, addrs: np.ndarray,
                               stream_ids: np.ndarray,
                               starts: np.ndarray, ends: np.ndarray,
                               run_write: np.ndarray) -> int:
        """Set-level vectorized variant of :meth:`host_access_batch`
        (REPRO_VEC=1).

        Within a batch nothing downstream ever feeds back into L1, so
        the whole L1 state transition is advanced first through
        :meth:`~repro.mem.cache.Cache.access_batch` (set-parallel waves,
        numpy int ops), then a python loop visits *only the L1 misses*
        in program order for the downstream L2/L3/prefetch/DRAM effects
        — which keeps every stateful downstream transition in exactly
        the scalar order. The run head's ``is_write`` and the collapsed
        run's dirty-OR both only touch the line's dirty bit, so they
        fold into one ``make_dirty`` input without changing hit/miss or
        LRU behavior.
        """
        n = len(addrs)
        m = self.machine
        l1, l2, l3 = self.l1, self.l2, self.l3
        l1_lat = m.l1.latency_cycles
        l2_lat = m.l2.latency_cycles
        l3_lat = m.l3.latency_cycles
        line = self._line
        freq = m.core.freq_ghz
        prefetcher = self.prefetcher
        late = self._late_prefetch
        stripe = l3.stripe_bytes
        ncl = l3.num_clusters
        lat_of = self.traffic.latency_of
        l2_line_of = l2.line_of

        head_addrs = addrs[starts]
        hit, victim_line, victim_dirty = l1.access_batch(
            head_addrs >> l1.line_shift, run_write
        )
        bulk = n - len(starts)
        if bulk:
            # collapsed same-line accesses: guaranteed L1 hits, dirty
            # contribution already folded into make_dirty above
            l1.accesses += bulk
            l1.hits += bulk

        stall = 0
        moved = 0
        demand_counts: Dict[int, int] = {}
        demand_cycles: Dict[int, int] = {}
        miss_pos = np.flatnonzero(~hit)
        n_l2 = len(miss_pos)
        pool = self._open_dram_pool()
        try:
            for addr, vd, vl, sid in zip(
                head_addrs[miss_pos].tolist(),
                victim_dirty[miss_pos].tolist(),
                victim_line[miss_pos].tolist(),
                stream_ids[starts[miss_pos]].tolist(),
            ):
                if vd:
                    self._writeback_into_l2(vl)
                # L1 miss -> L2
                lat = l1_lat + l2_lat
                out2 = l2.access(addr, is_write=False)
                moved += line
                ev2 = out2.evicted
                if ev2 is not None and ev2[1]:
                    self._writeback_into_l3(ev2[0])
                if prefetcher is not None:
                    for pf_addr in prefetcher.observe(sid, addr):
                        if l2.probe(pf_addr):
                            continue
                        cluster = (pf_addr // stripe) % ncl
                        demand_counts[cluster] = (
                            demand_counts.get(cluster, 0) + 1
                        )
                        conv = demand_cycles.get(cluster)
                        if conv is None:
                            conv = demand_cycles[cluster] = (
                                _ps_to_cycles_int(
                                    lat_of(self._host, cluster, 0)
                                    + lat_of(cluster, self._host, line),
                                    freq,
                                )
                            )
                        fill_latency = l3_lat + conv
                        out3 = l3.access(pf_addr, is_write=False)
                        ev3 = out3.evicted
                        if ev3 is not None and ev3[1]:
                            self._writeback_to_dram(cluster)
                        if not out3.hit:
                            fill_latency += self._dram_fill(cluster)
                        evp = l2.fill(pf_addr, is_prefetch=True)
                        moved += line
                        if evp and evp[1]:
                            self._writeback_into_l3(evp[0])
                        self._note_late_prefetch(
                            l2_line_of(pf_addr), int(
                                fill_latency
                                * self.PREFETCH_LATE_FRACTION
                            )
                        )
                        self._stats_prefetches += 1
                if out2.hit:
                    lat += late.pop(l2_line_of(addr), 0)
                else:
                    # L2 miss -> home L3 slice over the mesh
                    cluster = (addr // stripe) % ncl
                    demand_counts[cluster] = (
                        demand_counts.get(cluster, 0) + 1
                    )
                    conv = demand_cycles.get(cluster)
                    if conv is None:
                        conv = demand_cycles[cluster] = (
                            _ps_to_cycles_int(
                                lat_of(self._host, cluster, 0)
                                + lat_of(cluster, self._host, line),
                                freq,
                            )
                        )
                    lat += l3_lat + conv
                    out3 = l3.access(addr, is_write=False)
                    ev3 = out3.evicted
                    if ev3 is not None and ev3[1]:
                        self._writeback_to_dram(cluster)
                    if not out3.hit:
                        lat += self._dram_fill(cluster)
                    moved += line
                stall += lat - l1_lat
        finally:
            if pool is not None:
                self._flush_dram_pool(pool)
        self._charge("l1", "l1_access", n)
        if n_l2:
            self._charge("l2", "l2_access", n_l2)
        for cluster, count in demand_counts.items():
            self._charge("l3", "l3_access", count)
            self._record(MessageKind.CACHE_REQ, self._host, cluster, 0,
                         count)
            self._record(MessageKind.CACHE_FILL, cluster, self._host,
                         line, count)
        self.movement_bytes += moved
        return stall

    def accel_line_fetch_batch(self, local_cluster: int,
                               line_addrs: np.ndarray,
                               is_write: bool,
                               seg_ends: Optional[np.ndarray] = None):
        """Line-granular fill/drain of a chunk (see
        :meth:`accel_line_fetch`); returns total latency cycles.

        With ``seg_ends`` (ascending exclusive end offsets into
        ``line_addrs``) the call covers several coalesced chunks in one
        widened pass and returns the per-segment latency subtotals
        instead — state transitions stay in program order and the pooled
        accounting is identical to per-segment calls.
        """
        n = len(line_addrs)
        if n == 0:
            return 0 if seg_ends is None else [0] * len(seg_ends)
        m = self.machine
        line = self._line
        freq = m.core.freq_ghz
        l3 = self.l3
        stripe = l3.stripe_bytes
        ncl = l3.num_clusters
        slices = l3.slices  # home is recomputed below; dispatch directly
        lat_of = self.traffic.latency_of
        bank_lat = m.l3_bank_latency
        l3_lat = m.l3.latency_cycles
        counts: Dict[int, int] = {}
        conv: Dict[int, int] = {}
        total = 0
        moved = 0
        seg_totals: List[int] = []
        pool = self._open_dram_pool()
        try:
            if seg_ends is not None and n >= _SEG_VEC_MIN:
                # per-home set-level walk (same argument as the vec
                # branch below: slices are independent state machines,
                # DRAM side effects pool commutatively), materializing
                # per-access latencies so prefix sums recover the exact
                # per-segment subtotals of the scalar walk
                homes = (line_addrs // stripe) % ncl
                lat_arr = np.zeros(n, dtype=np.int64)
                dpool = self._dram_pool
                uniq, first = np.unique(homes, return_index=True)
                for home in uniq[np.argsort(first)].tolist():
                    sel = np.flatnonzero(homes == home)
                    k = len(sel)
                    counts[home] = k
                    conv[home] = _ps_to_cycles_int(
                        lat_of(local_cluster, home, 0)
                        + (lat_of(local_cluster, home, line) if is_write
                           else lat_of(home, local_cluster, line)),
                        freq,
                    )
                    if home == local_cluster:
                        base = 1 + bank_lat + conv[home]
                    else:
                        base = 1 + l3_lat + conv[home]
                        moved += k * line
                    slc = slices[home]
                    hit, _vline, vdirty = slc.access_batch(
                        line_addrs[sel] >> slc.line_shift,
                        np.full(k, is_write, dtype=bool),
                    )
                    wbs = int(vdirty.sum())
                    if wbs:
                        dpool.wbs[home] = dpool.wbs.get(home, 0) + wbs
                    if not is_write:
                        miss = ~hit
                        fills = int(miss.sum())
                        if fills:
                            fl = self._dram_fill(home)  # pools one fill
                            dpool.fills[home] += fills - 1
                            lat_arr[sel] = base + fl * miss
                            continue
                    lat_arr[sel] = base
                csum = np.concatenate(([0], np.cumsum(lat_arr)))
                bounds = np.concatenate(
                    ([0], np.asarray(seg_ends, dtype=np.int64))
                )
                seg_totals = np.diff(csum[bounds]).tolist()
            elif seg_ends is not None:
                prev_total = 0
                pos = 0
                for end in (seg_ends.tolist()
                            if isinstance(seg_ends, np.ndarray)
                            else seg_ends):
                    end = int(end)
                    for addr in line_addrs[pos:end].tolist():
                        home = (addr // stripe) % ncl
                        seen = counts.get(home)
                        if seen is None:
                            counts[home] = 1
                            conv[home] = _ps_to_cycles_int(
                                lat_of(local_cluster, home, 0)
                                + (lat_of(local_cluster, home, line)
                                   if is_write
                                   else lat_of(home, local_cluster, line)),
                                freq,
                            )
                        else:
                            counts[home] = seen + 1
                        if home == local_cluster:
                            total += 1 + bank_lat + conv[home]
                        else:
                            total += 1 + l3_lat + conv[home]
                            moved += line
                        out = slices[home].access(addr, is_write)
                        ev = out.evicted
                        if ev is not None and ev[1]:
                            self._writeback_to_dram(home)
                        if not out.hit and not is_write:
                            total += self._dram_fill(home)
                    seg_totals.append(total - prev_total)
                    prev_total = total
                    pos = end
            elif n >= _ACCEL_BATCH_VEC_MIN and vec_path_enabled():
                # set-level walk per home slice: the L3 slices are
                # independent state machines, so grouping by home (in
                # first-touch order, program order within a home) is
                # bit-identical to the interleaved scalar loop — all
                # DRAM side effects are pooled commutative counters
                homes = (line_addrs // stripe) % ncl
                uniq, first = np.unique(homes, return_index=True)
                dpool = self._dram_pool
                for home in uniq[np.argsort(first)].tolist():
                    sel = np.flatnonzero(homes == home)
                    k = len(sel)
                    counts[home] = k
                    conv[home] = _ps_to_cycles_int(
                        lat_of(local_cluster, home, 0)
                        + (lat_of(local_cluster, home, line) if is_write
                           else lat_of(home, local_cluster, line)),
                        freq,
                    )
                    if home == local_cluster:
                        total += k * (1 + bank_lat + conv[home])
                    else:
                        total += k * (1 + l3_lat + conv[home])
                        moved += k * line
                    slc = l3.slices[home]
                    hit, _vline, vdirty = slc.access_batch(
                        line_addrs[sel] >> slc.line_shift,
                        np.full(k, is_write, dtype=bool),
                    )
                    wbs = int(vdirty.sum())
                    if wbs:
                        dpool.wbs[home] = dpool.wbs.get(home, 0) + wbs
                    if not is_write:
                        fills = k - int(hit.sum())
                        if fills:
                            lat = self._dram_fill(home)  # counts one fill
                            dpool.fills[home] += fills - 1
                            total += lat * fills
            elif (addr_list := line_addrs.tolist()) and (
                    min(addr_list) // stripe == max(addr_list) // stripe):
                # whole chunk lives in one stripe block (the common case:
                # chunks are short, stripes are large): hoist the per-line
                # home math and bookkeeping out of the walk
                home = (addr_list[0] // stripe) % ncl
                counts[home] = n
                conv[home] = _ps_to_cycles_int(
                    lat_of(local_cluster, home, 0)
                    + (lat_of(local_cluster, home, line)
                       if is_write
                       else lat_of(home, local_cluster, line)),
                    freq,
                )
                if home == local_cluster:
                    total += n * (1 + bank_lat + conv[home])
                else:
                    total += n * (1 + l3_lat + conv[home])
                    moved += n * line
                access = slices[home].access
                for addr in addr_list:
                    out = access(addr, is_write)
                    ev = out.evicted
                    if ev is not None and ev[1]:
                        self._writeback_to_dram(home)
                    if not out.hit and not is_write:
                        total += self._dram_fill(home)
            else:
                for addr in addr_list:
                    home = (addr // stripe) % ncl
                    seen = counts.get(home)
                    if seen is None:
                        counts[home] = 1
                        conv[home] = _ps_to_cycles_int(
                            lat_of(local_cluster, home, 0)
                            + (lat_of(local_cluster, home, line)
                               if is_write
                               else lat_of(home, local_cluster, line)),
                            freq,
                        )
                    else:
                        counts[home] = seen + 1
                    if home == local_cluster:
                        total += 1 + bank_lat + conv[home]
                    else:
                        total += 1 + l3_lat + conv[home]
                        moved += line
                    out = slices[home].access(addr, is_write)
                    ev = out.evicted
                    if ev is not None and ev[1]:
                        self._writeback_to_dram(home)
                    if not out.hit and not is_write:
                        total += self._dram_fill(home)
        finally:
            if pool is not None:
                self._flush_dram_pool(pool)
        self._charge("access_unit", "acp_access", n)
        for home, count in counts.items():
            self._charge("l3", "l3_access", count)
            self._record(MessageKind.ACC_HANDSHAKE, local_cluster, home,
                         0, count)
            if is_write:
                self._record(MessageKind.ACC_OPERAND, local_cluster,
                             home, line, count)
            else:
                self._record(MessageKind.ACC_OPERAND, home,
                             local_cluster, line, count)
        self.movement_bytes += moved
        return seg_totals if seg_ends is not None else total

    def _acp_elem_walk(self, addr_list, local_cluster: int, is_write: bool,
                       elem_bytes: int, counts: Dict[int, int],
                       conv: Dict[int, int], total: int, n_l3: int,
                       moved: int):
        """Program-order element walk for :meth:`accel_elem_access_batch`
        with same-line run collapsing: after the first access of a run of
        consecutive same-line addresses the line is the ACP's resident MRU
        line, so the remaining ``k-1`` accesses are guaranteed hits with
        no L3 side — accounted in bulk via :meth:`Cache.touch_resident`
        and ``k-1``-scaled arithmetic, bit-identical to the scalar loop.
        """
        m = self.machine
        line = self._line
        freq = m.core.freq_ghz
        l3 = self.l3
        slices = l3.slices
        stripe = l3.stripe_bytes
        ncl = l3.num_clusters
        acps = self.acps
        lat_of = self.traffic.latency_of
        bank_lat = m.l3_bank_latency
        shift = acps[0].line_shift
        # same line => same home only when stripes are line-aligned
        collapse = stripe % (1 << shift) == 0
        n = len(addr_list)
        i = 0
        while i < n:
            addr = addr_list[i]
            j = i + 1
            if collapse:
                ln = addr >> shift
                while j < n and addr_list[j] >> shift == ln:
                    j += 1
            k = j - i
            home = (addr // stripe) % ncl
            seen = counts.get(home)
            if seen is None:
                counts[home] = k
                conv[home] = _ps_to_cycles_int(
                    lat_of(local_cluster, home, 0)
                    + (lat_of(local_cluster, home, elem_bytes)
                       if is_write
                       else lat_of(home, local_cluster, elem_bytes)),
                    freq,
                )
            else:
                counts[home] = seen + k
            if home != local_cluster:
                moved += k * elem_bytes
            total += k * (1 + conv[home])
            out = acps[home].access(addr, is_write)
            if k > 1:
                acps[home].touch_resident(addr, is_write, k - 1)
            ev = out.evicted
            if ev is not None and ev[1]:
                # dirty line retires into the local bank
                n_l3 += 1
                evicted = l3.fill(ev[0] * line, dirty=True)
                if evicted and evicted[1]:
                    self._writeback_to_dram(home)
            i = j
            if out.hit:
                continue
            n_l3 += 1
            total += bank_lat
            out3 = slices[home].access(addr, is_write=False)
            ev3 = out3.evicted
            if ev3 is not None and ev3[1]:
                self._writeback_to_dram(home)
            if not out3.hit:
                total += self._dram_fill(home)
        return total, n_l3, moved

    def accel_elem_access_batch(self, local_cluster: int,
                                addrs: np.ndarray, is_write: bool,
                                elem_bytes: int,
                                seg_ends: Optional[np.ndarray] = None):
        """Element-granular near-data accesses for a chunk (see
        :meth:`accel_elem_access`); returns total latency cycles.

        With ``seg_ends`` (ascending exclusive end offsets into
        ``addrs``) the call covers several coalesced chunks at once and
        returns per-segment latency subtotals — identical state
        transitions and pooled accounting as per-segment calls.
        """
        n = len(addrs)
        if n == 0:
            return 0 if seg_ends is None else [0] * len(seg_ends)
        m = self.machine
        line = self._line
        freq = m.core.freq_ghz
        l3 = self.l3
        stripe = l3.stripe_bytes
        ncl = l3.num_clusters
        acps = self.acps
        lat_of = self.traffic.latency_of
        bank_lat = m.l3_bank_latency
        counts: Dict[int, int] = {}
        conv: Dict[int, int] = {}
        n_l3 = 0  # miss-side bank reads + dirty ACP retires
        total = 0
        moved = 0
        seg_totals: List[int] = []
        pool = self._open_dram_pool()
        try:
            if seg_ends is not None and n >= _SEG_VEC_MIN:
                # per-home grouped walk (see the vec branch below for the
                # identity argument: an ACP and its victims/misses only
                # touch the home cluster's L3 slice), materializing
                # per-access latencies so prefix sums recover the exact
                # per-segment subtotals of the scalar walk
                homes = (addrs // stripe) % ncl
                lat_arr = np.zeros(n, dtype=np.int64)
                uniq, first = np.unique(homes, return_index=True)
                for home in uniq[np.argsort(first)].tolist():
                    sel = np.flatnonzero(homes == home)
                    k = len(sel)
                    counts[home] = k
                    conv[home] = _ps_to_cycles_int(
                        lat_of(local_cluster, home, 0)
                        + (lat_of(local_cluster, home, elem_bytes)
                           if is_write
                           else lat_of(home, local_cluster, elem_bytes)),
                        freq,
                    )
                    if home != local_cluster:
                        moved += k * elem_bytes
                    acp = acps[home]
                    sel_addrs = addrs[sel]
                    hit, vline, vdirty = acp.access_batch(
                        sel_addrs >> acp.line_shift,
                        np.full(k, is_write, dtype=bool),
                    )
                    miss_pos = np.flatnonzero(~hit)
                    n_l3 += int(vdirty.sum()) + len(miss_pos)
                    lat_arr[sel] = 1 + conv[home]
                    if len(miss_pos):
                        slc = l3.slices[home]
                        extra = np.full(len(miss_pos), bank_lat,
                                        dtype=np.int64)
                        for t, (addr, vd, vl) in enumerate(zip(
                                sel_addrs[miss_pos].tolist(),
                                vdirty[miss_pos].tolist(),
                                vline[miss_pos].tolist())):
                            if vd:
                                evicted = l3.fill(vl * line, dirty=True)
                                if evicted and evicted[1]:
                                    self._writeback_to_dram(home)
                            out3 = slc.access(addr, is_write=False)
                            ev3 = out3.evicted
                            if ev3 is not None and ev3[1]:
                                self._writeback_to_dram(home)
                            if not out3.hit:
                                extra[t] += self._dram_fill(home)
                        lat_arr[sel[miss_pos]] += extra
                csum = np.concatenate(([0], np.cumsum(lat_arr)))
                bounds = np.concatenate(
                    ([0], np.asarray(seg_ends, dtype=np.int64))
                )
                seg_totals = np.diff(csum[bounds]).tolist()
            elif seg_ends is not None:
                prev_total = 0
                pos = 0
                for end in (seg_ends.tolist()
                            if isinstance(seg_ends, np.ndarray)
                            else seg_ends):
                    end = int(end)
                    total, n_l3, moved = self._acp_elem_walk(
                        addrs[pos:end].tolist(), local_cluster, is_write,
                        elem_bytes, counts, conv, total, n_l3, moved,
                    )
                    seg_totals.append(total - prev_total)
                    prev_total = total
                    pos = end
            elif n >= _ACCEL_BATCH_VEC_MIN and vec_path_enabled():
                # group by home ACP: an ACP only caches addresses of its
                # own stripe, so its victims retire into the same home's
                # L3 slice — per-home groups never interleave L3 state,
                # and the walk is bit-identical to the scalar loop.
                # Phase A advances the ACP vectorized; Phase B visits
                # only ACP misses (the L3/DRAM side) in program order.
                homes = (addrs // stripe) % ncl
                uniq, first = np.unique(homes, return_index=True)
                for home in uniq[np.argsort(first)].tolist():
                    sel = np.flatnonzero(homes == home)
                    k = len(sel)
                    counts[home] = k
                    conv[home] = _ps_to_cycles_int(
                        lat_of(local_cluster, home, 0)
                        + (lat_of(local_cluster, home, elem_bytes)
                           if is_write
                           else lat_of(home, local_cluster, elem_bytes)),
                        freq,
                    )
                    if home != local_cluster:
                        moved += k * elem_bytes
                    total += k * (1 + conv[home])
                    acp = acps[home]
                    sel_addrs = addrs[sel]
                    hit, vline, vdirty = acp.access_batch(
                        sel_addrs >> acp.line_shift,
                        np.full(k, is_write, dtype=bool),
                    )
                    miss_pos = np.flatnonzero(~hit)
                    n_l3 += int(vdirty.sum()) + len(miss_pos)
                    total += bank_lat * len(miss_pos)
                    for j, addr, vd, vl in zip(
                            miss_pos.tolist(),
                            sel_addrs[miss_pos].tolist(),
                            vdirty[miss_pos].tolist(),
                            vline[miss_pos].tolist()):
                        if vd:
                            evicted = l3.fill(vl * line, dirty=True)
                            if evicted and evicted[1]:
                                self._writeback_to_dram(home)
                        out3 = l3.access(addr, is_write=False)
                        ev3 = out3.evicted
                        if ev3 is not None and ev3[1]:
                            self._writeback_to_dram(home)
                        if not out3.hit:
                            total += self._dram_fill(home)
            else:
                total, n_l3, moved = self._acp_elem_walk(
                    addrs.tolist(), local_cluster, is_write, elem_bytes,
                    counts, conv, total, n_l3, moved,
                )
        finally:
            if pool is not None:
                self._flush_dram_pool(pool)
        self._charge("access_unit", "acp_access", n)
        if n_l3:
            self._charge("l3", "l3_access", n_l3)
        for home, count in counts.items():
            self._record(MessageKind.ACC_HANDSHAKE, local_cluster, home,
                         0, count)
            if is_write:
                self._record(MessageKind.ACC_OPERAND, local_cluster,
                             home, elem_bytes, count)
            else:
                self._record(MessageKind.ACC_OPERAND, home,
                             local_cluster, elem_bytes, count)
        self.movement_bytes += moved
        return seg_totals if seg_ends is not None else total

    def l3_demand_batch(self, from_node: int,
                        as_accel: bool = False) -> "L3DemandWindow":
        """Open a deferred-accounting window over repeated
        :meth:`l3_demand` calls from one node (Mono-CA private-cache
        misses). Call :meth:`L3DemandWindow.flush` when done."""
        return L3DemandWindow(self, from_node, as_accel)

    # ------------------------------------------------------------------
    # flushes (coherence transitions)
    # ------------------------------------------------------------------
    def flush_host_range(self, base: int, size: int) -> int:
        """Flush [base, base+size) from L1+L2; returns dirty lines."""
        dirty = self.l1.invalidate_range(base, size)
        dirty += self.l2.invalidate_range(base, size)
        # dirty lines stream down to their home L3 slices
        if dirty:
            self.energy.charge("l3", "l3_access", dirty)
        self.movement_bytes += dirty * self._line
        return dirty

    def flush_accel_range(self, cluster: Optional[int], base: int,
                          size: int) -> int:
        if cluster is None:
            return 0
        dirty = self.acps[cluster].invalidate_range(base, size)
        self.movement_bytes += dirty * self._line
        return dirty

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> AccessStats:
        return AccessStats(
            l1=self.l1.accesses,
            l2=self.l2.accesses,
            l3=self.l3.accesses,
            acp=sum(a.accesses for a in self.acps),
            dram=self.dram.accesses,
            prefetches=self._stats_prefetches,
        )

    def record_obs(self) -> None:
        """Publish this hierarchy's lifetime totals into the process
        observability registry. Called once per simulation run (the
        per-access hot paths stay instrumentation-free)."""
        s = self.stats()
        OBS.inc("mem.l1_accesses", s.l1)
        OBS.inc("mem.l2_accesses", s.l2)
        OBS.inc("mem.l3_accesses", s.l3)
        OBS.inc("mem.acp_accesses", s.acp)
        OBS.inc("mem.dram_accesses", s.dram)
        OBS.inc("mem.prefetches", s.prefetches)
        OBS.inc("mem.movement_bytes", self.movement_bytes)


class _DramPool:
    """Deferred rare-path accounting counters, open only while a batch
    replay method runs: DRAM fills/writebacks per cluster, plus the host
    path's L1->L2 and L2->L3 dirty writebacks."""

    __slots__ = ("fills", "wbs", "fill_lat", "l2_wbs", "l3_wbs")

    def __init__(self):
        self.fills: Dict[int, int] = {}
        self.wbs: Dict[int, int] = {}
        self.fill_lat: Dict[int, int] = {}
        self.l2_wbs = 0
        self.l3_wbs: Dict[int, int] = {}


class L3DemandWindow:
    """Deferred accounting over repeated :meth:`MemoryHierarchy.l3_demand`
    calls from one mesh node.

    Cache/DRAM state still advances per access in program order; only the
    per-access energy charge, the two NoC records and the movement bytes
    are pooled per home cluster and flushed once. The request/fill
    latency conversion is memoized per cluster (the mesh is static).
    """

    __slots__ = ("hier", "from_node", "kind", "_counts", "_conv", "_pool")

    def __init__(self, hier: MemoryHierarchy, from_node: int,
                 as_accel: bool):
        self.hier = hier
        self.from_node = from_node
        self.kind = (MessageKind.ACC_OPERAND if as_accel
                     else MessageKind.CACHE_FILL)
        self._counts: Dict[int, int] = {}
        self._conv: Dict[int, int] = {}
        self._pool = hier._open_dram_pool()

    def access(self, addr: int) -> int:
        """One demand access; returns latency cycles (as l3_demand)."""
        h = self.hier
        cluster = h.l3.home_cluster(addr)
        seen = self._counts.get(cluster)
        if seen is None:
            self._counts[cluster] = 1
            self._conv[cluster] = _ps_to_cycles_int(
                h.traffic.latency_of(self.from_node, cluster, 0)
                + h.traffic.latency_of(cluster, self.from_node, h._line),
                h.machine.core.freq_ghz,
            )
        else:
            self._counts[cluster] = seen + 1
        latency = h.machine.l3.latency_cycles + self._conv[cluster]
        out3 = h.l3.access(addr, is_write=False)
        ev = out3.evicted
        if ev is not None and ev[1]:
            h._writeback_to_dram(cluster)
        if not out3.hit:
            latency += h._dram_fill(cluster)
        return latency

    def flush(self) -> None:
        """Charge the pooled energy/NoC/movement accounting."""
        h = self.hier
        if self._pool is not None:
            h._flush_dram_pool(self._pool)
            self._pool = None
        total = 0
        for cluster, count in self._counts.items():
            total += count
            h._charge("l3", "l3_access", count)
            h._record(MessageKind.CACHE_REQ, self.from_node,
                      cluster, 0, count)
            h._record(self.kind, cluster, self.from_node,
                      h._line, count)
        h.movement_bytes += total * h._line
        self._counts.clear()
        self._conv.clear()


def _ps_to_cycles_int(ps: int, freq_ghz: float) -> int:
    return int(round(ps_to_cycles(ps, freq_ghz)))

"""Memory hierarchy: caches, NUCA L3, DRAM, slab allocator, coherence.

This package models the Table III hierarchy. Caches track tags and dirty
state only — functional correctness of the program is validated by the IR
interpreter; the cache model exists to produce the latency, energy and
data-movement statistics the paper evaluates.
"""

from .cache import Cache, AccessOutcome
from .prefetch import StridePrefetcher
from .nuca import NucaL3
from .dram import Dram
from .slab import SlabAllocator, Allocation
from .hierarchy import MemoryHierarchy, AccessStats
from .coherence import CoherenceManager, Domain

__all__ = [
    "Cache",
    "AccessOutcome",
    "StridePrefetcher",
    "NucaL3",
    "Dram",
    "SlabAllocator",
    "Allocation",
    "MemoryHierarchy",
    "AccessStats",
    "CoherenceManager",
    "Domain",
]

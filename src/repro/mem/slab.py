"""Slab allocator for accelerator-visible memory objects (paper §IV-D).

The paper maps "a large contiguous memory space for accelerator-accessible
data structures that is managed with a slab allocator", so accelerators
deal in (object-id, offset) pairs and translations are per-object rather
than per-page. This allocator hands out page-aligned, non-overlapping
extents inside one contiguous arena and supports free/reuse via size-class
free lists (the "slabs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AllocationError
from ..params import PAGE_BYTES

#: arena base: away from 0 so "address 0" bugs are loud
DEFAULT_ARENA_BASE = 0x1000_0000


def _round_up(value: int, granularity: int) -> int:
    return (value + granularity - 1) // granularity * granularity


@dataclass(frozen=True)
class Allocation:
    """One allocated memory object extent."""

    obj_id: int
    name: str
    base: int
    size: int
    align: int = PAGE_BYTES

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class SlabAllocator:
    """Page-granular allocator over a contiguous accelerator arena."""

    def __init__(self, arena_base: int = DEFAULT_ARENA_BASE,
                 arena_size: int = 1 << 30):
        if arena_base % PAGE_BYTES != 0:
            raise AllocationError(f"arena base not page aligned: {arena_base:#x}")
        self.arena_base = arena_base
        self.arena_size = arena_size
        self._bump = arena_base
        self._live: Dict[int, Allocation] = {}
        self._by_name: Dict[str, int] = {}
        self._free_lists: Dict[int, List[int]] = {}  # size -> bases
        self._next_id = 0
        self.total_allocs = 0
        self.total_frees = 0

    def allocate(self, name: str, size: int,
                 align: int = PAGE_BYTES) -> Allocation:
        """Allocate ``size`` bytes (rounded to pages) for object ``name``.

        ``align`` lets the runtime place each object at an L3 stripe
        boundary so distinct data structures anchor to distinct home
        clusters (the basis of distributed placement).
        """
        if size <= 0:
            raise AllocationError(f"object {name!r}: size must be > 0, got {size}")
        if name in self._by_name:
            raise AllocationError(f"object {name!r} already allocated")
        if align % PAGE_BYTES != 0:
            raise AllocationError(f"align must be page-multiple: {align}")
        slab_size = _round_up(size, PAGE_BYTES)
        free = self._free_lists.get((slab_size, align))
        if free:
            base = free.pop()
        else:
            base = _round_up(self._bump, align)
            if base + slab_size > self.arena_base + self.arena_size:
                raise AllocationError(
                    f"arena exhausted allocating {slab_size} bytes for {name!r}"
                )
            self._bump = base + slab_size
        alloc = Allocation(self._next_id, name, base, slab_size, align)
        self._next_id += 1
        self._live[alloc.obj_id] = alloc
        self._by_name[name] = alloc.obj_id
        self.total_allocs += 1
        return alloc

    def free(self, obj_id: int) -> None:
        alloc = self._live.pop(obj_id, None)
        if alloc is None:
            raise AllocationError(f"free of unknown object id {obj_id}")
        del self._by_name[alloc.name]
        self._free_lists.setdefault(
            (alloc.size, alloc.align), []
        ).append(alloc.base)
        self.total_frees += 1

    def get(self, obj_id: int) -> Allocation:
        try:
            return self._live[obj_id]
        except KeyError:
            raise AllocationError(f"unknown object id {obj_id}") from None

    def by_name(self, name: str) -> Allocation:
        try:
            return self._live[self._by_name[name]]
        except KeyError:
            raise AllocationError(f"unknown object {name!r}") from None

    def translate(self, obj_id: int, offset: int) -> int:
        """(object-id, byte offset) -> physical address."""
        alloc = self.get(obj_id)
        if not (0 <= offset < alloc.size):
            raise AllocationError(
                f"offset {offset} out of bounds for {alloc.name!r} "
                f"(size {alloc.size})"
            )
        return alloc.base + offset

    def find(self, addr: int) -> Optional[Allocation]:
        """Reverse lookup: which live object contains ``addr``?"""
        for alloc in self._live.values():
            if alloc.contains(addr):
                return alloc
        return None

    def live_allocations(self) -> List[Allocation]:
        return list(self._live.values())

"""Static-NUCA L3: per-cluster slices x banks on the mesh.

Table III ships 8 clusters x 4 banks; the geometry is fully machine-
described, so any cluster/bank count a document derives works here.

Address mapping is *static* and range-based: contiguous slice-sized
stripes of the address space map round-robin to clusters, and lines
interleave across the banks inside a cluster. A data structure no larger
than one slice therefore lives wholly in one cluster — this is what lets
the runtime *anchor* each memory object to a home bank (paper §IV-D:
"accesses to data structures are localized to the home bank where they
are anchored"); larger structures stripe across several clusters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..params import CacheParams, MachineParams
from .cache import AccessOutcome, Cache


class NucaL3:
    """The shared L3 as independent per-cluster slices."""

    def __init__(self, machine: MachineParams):
        self.machine = machine
        self.num_clusters = machine.l3_clusters
        self.banks_per_cluster = machine.l3_banks_per_cluster
        slice_bytes = machine.l3.size_bytes // self.num_clusters
        slice_params = CacheParams(
            size_bytes=slice_bytes,
            ways=machine.l3.ways,
            latency_cycles=machine.l3.latency_cycles,
            mshrs=machine.l3.mshrs,
            line_bytes=machine.l3.line_bytes,
        )
        self.slices: List[Cache] = [
            Cache(slice_params, name=f"l3c{i}") for i in range(self.num_clusters)
        ]
        #: contiguous bytes mapped to one cluster before striping wraps
        self.stripe_bytes = slice_bytes
        self._line = machine.l3.line_bytes

    # -- static address mapping ------------------------------------------------
    def home_cluster(self, addr: int) -> int:
        """Cluster whose slice caches this address (range-striped)."""
        return (addr // self.stripe_bytes) % self.num_clusters

    def bank(self, addr: int) -> int:
        """Bank within the home cluster (line-interleaved)."""
        return (addr // self._line) % self.banks_per_cluster

    def location(self, addr: int) -> Tuple[int, int]:
        return self.home_cluster(addr), self.bank(addr)

    # -- accesses ---------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Demand access routed to the home slice."""
        return self.slices[self.home_cluster(addr)].access(addr, is_write)

    def fill(self, addr: int, dirty: bool = False,
             is_prefetch: bool = False) -> Optional[Tuple[int, bool]]:
        return self.slices[self.home_cluster(addr)].fill(
            addr, dirty=dirty, is_prefetch=is_prefetch
        )

    def probe(self, addr: int) -> bool:
        return self.slices[self.home_cluster(addr)].probe(addr)

    def invalidate_range(self, base: int, size: int) -> int:
        """Invalidate a range across all slices; returns dirty writebacks.

        For ranges larger than total residency, each slice walks its own
        resident tags (O(occupancy)) instead of probing every line.
        """
        if size <= 0:
            return 0
        line = self._line
        aligned = (base // line) * line
        span_lines = -(-(base + size - aligned) // line)
        if span_lines > sum(s.occupancy for s in self.slices):
            return sum(
                s.invalidate_range(base, size) for s in self.slices
            )
        dirty = 0
        for line_base in range(aligned, base + size, line):
            cluster = self.home_cluster(line_base)
            if self.slices[cluster].invalidate(line_base):
                dirty += 1
        return dirty

    # -- statistics ---------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return sum(s.accesses for s in self.slices)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.slices)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.slices)

    @property
    def writebacks(self) -> int:
        return sum(s.writebacks for s in self.slices)

    @property
    def latency_cycles(self) -> int:
        return self.machine.l3.latency_cycles

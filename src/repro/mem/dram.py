"""LPDDR main-memory model: fixed latency + bandwidth + energy accounting.

Row-buffer effects are folded into the average access latency; the paper's
comparisons are dominated by *whether* an access leaves the chip, not by
DRAM page policy.
"""

from __future__ import annotations

from typing import Optional

from ..energy import EnergyLedger
from ..params import CACHE_LINE_BYTES, DramParams


class Dram:
    """Accounting model of the off-chip LPDDR channel."""

    def __init__(self, params: DramParams,
                 energy: Optional[EnergyLedger] = None):
        self.params = params
        self.energy = energy
        self.reads = 0
        self.writes = 0

    def access(self, is_write: bool, lines: int = 1) -> int:
        """Record ``lines`` line transfers; returns latency in cycles.

        Latency covers the first line; subsequent lines of a burst stream
        at the channel bandwidth.
        """
        if lines < 1:
            raise ValueError(f"lines must be >= 1: {lines}")
        if is_write:
            self.writes += lines
        else:
            self.reads += lines
        if self.energy is not None:
            self.energy.charge("dram", "dram_line_access", lines)
        burst_cycles = int(
            (lines - 1) * CACHE_LINE_BYTES / self.params.bandwidth_bytes_per_cycle
        )
        return self.params.latency_cycles + burst_cycles

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * CACHE_LINE_BYTES

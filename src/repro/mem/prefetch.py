"""L2 stride prefetcher (Table III: "stride prefetcher" at L2).

Classic reference-prediction-table design: per-stream (PC surrogate)
entries track the last address and last stride; after ``confirm``
consecutive repeats of the same stride the prefetcher issues ``degree``
prefetches ahead of the demand stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(slots=True)
class _Entry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference prediction table keyed by an access-stream id."""

    def __init__(self, table_size: int = 64, confirm: int = 2,
                 degree: int = 2, line_bytes: int = 64):
        if table_size < 1:
            raise ValueError("table_size must be >= 1")
        self.table_size = table_size
        self.confirm = confirm
        self.degree = degree
        self.line_bytes = line_bytes
        self._table: Dict[int, _Entry] = {}
        self.issued = 0

    def observe(self, stream_id: int, addr: int) -> List[int]:
        """Record a demand access; returns line-aligned prefetch addresses."""
        entry = self._table.get(stream_id)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))  # FIFO victim
            self._table[stream_id] = _Entry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.confirm + 1)
        else:
            entry.stride = stride
            entry.confidence = 1 if stride != 0 else 0
        entry.last_addr = addr
        if entry.confidence < self.confirm or entry.stride == 0:
            return []
        prefetches = []
        seen_lines = {addr // self.line_bytes}
        for k in range(1, self.degree + 1):
            target = addr + k * entry.stride
            if target < 0:
                break
            line = target // self.line_bytes
            if line not in seen_lines:
                seen_lines.add(line)
                prefetches.append(line * self.line_bytes)
        self.issued += len(prefetches)
        return prefetches

    def reset(self) -> None:
        self._table.clear()

"""Set-associative write-back cache with true-LRU replacement.

The cache tracks presence and dirtiness of lines, not data values. LRU is
implemented with ordered dictionaries (oldest entry first), which makes a
touch an O(1) delete+reinsert.

Addresses are byte addresses; the cache works internally on line numbers
(``addr >> line_shift``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..params import CacheParams


@dataclass
class AccessOutcome:
    """Result of a cache lookup."""

    hit: bool
    #: line evicted to make room (line_number, was_dirty), if any
    evicted: Optional[Tuple[int, bool]] = None


class Cache:
    """One level of set-associative cache."""

    def __init__(self, params: CacheParams, name: str = "cache"):
        self.params = params
        self.name = name
        line = params.line_bytes
        self.line_shift = line.bit_length() - 1
        if (1 << self.line_shift) != line:
            raise ValueError(f"line size must be a power of two: {line}")
        self.num_sets = params.num_sets
        self.ways = params.ways
        # each set: {tag: dirty}, insertion order == LRU order (oldest first)
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        # statistics
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0
        self.invalidations = 0

    # -- address helpers ----------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr >> self.line_shift

    def _index(self, line: int) -> Tuple[int, int]:
        return line % self.num_sets, line // self.num_sets

    # -- operations ----------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Tag check without any state change."""
        line = addr >> self.line_shift
        return (line // self.num_sets) in self._sets[line % self.num_sets]

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Demand access. On miss the line is allocated (write-allocate).

        Returns the outcome, including any dirty victim that the caller
        must write back to the next level.
        """
        self.accesses += 1
        # line_of/_index inlined: this is the hottest method in the
        # simulator (millions of calls per matrix cell)
        line = addr >> self.line_shift
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        cset = self._sets[set_idx]
        if tag in cset:
            self.hits += 1
            dirty = cset.pop(tag) or is_write
            cset[tag] = dirty  # move to MRU position
            return AccessOutcome(hit=True)
        self.misses += 1
        evicted = self._insert(set_idx, tag, dirty=is_write)
        return AccessOutcome(hit=False, evicted=evicted)

    def touch_resident(self, addr: int, make_dirty: bool,
                       count: int) -> None:
        """Bulk-account ``count`` hits to a line known resident and MRU.

        The batched replay path collapses a run of back-to-back accesses
        to one line into the first (full) access plus this bulk update;
        the line was just accessed, so it is resident at the MRU position
        and each collapsed access is a guaranteed hit. Updating the dirty
        bit in place preserves LRU order exactly like the scalar
        pop-reinsert of an MRU entry.
        """
        if count <= 0:
            return
        set_idx, tag = self._index(self.line_of(addr))
        cset = self._sets[set_idx]
        if tag not in cset:
            raise KeyError(
                f"touch_resident on absent line {addr:#x} in {self.name}"
            )
        self.accesses += count
        self.hits += count
        if make_dirty and not cset[tag]:
            cset[tag] = True

    def fill(self, addr: int, dirty: bool = False,
             is_prefetch: bool = False) -> Optional[Tuple[int, bool]]:
        """Install a line without counting a demand access (e.g. prefetch)."""
        line = self.line_of(addr)
        set_idx, tag = self._index(line)
        cset = self._sets[set_idx]
        if tag in cset:
            if dirty:
                cset.pop(tag)
                cset[tag] = True
            return None
        if is_prefetch:
            self.prefetch_fills += 1
        return self._insert(set_idx, tag, dirty)

    def _insert(self, set_idx: int, tag: int,
                dirty: bool) -> Optional[Tuple[int, bool]]:
        cset = self._sets[set_idx]
        evicted = None
        if len(cset) >= self.ways:
            victim_tag = next(iter(cset))  # oldest == LRU
            victim_dirty = cset.pop(victim_tag)
            if victim_dirty:
                self.writebacks += 1
            victim_line = victim_tag * self.num_sets + set_idx
            evicted = (victim_line, victim_dirty)
        cset[tag] = dirty
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop a line; returns True if it was present and dirty."""
        set_idx, tag = self._index(self.line_of(addr))
        cset = self._sets[set_idx]
        if tag in cset:
            self.invalidations += 1
            dirty = cset.pop(tag)
            if dirty:
                self.writebacks += 1
            return dirty
        return False

    def invalidate_range(self, base: int, size: int) -> int:
        """Invalidate all lines overlapping [base, base+size); returns the
        number of dirty lines written back.

        When the range dwarfs what the cache can even hold (e.g. flushing
        a multi-MB object through a 1 KB ACP), probing every line in the
        range is O(range); instead walk the resident tags and drop the
        ones inside the range, which is O(occupancy).
        """
        first = self.line_of(base)
        last = self.line_of(base + max(size, 1) - 1)
        dirty_count = 0
        if (last - first + 1) > self.occupancy:
            for line in self.resident_lines():
                if first <= line <= last:
                    if self.invalidate(line << self.line_shift):
                        dirty_count += 1
            return dirty_count
        for line in range(first, last + 1):
            addr = line << self.line_shift
            if self.invalidate(addr):
                dirty_count += 1
        return dirty_count

    # -- introspection --------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> List[int]:
        out = []
        for set_idx, cset in enumerate(self._sets):
            out.extend(tag * self.num_sets + set_idx for tag in cset)
        return out

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name} {self.params.size_bytes // 1024}KB "
            f"{self.ways}-way hits={self.hits} misses={self.misses}>"
        )

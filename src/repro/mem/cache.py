"""Set-associative write-back cache with true-LRU replacement.

The cache tracks presence and dirtiness of lines, not data values. LRU is
implemented with ordered dictionaries (oldest entry first), which makes a
touch an O(1) delete+reinsert.

Addresses are byte addresses; the cache works internally on line numbers
(``addr >> line_shift``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..params import CacheParams


@dataclass
class AccessOutcome:
    """Result of a cache lookup."""

    hit: bool
    #: line evicted to make room (line_number, was_dirty), if any
    evicted: Optional[Tuple[int, bool]] = None


#: shared outcomes for the two allocation-free cases — `access` runs
#: millions of times per matrix cell and callers never mutate results
_HIT = AccessOutcome(hit=True)
_MISS_CLEAN = AccessOutcome(hit=False)

#: absent-marker for the single-lookup pop in `access` (dirty bits are
#: bools, so any non-bool sentinel is unambiguous)
_ABSENT = object()


class Cache:
    """One level of set-associative cache."""

    # slots: `access` runs millions of times per matrix cell and touches
    # half a dozen attributes per call
    __slots__ = ("params", "name", "line_shift", "num_sets", "ways",
                 "_sets", "accesses", "hits", "misses", "writebacks",
                 "prefetch_fills", "invalidations")

    def __init__(self, params: CacheParams, name: str = "cache"):
        self.params = params
        self.name = name
        line = params.line_bytes
        self.line_shift = line.bit_length() - 1
        if (1 << self.line_shift) != line:
            raise ValueError(f"line size must be a power of two: {line}")
        self.num_sets = params.num_sets
        self.ways = params.ways
        # each set: {tag: dirty}, insertion order == LRU order (oldest first)
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        # statistics
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0
        self.invalidations = 0

    # -- address helpers ----------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr >> self.line_shift

    def _index(self, line: int) -> Tuple[int, int]:
        return line % self.num_sets, line // self.num_sets

    # -- operations ----------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Tag check without any state change."""
        line = addr >> self.line_shift
        return (line // self.num_sets) in self._sets[line % self.num_sets]

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Demand access. On miss the line is allocated (write-allocate).

        Returns the outcome, including any dirty victim that the caller
        must write back to the next level.
        """
        self.accesses += 1
        # line_of/_index inlined: this is the hottest method in the
        # simulator (millions of calls per matrix cell)
        line = addr >> self.line_shift
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        cset = self._sets[set_idx]
        dirty = cset.pop(tag, _ABSENT)
        if dirty is not _ABSENT:
            self.hits += 1
            cset[tag] = dirty or is_write  # move to MRU position
            return _HIT
        self.misses += 1
        # _insert inlined (same hot-path rationale)
        if len(cset) >= self.ways:
            victim_tag = next(iter(cset))  # oldest == LRU
            victim_dirty = cset.pop(victim_tag)
            if victim_dirty:
                self.writebacks += 1
            cset[tag] = is_write
            return AccessOutcome(
                hit=False,
                evicted=(victim_tag * self.num_sets + set_idx,
                         victim_dirty),
            )
        cset[tag] = is_write
        return _MISS_CLEAN

    def touch_resident(self, addr: int, make_dirty: bool,
                       count: int) -> None:
        """Bulk-account ``count`` hits to a line known resident and MRU.

        The batched replay path collapses a run of back-to-back accesses
        to one line into the first (full) access plus this bulk update;
        the line was just accessed, so it is resident at the MRU position
        and each collapsed access is a guaranteed hit. Updating the dirty
        bit in place preserves LRU order exactly like the scalar
        pop-reinsert of an MRU entry.
        """
        if count <= 0:
            return
        set_idx, tag = self._index(self.line_of(addr))
        cset = self._sets[set_idx]
        if tag not in cset:
            raise KeyError(
                f"touch_resident on absent line {addr:#x} in {self.name}"
            )
        self.accesses += count
        self.hits += count
        if make_dirty and not cset[tag]:
            cset[tag] = True

    def fill(self, addr: int, dirty: bool = False,
             is_prefetch: bool = False) -> Optional[Tuple[int, bool]]:
        """Install a line without counting a demand access (e.g. prefetch)."""
        line = self.line_of(addr)
        set_idx, tag = self._index(line)
        cset = self._sets[set_idx]
        if tag in cset:
            if dirty:
                cset.pop(tag)
                cset[tag] = True
            return None
        if is_prefetch:
            self.prefetch_fills += 1
        return self._insert(set_idx, tag, dirty)

    def _insert(self, set_idx: int, tag: int,
                dirty: bool) -> Optional[Tuple[int, bool]]:
        cset = self._sets[set_idx]
        evicted = None
        if len(cset) >= self.ways:
            victim_tag = next(iter(cset))  # oldest == LRU
            victim_dirty = cset.pop(victim_tag)
            if victim_dirty:
                self.writebacks += 1
            victim_line = victim_tag * self.num_sets + set_idx
            evicted = (victim_line, victim_dirty)
        cset[tag] = dirty
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop a line; returns True if it was present and dirty."""
        set_idx, tag = self._index(self.line_of(addr))
        cset = self._sets[set_idx]
        if tag in cset:
            self.invalidations += 1
            dirty = cset.pop(tag)
            if dirty:
                self.writebacks += 1
            return dirty
        return False

    def invalidate_range(self, base: int, size: int) -> int:
        """Invalidate all lines overlapping [base, base+size); returns the
        number of dirty lines written back.

        When the range dwarfs what the cache can even hold (e.g. flushing
        a multi-MB object through a 1 KB ACP), probing every line in the
        range is O(range); instead walk the resident tags and drop the
        ones inside the range, which is O(occupancy).
        """
        first = self.line_of(base)
        last = self.line_of(base + max(size, 1) - 1)
        dirty_count = 0
        if (last - first + 1) > self.occupancy:
            for line in self.resident_lines():
                if first <= line <= last:
                    if self.invalidate(line << self.line_shift):
                        dirty_count += 1
            return dirty_count
        for line in range(first, last + 1):
            addr = line << self.line_shift
            if self.invalidate(addr):
                dirty_count += 1
        return dirty_count

    # -- set-level vectorized walk (REPRO_VEC=1) ------------------------------
    #
    # The per-access LRU transition is stateful *within* a set but
    # independent *across* sets, so a batch of accesses can be advanced
    # in "waves": each wave takes the first still-pending access of
    # every set — all distinct sets, hence independent — and applies the
    # whole wave's transitions as numpy integer ops on a dense
    # [num_sets, ways] image of the tag/dirty state. Program order
    # within a set is preserved by construction (wave w serves each
    # set's w-th pending access), and the dense image round-trips
    # exactly through the ordered-dict representation, so the walk is
    # bit-identical to per-access `access()` calls — counters, LRU
    # order, dirty bits and victims alike.

    #: a batch whose busiest set concentrates more than this many
    #: accesses (and dominates the batch) degenerates into ~one access
    #: per wave; the scalar loop is faster there
    _WAVE_FALLBACK_COUNT = 32

    #: waves narrower than this pay more in per-wave numpy setup than
    #: the scalar loop costs; the batch walk switches to scalar for the
    #: tail once wave width drops below it (wave widths only shrink)
    _WAVE_MIN_VEC = 24

    def _export_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense [num_sets, ways] image of (tags, dirty).

        Valid entries are right-aligned with column order == LRU order
        (column ``ways-1`` is MRU); empty slots hold tag -1 on the left.
        Right-alignment makes the miss transition uniform: shifting left
        evicts column 0, which is the true LRU when the set is full and
        an empty slot otherwise.
        """
        tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        for set_idx, cset in enumerate(self._sets):
            k = len(cset)
            if k:
                tags[set_idx, self.ways - k:] = list(cset.keys())
                dirty[set_idx, self.ways - k:] = list(cset.values())
        return tags, dirty

    def _import_state(self, tags: np.ndarray, dirty: np.ndarray) -> None:
        """Rebuild the ordered-dict sets from a dense image."""
        sets = self._sets
        for set_idx in range(self.num_sets):
            row_tags = tags[set_idx]
            valid = row_tags != -1
            sets[set_idx] = dict(zip(
                row_tags[valid].tolist(), dirty[set_idx][valid].tolist()
            ))

    def access_batch(self, lines: np.ndarray, make_dirty: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance the cache state over a batch of line accesses.

        ``lines`` are line numbers (``addr >> line_shift``) in program
        order; ``make_dirty`` is the per-access dirty contribution (the
        hit/miss outcome and LRU movement never depend on it). Returns
        ``(hit, victim_line, victim_dirty)`` aligned with the inputs,
        with ``victim_line == -1`` where nothing was evicted. Counter
        updates (accesses/hits/misses/writebacks) match per-access
        ``access()`` calls exactly.
        """
        n = len(lines)
        hit = np.zeros(n, dtype=bool)
        victim_line = np.full(n, -1, dtype=np.int64)
        victim_dirty = np.zeros(n, dtype=bool)
        if n == 0:
            return hit, victim_line, victim_dirty
        set_idx = lines % self.num_sets
        new_tags = lines // self.num_sets
        per_set = np.bincount(set_idx, minlength=1)
        busiest = int(per_set.max())
        if busiest > self._WAVE_FALLBACK_COUNT and busiest * 8 > n:
            self._access_batch_scalar(lines, make_dirty, hit,
                                      victim_line, victim_dirty)
            return hit, victim_line, victim_dirty

        # stable sort by set groups each set's accesses in program
        # order; a second stable sort by within-group rank makes wave w
        # the contiguous block of every set's w-th access
        by_set = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[by_set]
        group_start = np.flatnonzero(np.concatenate(
            ([True], sorted_sets[1:] != sorted_sets[:-1])
        ))
        group_len = np.diff(np.concatenate((group_start, [n])))
        rank = np.arange(n, dtype=np.int64) - np.repeat(
            group_start, group_len
        )
        by_wave = by_set[np.argsort(rank, kind="stable")]
        wave_sizes = np.bincount(rank)
        if int(wave_sizes[0]) < self._WAVE_MIN_VEC:
            # even the widest wave is narrow: skip the dense image
            self._access_batch_scalar(lines, make_dirty, hit,
                                      victim_line, victim_dirty)
            return hit, victim_line, victim_dirty

        tags, dirty = self._export_state()
        ways = self.ways
        col = np.arange(ways, dtype=np.int64)[None, :]
        hits_total = 0
        wbs_total = 0
        n_vec = 0
        lo = 0
        for size in wave_sizes.tolist():
            if size < self._WAVE_MIN_VEC:
                break  # scalar tail below; wave widths never grow
            sel = by_wave[lo:lo + size]
            lo += size
            n_vec += size
            s = set_idx[sel]
            t = new_tags[sel]
            T = tags[s]
            D = dirty[s]
            match = T == t[:, None]
            h = match.any(axis=1)
            hit[sel] = h
            hits_total += int(h.sum())
            hw = np.where(h, np.argmax(match, axis=1), 0)
            old_dirty = D[np.arange(size), hw] & h
            miss = ~h
            vt = T[:, 0]
            vd = D[:, 0] & miss & (vt != -1)
            victim_line[sel] = np.where(vd, vt * self.num_sets + s, -1)
            victim_dirty[sel] = vd
            wbs_total += int(vd.sum())
            # permutation: drop the touched way (hit way, or column 0 on
            # a miss), shift the tail left, re-insert at MRU
            perm = np.where(col < hw[:, None], col,
                            np.minimum(col + 1, ways - 1))
            rows = np.arange(size)[:, None]
            T = T[rows, perm]
            D = D[rows, perm]
            T[:, ways - 1] = t
            D[:, ways - 1] = old_dirty | make_dirty[sel]
            tags[s] = T
            dirty[s] = D
        self.accesses += n_vec
        self.hits += hits_total
        self.misses += n_vec - hits_total
        self.writebacks += wbs_total
        self._import_state(tags, dirty)
        # the narrow tail runs scalar, rank-major: each set's remaining
        # accesses stay in program order, and sets are independent
        for i in by_wave[lo:].tolist():
            out = self.access(int(lines[i]) << self.line_shift,
                              bool(make_dirty[i]))
            hit[i] = out.hit
            if out.evicted is not None and out.evicted[1]:
                victim_line[i] = out.evicted[0]
                victim_dirty[i] = True
        return hit, victim_line, victim_dirty

    def _access_batch_scalar(self, lines: np.ndarray,
                             make_dirty: np.ndarray, hit: np.ndarray,
                             victim_line: np.ndarray,
                             victim_dirty: np.ndarray) -> None:
        """Program-order scalar walk with same-line run collapsing.

        The scalar fallbacks fire exactly when accesses concentrate on
        few sets — which in practice means long back-to-back runs to
        the *same line* (an accumulator, a hot stride). After the run's
        first access the line is resident at MRU, so the rest are
        guaranteed hits whose pop/reinsert is a no-op — accounted in
        bulk, like :meth:`touch_resident`. The per-access logic of
        :meth:`access`/:meth:`_insert` is inlined with the counters kept
        in locals and flushed once (bit-identical: integer sums).
        """
        n = len(lines)
        nsets = self.num_sets
        ways = self.ways
        sets_ = self._sets
        # numpy run detection: a "run" is a maximal stretch of the same
        # line; only run heads need the full lookup, the rest are
        # guaranteed MRU hits (their only effect is the dirty-OR below)
        is_head = np.empty(n, dtype=bool)
        is_head[0] = True
        np.not_equal(lines[1:], lines[:-1], out=is_head[1:])
        heads = np.flatnonzero(is_head)
        nruns = len(heads)
        head_lines = lines[heads].tolist()
        head_dirty = make_dirty[heads].tolist()
        heads_list = heads.tolist()
        if nruns != n:
            np.logical_not(is_head, out=hit)  # non-heads: always hits
            bounds = np.concatenate((heads, [n]))
            rest_counts = (np.diff(bounds) - 1).tolist()
            csum = np.concatenate(
                ([0], np.cumsum(make_dirty, dtype=np.int64))
            )
            rest_any = (np.diff(csum[bounds])
                        - np.asarray(head_dirty, dtype=np.int64)
                        > 0).tolist()
        else:
            rest_counts = rest_any = None
        acc = nhit = nmiss = nwb = 0
        for r in range(nruns):
            i = heads_list[r]
            ln = head_lines[r]
            si = ln % nsets
            tag = ln // nsets
            cset = sets_[si]
            acc += 1
            d = cset.pop(tag, _ABSENT)
            if d is not _ABSENT:
                nhit += 1
                cset[tag] = d or head_dirty[r]  # move to MRU
                hit[i] = True
            else:
                nmiss += 1
                if len(cset) >= ways:
                    vtag = next(iter(cset))  # oldest == LRU
                    if cset.pop(vtag):
                        nwb += 1
                        victim_line[i] = vtag * nsets + si
                        victim_dirty[i] = True
                cset[tag] = head_dirty[r]
            if rest_counts is not None:
                rest = rest_counts[r]
                if rest:
                    acc += rest
                    nhit += rest
                    if rest_any[r] and not cset[tag]:
                        cset[tag] = True
        self.accesses += acc
        self.hits += nhit
        self.misses += nmiss
        self.writebacks += nwb

    # -- introspection --------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> List[int]:
        out = []
        for set_idx, cset in enumerate(self._sets):
            out.extend(tag * self.num_sets + set_idx for tag in cset)
        return out

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name} {self.params.size_bytes // 1024}KB "
            f"{self.ways}-way hits={self.hits} misses={self.misses}>"
        )

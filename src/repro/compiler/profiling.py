"""Hot-region profiling (paper §V-A-1).

The paper profiles on small *train* inputs to find code regions with high
dynamic instruction coverage; our kernels are those regions, and the
profiler measures their dynamic coverage against the host-side remainder
of the application (outer control, setup, I/O), yielding the %cc and %dc
columns of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..ir.interp import Interpreter
from ..ir.program import Kernel


@dataclass
class ProfileReport:
    """Dynamic coverage of an offload candidate."""

    kernel_insts: int
    kernel_accesses: int
    host_insts: int
    host_accesses: int
    inner_iterations: int

    @property
    def pct_code_coverage(self) -> float:
        """%cc: fraction of dynamic instructions inside the offload."""
        total = self.kernel_insts + self.host_insts
        return 100.0 * self.kernel_insts / total if total else 0.0

    @property
    def pct_data_coverage(self) -> float:
        """%dc: fraction of memory accesses inside the offload."""
        total = self.kernel_accesses + self.host_accesses
        return 100.0 * self.kernel_accesses / total if total else 0.0

    @property
    def hot(self) -> bool:
        """Profitability gate: offload only regions that dominate."""
        return self.pct_code_coverage >= 50.0


def profile_kernel(kernel: Kernel, arrays: Dict[str, np.ndarray],
                   scalars: Optional[Dict[str, float]] = None,
                   host_insts: int = 0,
                   host_accesses: int = 0) -> ProfileReport:
    """Run the kernel on a train input and report coverage.

    ``host_insts``/``host_accesses`` describe the application outside the
    kernel (workloads provide these from their drivers).
    """
    result = Interpreter().run(kernel, arrays, scalars)
    return ProfileReport(
        kernel_insts=result.counts.total_insts,
        kernel_accesses=result.counts.loads + result.counts.stores,
        host_insts=host_insts,
        host_accesses=host_accesses,
        inner_iterations=result.inner_iterations,
    )

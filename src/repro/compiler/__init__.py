"""Compiler support: the automated offload-extraction pipeline (Fig 6).

The paper implements LLVM passes; our equivalent consumes kernel IR and
runs the same pipeline: profiling -> DFG classification -> partitioning ->
access-node placement -> access specialization -> offload configuration
(microcode / CGRA mapping) emission.
"""

from .pipeline import CompiledOffload, CompileMode, compile_kernel
from .specialize import specialize_offload
from .codegen import generate_microcode
from .profiling import ProfileReport, profile_kernel

__all__ = [
    "CompiledOffload", "CompileMode", "compile_kernel",
    "specialize_offload",
    "generate_microcode",
    "ProfileReport", "profile_kernel",
]

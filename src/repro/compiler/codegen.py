"""Microcode generation for in-order accelerator partitions.

Walks one partition's DFG subgraph in topological order and emits the
per-iteration 64-bit microcode body: CONSUME/STEP for buffered reads,
ALU ops for compute nodes (plus the folded address-generation ops),
PRODUCE/CP_WRITE for outputs. The orchestrator (LOOP_BEGIN/LOOP_END)
wraps the body so each accelerator is self-contained in control
(paper §V: "each unit is self-contained in terms of control").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dfg.graph import Dfg
from ..dfg.node import AccessNode, AccessPattern, ComputeNode
from ..errors import MappingError
from ..accel.microcode import MicroInst, Opcode, assemble, opcode_for


def generate_microcode(dfg: Dfg, node_ids: Sequence[int],
                       access_ids: Dict[int, int],
                       obj_ids: Dict[str, int],
                       channel_inputs: Optional[Dict[int, int]] = None,
                       channel_outputs: Optional[Dict[int, int]] = None
                       ) -> bytes:
    """Emit the microcode image for one partition.

    ``node_ids`` — DFG nodes owned by the partition (any order).
    ``access_ids`` — access-node id -> configured access-id.
    ``obj_ids`` — object name -> runtime object id (cp_read/cp_write).
    ``channel_inputs`` — DFG node id (remote producer) -> access-id of the
    local channel buffer its value arrives on.
    ``channel_outputs`` — local DFG node id -> access-id of the channel
    its value must be produced onto for remote consumers.
    """
    channel_inputs = channel_inputs or {}
    channel_outputs = channel_outputs or {}
    owned = set(node_ids)
    regs: Dict[int, int] = {}
    insts: List[MicroInst] = [MicroInst(Opcode.LOOP_BEGIN)]
    next_reg = 1

    def reg_for(nid: int) -> int:
        nonlocal next_reg
        if nid not in regs:
            if next_reg > 255:
                raise MappingError("register file exhausted (255 regs)")
            regs[nid] = next_reg
            next_reg += 1
        return regs[nid]

    def operand_reg(edge_src: int) -> int:
        """Register holding a producer's value, consuming remote inputs."""
        if edge_src in regs:
            return regs[edge_src]
        if edge_src in channel_inputs:
            dst = reg_for(edge_src)
            acc = channel_inputs[edge_src]
            insts.append(MicroInst(Opcode.CONSUME, dst=dst, imm=acc))
            insts.append(MicroInst(Opcode.STEP, imm=acc))
            return dst
        raise MappingError(
            f"operand node {edge_src} neither local nor a channel input"
        )

    order = [nid for nid in dfg.topo_order() if nid in owned]
    for nid in order:
        node = dfg.nodes[nid]
        if isinstance(node, AccessNode):
            _emit_access(node, dfg, insts, regs, reg_for, operand_reg,
                         access_ids, obj_ids)
        elif isinstance(node, ComputeNode):
            srcs = [
                operand_reg(e.src) for e in dfg.predecessors(nid)
                if not e.is_predicate
            ]
            insts.append(MicroInst(
                opcode_for(node.op, node.op_class),
                dst=reg_for(nid),
                src1=srcs[0] if srcs else 0,
                src2=srcs[1] if len(srcs) > 1 else 0,
            ))
        else:  # pragma: no cover - only two node kinds exist
            raise MappingError(f"cannot emit node {node!r}")
        if nid in channel_outputs:
            acc = channel_outputs[nid]
            insts.append(MicroInst(
                Opcode.PRODUCE, src1=regs.get(nid, 0), imm=acc
            ))
            insts.append(MicroInst(Opcode.STEP, imm=acc))
    insts.append(MicroInst(Opcode.LOOP_END))
    return assemble(insts)


def _emit_access(node: AccessNode, dfg: Dfg, insts: List[MicroInst],
                 regs: Dict[int, int], reg_for, operand_reg,
                 access_ids: Dict[int, int],
                 obj_ids: Dict[str, int]) -> None:
    acc = access_ids.get(node.id)
    if acc is None:
        raise MappingError(f"access node {node.id} has no access-id")
    # folded address computation
    for _ in range(node.addr_ops):
        insts.append(MicroInst(Opcode.IADD, dst=reg_for(node.id)))
    buffered = node.pattern in (AccessPattern.STREAM, AccessPattern.INVARIANT)
    if not node.is_write:
        if buffered:
            insts.append(MicroInst(
                Opcode.CONSUME, dst=reg_for(node.id), imm=acc
            ))
            if node.pattern is AccessPattern.STREAM:
                insts.append(MicroInst(Opcode.STEP, imm=acc))
        else:
            index_srcs = [
                operand_reg(e.src) for e in dfg.predecessors(node.id)
                if e.is_index
            ]
            insts.append(MicroInst(
                Opcode.CP_READ, dst=reg_for(node.id),
                src1=index_srcs[0] if index_srcs else 0,
                imm=obj_ids.get(node.obj, 0),
            ))
    else:
        value_srcs = [
            operand_reg(e.src) for e in dfg.predecessors(node.id)
            if not e.is_predicate and not e.is_index
        ]
        value_reg = value_srcs[0] if value_srcs else 0
        if buffered:
            insts.append(MicroInst(
                Opcode.PRODUCE, src1=value_reg, imm=acc
            ))
            if node.pattern is AccessPattern.STREAM:
                insts.append(MicroInst(Opcode.STEP, imm=acc))
        else:
            index_regs = [
                operand_reg(e.src) for e in dfg.predecessors(node.id)
                if e.is_index
            ]
            insts.append(MicroInst(
                Opcode.CP_WRITE,
                src1=index_regs[0] if index_regs else 0,
                src2=value_reg,
                imm=obj_ids.get(node.obj, 0),
            ))

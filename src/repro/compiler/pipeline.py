"""The full compilation pipeline (paper Figure 6).

``compile_kernel`` drives, per innermost loop: DFG classification ->
partitioning (per the target configuration's compute model) -> vertical
placement -> access specialization & intrinsic insertion -> offload
configuration / microcode emission. The output bundles everything the
runtime and the Table V/VI experiments need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.verifier import assert_kernel_verified
from ..dfg.build import build_dfg
from ..dfg.classify import (
    Classification,
    classify_kernel_loop,
    has_serial_chain,
)
from ..dfg.graph import Dfg
from ..dfg.node import AccessNode
from ..errors import ConfigError
from ..interface.config import OffloadConfig
from ..interface.intrinsics import CoverageRecorder, mmio_bytes
from ..ir.program import Kernel
from ..ir.stmt import Loop
from ..partition.iterate import DfgPartitioning, partition_dfg
from ..placement.vertical import PlacementLevel, vertical_placement
from .specialize import specialize_offload


class CompileMode(enum.Enum):
    """Which architecture model the offload targets (paper §VI-A)."""

    #: distributed compute + decentralized accesses (Dist-DA)
    DIST = "dist"
    #: monolithic compute, decentralized access units (Mono-DA)
    MONO_DA = "mono_da"
    #: monolithic compute + centralized stream accesses on the L3 bus
    MONO_CA = "mono_ca"


@dataclass
class CompiledOffload:
    """Everything the compiler produced for one innermost loop."""

    kernel: Kernel
    loop: Loop
    dfg: Dfg
    classification: Classification
    partitioning: DfgPartitioning
    config: OffloadConfig
    coverage: CoverageRecorder
    mode: CompileMode
    #: partition index -> vertical placement level
    vertical: Dict[int, PlacementLevel] = field(default_factory=dict)
    trip_count_hint: Optional[int] = None
    #: loop-carried address dependence (pointer chasing): accesses cannot
    #: overlap on any substrate
    serial_chain: bool = False

    # -- Table VI characteristics ------------------------------------------
    @property
    def num_insts(self) -> int:
        return self.dfg.num_insts()

    @property
    def dfg_dims(self) -> Tuple[int, int]:
        return self.dfg.dims()

    @property
    def microcode_bytes(self) -> int:
        return max(
            (len(p.microcode) for p in self.config.partitions), default=0
        )

    @property
    def avg_buffers(self) -> float:
        """Average configured accesses per partition (pre-combining)."""
        per_part = [
            len([a for a in p.accesses]) for p in self.config.partitions
        ]
        return sum(per_part) / len(per_part) if per_part else 0.0

    def avg_physical_buffers(self, machine=None) -> float:
        """Average *allocated* buffers per partition after the hardware
        scheduler's multi-access combining — Table VI's #buf column."""
        from ..interface.scheduler import HardwareScheduler
        from ..params import default_machine

        machine = machine or default_machine()
        sched = HardwareScheduler(machine.l3_clusters, machine.access_unit)
        counts = []
        for k, part in enumerate(self.config.partitions):
            before = sched.buffers_allocated()
            cluster = k % machine.l3_clusters
            for acc in part.accesses:
                try:
                    sched.allocate(k, cluster, acc)
                except Exception:
                    counts.append(len(part.accesses))
                    break
            else:
                counts.append(sched.buffers_allocated() - before)
        return sum(counts) / len(counts) if counts else 0.0

    @property
    def init_mmio_bytes(self) -> int:
        return mmio_bytes(self.config.config_calls())


@dataclass
class CompiledKernel:
    """Compilation result for a whole kernel (possibly several loops)."""

    kernel: Kernel
    offloads: List[CompiledOffload]
    #: innermost loops rejected for offload (serial), run on the host
    rejected: List[Tuple[Loop, Classification]] = field(default_factory=list)
    coverage: CoverageRecorder = field(default_factory=CoverageRecorder)

    @property
    def fully_offloadable(self) -> bool:
        return not self.rejected and bool(self.offloads)


def compile_kernel(kernel: Kernel, mode: CompileMode = CompileMode.DIST,
                   max_partitions: Optional[int] = None,
                   trip_count_hint: Optional[int] = None,
                   coverage: Optional[CoverageRecorder] = None,
                   disable_stream_spec: bool = False) -> CompiledKernel:
    """Compile every offloadable innermost loop of ``kernel``."""
    # static legality guard (repro.analysis); REPRO_NO_VERIFY=1 opts out
    assert_kernel_verified(kernel, context="compiler")
    coverage = coverage if coverage is not None else CoverageRecorder()
    offloads: List[CompiledOffload] = []
    rejected: List[Tuple[Loop, Classification]] = []
    for index, loop in enumerate(kernel.innermost_loops()):
        classify = classify_kernel_loop(loop, kernel)
        if not classify.kind.offloadable:
            rejected.append((loop, classify.kind))
            continue
        dfg = build_dfg(loop, kernel, name=f"{kernel.name}.{loop.var}{index}")
        partitioning = _partition_for_mode(dfg, mode, max_partitions)
        config = specialize_offload(
            dfg, partitioning, kernel, offload_id=index,
            coverage=coverage, trip_count=trip_count_hint,
            disable_stream_spec=disable_stream_spec,
        )
        vertical = _vertical_placements(
            dfg, partitioning, kernel, trip_count_hint, mode
        )
        offloads.append(CompiledOffload(
            kernel=kernel, loop=loop, dfg=dfg,
            classification=classify.kind,
            partitioning=partitioning, config=config,
            coverage=coverage, mode=mode, vertical=vertical,
            trip_count_hint=trip_count_hint,
            serial_chain=has_serial_chain(loop, kernel),
        ))
    return CompiledKernel(
        kernel=kernel, offloads=offloads, rejected=rejected,
        coverage=coverage,
    )


def _partition_for_mode(dfg: Dfg, mode: CompileMode,
                        max_partitions: Optional[int]) -> DfgPartitioning:
    if mode is CompileMode.DIST:
        return partition_dfg(dfg, max_partitions=max_partitions)
    if mode is CompileMode.MONO_CA:
        assignment = {nid: 0 for nid in dfg.nodes}
        return DfgPartitioning(
            dfg=dfg, assignment=assignment, num_partitions=1,
            cut_cost_bits=0, objects=dfg.partition_objects(assignment),
        )
    if mode is CompileMode.MONO_DA:
        return _mono_da_partitioning(dfg)
    raise ConfigError(f"unknown compile mode {mode}")


def _mono_da_partitioning(dfg: Dfg) -> DfgPartitioning:
    """Mono-DA: one access partition per object, compute centralized.

    Access units sit at the data (decentralized accesses, buffered reuse)
    but the offloaded computation is mapped monolithically — the paper's
    "distributed access points from where the data are forwarded" with a
    single compute location.
    """
    objects: Dict[str, int] = {}
    assignment: Dict[int, int] = {}
    for node in dfg.nodes.values():
        if isinstance(node, AccessNode):
            if node.obj not in objects:
                objects[node.obj] = len(objects)
            assignment[node.id] = objects[node.obj]
    compute_part = len(objects)
    has_compute = False
    for node in dfg.nodes.values():
        if node.id not in assignment:
            assignment[node.id] = compute_part
            has_compute = True
    num = compute_part + (1 if has_compute else 0)
    return DfgPartitioning(
        dfg=dfg, assignment=assignment, num_partitions=num,
        cut_cost_bits=dfg.cut_cost_bits(assignment),
        objects=dfg.partition_objects(assignment),
    )


def _vertical_placements(dfg: Dfg, partitioning: DfgPartitioning,
                         kernel: Kernel, trip_hint: Optional[int],
                         mode: CompileMode) -> Dict[int, PlacementLevel]:
    out: Dict[int, PlacementLevel] = {}
    for p in range(partitioning.num_partitions):
        if mode is CompileMode.MONO_CA:
            out[p] = PlacementLevel.NEAR_HOST  # the L3-bus accelerator
            continue
        access_nodes = [
            dfg.nodes[nid] for nid in partitioning.nodes_of(p)
            if isinstance(dfg.nodes[nid], AccessNode)
        ]
        if not access_nodes:
            out[p] = PlacementLevel.L3_CLUSTER  # follow the data
            continue
        votes = [
            vertical_placement(
                node, kernel.objects.get(node.obj), trip_hint
            )
            for node in access_nodes
        ]
        # a partition with any L3-worthy access co-places at the LLC
        out[p] = (
            PlacementLevel.L3_CLUSTER
            if PlacementLevel.L3_CLUSTER in votes
            else PlacementLevel.NEAR_HOST
        )
    return out

"""Access specialization: DFG partitions -> distributed accelerator
definitions (paper §V-A-5/6).

Every access node becomes a configured access-id (stream accesses get
``cp_config_stream`` + FSM service; indirect/random accesses get
``cp_config_random`` + ``cp_read``/``cp_write``), and every cross-
partition DFG edge becomes a produce/consume channel pair mapped on the
access-unit buffers (Figure 4). The used interface mechanisms are
recorded for Table V.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dfg.graph import Dfg
from ..dfg.node import AccessNode, AccessPattern
from ..errors import InterfaceError
from ..interface.config import (
    AccessConfig,
    AccessKind,
    ChannelConfig,
    OffloadConfig,
    PartitionConfig,
)
from ..interface.intrinsics import CoverageRecorder, Intrinsic
from ..ir.program import Kernel
from ..partition.iterate import DfgPartitioning
from .codegen import generate_microcode


def specialize_offload(dfg: Dfg, partitioning: DfgPartitioning,
                       kernel: Kernel, offload_id: int,
                       coverage: Optional[CoverageRecorder] = None,
                       trip_count: Optional[int] = None,
                       disable_stream_spec: bool = False) -> OffloadConfig:
    """Emit the OffloadConfig for one partitioned DFG."""
    coverage = coverage if coverage is not None else CoverageRecorder()
    obj_ids = {name: k for k, name in enumerate(dfg.objects())}
    next_access = _Counter()
    parts: List[PartitionConfig] = []
    access_ids: Dict[int, int] = {}  # DFG access node -> access-id

    coverage.record(Intrinsic.CP_CONFIG)
    coverage.record(Intrinsic.CP_RUN)

    for p in range(partitioning.num_partitions):
        node_ids = partitioning.nodes_of(p)
        accesses: List[AccessConfig] = []
        compute_ops: Dict[str, int] = {}
        addr_ops = 0
        for nid in node_ids:
            node = dfg.nodes[nid]
            if isinstance(node, AccessNode):
                acc = _specialize_access(
                    node, next_access(), trip_count, coverage,
                    disable_stream_spec,
                )
                access_ids[nid] = acc.access_id
                accesses.append(acc)
                addr_ops += node.addr_ops
            else:
                compute_ops[node.op_class] = (
                    compute_ops.get(node.op_class, 0) + 1
                )
        rf_presets = {
            k: float(v) for k, v in enumerate(kernel.scalars.values())
        }
        if rf_presets:
            coverage.record(Intrinsic.CP_SET_RF)
            coverage.record(Intrinsic.CP_LOAD_RF)
        parts.append(PartitionConfig(
            partition_index=p,
            anchor_object=partitioning.safe_anchor(p),
            accesses=accesses,
            compute_ops=compute_ops,
            addr_ops=addr_ops,
            dfg_nodes=tuple(node_ids),
            rf_presets=rf_presets,
        ))

    channels = _build_channels(
        dfg, partitioning, parts, next_access, coverage
    )

    # per-partition channel endpoints: remote producer node -> local
    # consumer access id; local producer node -> producer access id
    channel_in_by_part: Dict[int, Dict[int, int]] = {
        p: {} for p in range(partitioning.num_partitions)
    }
    channel_out_by_part: Dict[int, Dict[int, int]] = {
        p: {} for p in range(partitioning.num_partitions)
    }
    for ch, src_node in channels:
        channel_in_by_part[ch.consumer_partition][src_node] = (
            ch.consumer_access_id
        )
        channel_out_by_part[ch.producer_partition][src_node] = (
            ch.producer_access_id
        )

    for part in parts:
        part.microcode = generate_microcode(
            dfg, part.dfg_nodes,
            access_ids={nid: access_ids[nid] for nid in part.dfg_nodes
                        if nid in access_ids},
            obj_ids=obj_ids,
            channel_inputs=channel_in_by_part[part.partition_index],
            channel_outputs=channel_out_by_part[part.partition_index],
        )

    return OffloadConfig(
        offload_id=offload_id,
        kernel_name=kernel.name,
        partitions=parts,
        channels=[ch for ch, _ in channels],
        scalars=dict(kernel.scalars),
    )


def _specialize_access(node: AccessNode, access_id: int,
                       trip_count: Optional[int],
                       coverage: CoverageRecorder,
                       disable_stream_spec: bool = False) -> AccessConfig:
    streamable = node.pattern in (AccessPattern.STREAM,
                                  AccessPattern.INVARIANT)
    if streamable and disable_stream_spec:
        # multithreading case study: parallel loop iterations are
        # scheduled to threads individually, so the stream-based access
        # specialization step is skipped (paper Fig 12b)
        streamable = False
    if streamable:
        kind = (AccessKind.STREAM_WRITE if node.is_write
                else AccessKind.STREAM_READ)
        coverage.record(Intrinsic.CP_CONFIG_STREAM)
        if node.is_write:
            coverage.record(Intrinsic.CP_PRODUCE)
            coverage.record(Intrinsic.CP_DRAIN_BUF)
        else:
            coverage.record(Intrinsic.CP_CONSUME)
            coverage.record(Intrinsic.CP_FILL_BUF)
        if node.pattern is AccessPattern.STREAM:
            coverage.record(Intrinsic.CP_STEP)
        stride = node.stride_elems or 0
    else:
        kind = AccessKind.INDIRECT
        coverage.record(Intrinsic.CP_CONFIG_RANDOM)
        coverage.record(
            Intrinsic.CP_WRITE if node.is_write else Intrinsic.CP_READ
        )
        stride = 0
    if node.dtype is None:
        raise InterfaceError(f"access node {node.id} lacks a dtype")
    return AccessConfig(
        access_id=access_id,
        kind=kind,
        obj=node.obj,
        elem_bytes=node.dtype.size_bytes,
        stride_elems=stride,
        start_offset=node.base_offset or 0,
        length=trip_count,
        is_write=node.is_write,
        dfg_nodes=(node.id,),
        site_ids=node.site_ids,
    )


class _Counter:
    def __init__(self) -> None:
        self._next = 0

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value


def _build_channels(dfg: Dfg, partitioning: DfgPartitioning,
                    parts: List[PartitionConfig], next_access: _Counter,
                    coverage: CoverageRecorder
                    ) -> List[Tuple[ChannelConfig, int]]:
    """One channel per (producer node, consumer partition) pair."""
    seen: Dict[Tuple[int, int], ChannelConfig] = {}
    out: List[Tuple[ChannelConfig, int]] = []
    next_channel = _Counter()
    for edge in partitioning.cross_edges():
        src_part = partitioning.assignment[edge.src]
        dst_part = partitioning.assignment[edge.dst]
        key = (edge.src, dst_part)
        if key in seen:
            continue
        producer_acc = next_access()
        consumer_acc = next_access()
        ch = ChannelConfig(
            channel_id=next_channel(),
            producer_partition=src_part,
            consumer_partition=dst_part,
            producer_access_id=producer_acc,
            consumer_access_id=consumer_acc,
            width_bits=edge.width_bits,
            is_predicate=edge.is_predicate,
        )
        seen[key] = ch
        out.append((ch, edge.src))
        coverage.record(Intrinsic.CP_PRODUCE)
        coverage.record(Intrinsic.CP_CONSUME)
        coverage.record(Intrinsic.CP_STEP)
        coverage.record(Intrinsic.CP_CONFIG_STREAM)
        parts[src_part].accesses.append(AccessConfig(
            access_id=producer_acc, kind=AccessKind.CHANNEL,
            elem_bytes=ch.payload_bytes, is_write=True,
            dfg_nodes=(edge.src,),
        ))
        parts[src_part].produces.append(ch.channel_id)
        parts[dst_part].accesses.append(AccessConfig(
            access_id=consumer_acc, kind=AccessKind.CHANNEL,
            elem_bytes=ch.payload_bytes, is_write=False,
            dfg_nodes=(edge.dst,),
        ))
        parts[dst_part].consumes.append(ch.channel_id)
    return out

"""Element types for the kernel IR."""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Element data types supported by kernels."""

    INT32 = ("i32", 4, False)
    INT64 = ("i64", 8, False)
    FLOAT32 = ("f32", 4, True)
    FLOAT64 = ("f64", 8, True)

    def __init__(self, short: str, size_bytes: int, is_float: bool):
        self.short = short
        self.size_bytes = size_bytes
        self.is_float = is_float

    @property
    def numpy_dtype(self) -> np.dtype:
        return {
            DType.INT32: np.dtype(np.int32),
            DType.INT64: np.dtype(np.int64),
            DType.FLOAT32: np.dtype(np.float32),
            DType.FLOAT64: np.dtype(np.float64),
        }[self]

    def __repr__(self) -> str:
        return self.short


INT32 = DType.INT32
INT64 = DType.INT64
FLOAT32 = DType.FLOAT32
FLOAT64 = DType.FLOAT64

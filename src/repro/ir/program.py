"""Kernels and memory objects.

A :class:`Kernel` is a named loop nest (or sequence of nests) over a set
of declared :class:`MemObject` data structures plus scalar parameters —
exactly the "application memory objects / access instructions /
operations" triple that the paper's offload abstraction is built from
(§IV-A).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import IRError
from .expr import Expr, ExprLike, Load, LoopVar, Scalar, Temp, as_expr
from .stmt import Assign, Loop, Stmt, Store, When
from .types import DType


class MemObject:
    """A flat, row-major memory object (application data structure)."""

    def __init__(self, name: str, shape: Union[int, Tuple[int, ...]],
                 dtype: DType):
        if isinstance(shape, int):
            shape = (shape,)
        if not shape or any(d <= 0 for d in shape):
            raise IRError(f"object {name!r}: bad shape {shape}")
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size_bytes

    # -- indexing sugar ---------------------------------------------------
    def flat_index(self, idxs: Sequence[ExprLike]) -> Expr:
        """Row-major flattening of a multi-dimensional index."""
        idxs = [as_expr(ix) for ix in idxs]
        if len(idxs) != len(self.shape):
            raise IRError(
                f"object {self.name!r} is {len(self.shape)}-D, "
                f"got {len(idxs)} indices"
            )
        flat = idxs[0]
        for dim, ix in zip(self.shape[1:], idxs[1:]):
            flat = flat * dim + ix
        return flat

    def __getitem__(self, idxs) -> Load:
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        return Load(self.name, self.flat_index(idxs))

    def store(self, idxs, value: ExprLike) -> Store:
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        return Store(self.name, self.flat_index(idxs), value)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"<MemObject {self.name} {dims} {self.dtype!r}>"


@dataclass
class Kernel:
    """A named offloadable code region: loop nests over memory objects."""

    name: str
    objects: Dict[str, MemObject]
    loops: List[Loop]
    scalars: Dict[str, float] = field(default_factory=dict)
    #: objects whose final contents are the kernel's outputs
    outputs: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        if not self.loops:
            raise IRError(f"kernel {self.name!r} has no loops")
        for out in self.outputs:
            if out not in self.objects:
                raise IRError(f"unknown output object {out!r}")
        for loop in self.loops:
            self._validate_loop(loop, enclosing=[])

    def _validate_loop(self, loop: Loop, enclosing: List[str]) -> None:
        if loop.var in enclosing:
            raise IRError(f"shadowed loop variable {loop.var!r}")
        scope = enclosing + [loop.var]
        for expr in loop.expressions():
            self._validate_expr(expr, enclosing)
        temps: set = set()
        for stmt in loop.body:
            if isinstance(stmt, Loop):
                self._validate_loop(stmt, scope)
            else:
                self._validate_stmt(stmt, scope, temps)

    def _validate_stmt(self, stmt: Stmt, scope: List[str],
                       temps: set) -> None:
        if isinstance(stmt, When):
            self._validate_expr(stmt.cond, scope, temps)
            for inner in stmt.body:
                self._validate_stmt(inner, scope, temps)
            return
        for expr in stmt.expressions():
            self._validate_expr(expr, scope, temps)
        if isinstance(stmt, Assign):
            temps.add(stmt.name)
        if isinstance(stmt, Store) and stmt.obj not in self.objects:
            raise IRError(f"store to undeclared object {stmt.obj!r}")

    def _validate_expr(self, expr: Expr, scope: List[str],
                       temps: Optional[set] = None) -> None:
        for node in expr.walk():
            if isinstance(node, LoopVar) and node.name not in scope:
                raise IRError(f"loop var {node.name!r} used out of scope")
            if isinstance(node, Scalar) and node.name not in self.scalars:
                raise IRError(f"undeclared scalar {node.name!r}")
            if isinstance(node, Load) and node.obj not in self.objects:
                raise IRError(f"load from undeclared object {node.obj!r}")
            if (isinstance(node, Temp) and temps is not None
                    and node.name not in temps):
                raise IRError(f"temp %{node.name} read before assignment")

    # -- queries --------------------------------------------------------------
    def innermost_loops(self) -> List[Loop]:
        out: List[Loop] = []
        for loop in self.loops:
            out.extend(loop.innermost())
        return out

    def site_ids(self) -> Dict[int, int]:
        """Stable small integers per static Load/Store site.

        Keyed by ``id()`` of the Load expression / Store statement. Both
        the interpreter (trace records) and the DFG builder (access nodes)
        use this map, so traces can be joined with access nodes.
        """
        site_ids: Dict[int, int] = {}

        def visit_expr(expr: Expr) -> None:
            for node in expr.walk():
                if isinstance(node, Load) and id(node) not in site_ids:
                    site_ids[id(node)] = len(site_ids)

        def visit_stmt(stmt: Stmt) -> None:
            if isinstance(stmt, Loop):
                for e in stmt.expressions():
                    visit_expr(e)
                for s in stmt.body:
                    visit_stmt(s)
                return
            if isinstance(stmt, When):
                visit_expr(stmt.cond)
                for s in stmt.body:
                    visit_stmt(s)
                return
            for e in stmt.expressions():
                visit_expr(e)
            if isinstance(stmt, Store) and id(stmt) not in site_ids:
                site_ids[id(stmt)] = len(site_ids)

        for loop in self.loops:
            visit_stmt(loop)
        return site_ids

    def innermost_loop_ids(self) -> Dict[int, int]:
        """Stable small integers per innermost loop, in visit order.

        The loop-granular companion of :meth:`site_ids`: keyed by
        ``id()`` of the Loop object, valued by its structural position,
        so per-loop accounting can be keyed stably. Unlike a raw
        ``id()`` key, the position survives kernel reconstruction — two
        structurally identical kernels number their loops identically —
        and cannot alias when the allocator reuses a GC'd loop's address.
        """
        return {id(l): i for i, l in enumerate(self.innermost_loops())}

    def fingerprint(self) -> str:
        """Stable structural identity of this kernel.

        Two kernels with the same name, loop-nest structure, statements,
        objects and scalar defaults fingerprint identically regardless of
        object identity — unlike ``id()``, which the allocator may reuse
        after garbage collection. Compile caches key on this.
        """

        def fmt_loop(loop: Loop) -> str:
            body = ",".join(
                fmt_loop(s) if isinstance(s, Loop) else repr(s)
                for s in loop.body
            )
            return (
                f"for {loop.var} in [{loop.lower!r},{loop.upper!r}) "
                f"step {loop.step} {{{body}}}"
            )

        parts = [
            self.name,
            ";".join(fmt_loop(loop) for loop in self.loops),
            ",".join(
                f"{name}:{obj.shape}:{obj.dtype!r}"
                for name, obj in sorted(self.objects.items())
            ),
            ",".join(f"{k}={v}" for k, v in sorted(self.scalars.items())),
            ",".join(sorted(self.outputs)),
        ]
        return hashlib.sha1("|".join(parts).encode()).hexdigest()

    def objects_referenced(self) -> List[str]:
        names = []
        for loop in self.loops:
            for load in loop.all_loads():
                if load.obj not in names:
                    names.append(load.obj)
            for store in loop.all_stores():
                if store.obj not in names:
                    names.append(store.obj)
        return names

    def total_footprint_bytes(self) -> int:
        return sum(o.size_bytes for o in self.objects.values())

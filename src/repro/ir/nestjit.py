"""Per-nest Python specialization of the scalar interpreter.

When :class:`~repro.ir.vecinterp.VecInterpreter` cannot vectorize a
nest (true reductions, in-place stencils, data-dependent loop-carried
flow), the tree-walking fallback pays full dispatch per dynamic
operation. This module compiles such a nest into straight-line Python
source that mirrors :class:`~repro.ir.interp.Interpreter` semantics
*operation for operation* — same evaluation order, same Python-number
arithmetic (``_apply_binop`` inlined per static operand type), same
dtype casts through the backing numpy array, same trace tuples, same
``InterpreterError`` messages at the same dynamic points — then runs
the generated function instead of the tree walk. Operation counts and
iteration maps are folded into closed form per basic block, so the
generated loop body only pays for loads, stores, arithmetic, and trace
appends.

Anything whose scalar semantics the generator cannot reproduce
verbatim (reads of conditionally-assigned temps, shadowed loop
variables, missing objects/scalars, zero steps, aliased arrays,
non-numeric dtypes) simply refuses to compile — the caller falls back
to the tree-walking interpreter, which *is* the semantics.

Compiled nests are cached by a structural fingerprint of the kernel
(including array dtypes/sizes and scalar operand types), so workloads
that rebuild identical kernels per invocation compile once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InterpreterError
from .expr import (
    COMPLEX_OPS,
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from .interp import _State, _apply_binop, _apply_unop
from .program import Kernel
from .stmt import Assign, Loop, Stmt, Store, When

#: compiled-nest cache size (cleared wholesale when full)
_CACHE_CAP = 512
_cache: Dict[tuple, Optional["_Compiled"]] = {}

#: static value types: int, float, dynamic (decided per element at run)
_INT, _FLT, _DYN = "i", "f", "d"


class _Bail(Exception):
    """This nest cannot be specialized faithfully; tree-walk it."""


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------
def _fp_expr(e: Expr) -> tuple:
    k = e.__class__
    if k is Const:
        return ("C", e.value, e.value.__class__.__name__)
    if k is LoopVar:
        return ("L", e.name)
    if k is Temp:
        return ("T", e.name)
    if k is Scalar:
        return ("S", e.name)
    if k is Load:
        return ("Ld", e.obj, _fp_expr(e.index))
    if k is BinOp:
        return ("B", e.op, _fp_expr(e.lhs), _fp_expr(e.rhs))
    if k is UnaryOp:
        return ("U", e.op, _fp_expr(e.operand))
    if k is Select:
        return ("Se", _fp_expr(e.cond), _fp_expr(e.if_true),
                _fp_expr(e.if_false))
    raise _Bail


def _fp_stmt(s: Stmt) -> tuple:
    if isinstance(s, Loop):
        return ("loop", s.var, s.step, _fp_expr(s.lower), _fp_expr(s.upper),
                tuple(_fp_stmt(b) for b in s.body))
    if isinstance(s, Store):
        return ("store", s.obj, _fp_expr(s.index), _fp_expr(s.value))
    if isinstance(s, When):
        return ("when", _fp_expr(s.cond),
                tuple(_fp_stmt(b) for b in s.body))
    if isinstance(s, Assign):
        return ("assign", s.name, _fp_expr(s.value))
    raise _Bail


def kernel_fingerprint(kernel: Kernel) -> tuple:
    """Structural identity of a kernel (same fingerprint => same
    generated code, including positional site/loop ids)."""
    return (
        tuple(_fp_stmt(l) for l in kernel.loops),
        tuple(sorted((n, o.num_elements)
                     for n, o in kernel.objects.items())),
    )


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------
class _Block:
    """One basic block: emitted lines plus foldable static counts."""

    __slots__ = ("lines", "indent", "counts", "objs")

    def __init__(self, indent: int):
        self.lines: List[str] = []
        self.indent = indent
        # int/float/complex ops, loads, stores, loop_overhead
        self.counts = [0, 0, 0, 0, 0, 0]
        self.objs: Dict[str, int] = {}

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def count_bundle(self) -> List[str]:
        names = ("cI", "cF", "cC", "cLD", "cST", "cLP")
        return [f"{n} += {v}" for n, v in zip(names, self.counts) if v] + [
            f"ac_{_obj_slot(o)} += {v}" for o, v in self.objs.items() if v
        ]

    def fold_scaled(self, parent: "_Block", trip: str) -> None:
        """Fold this loop body's per-iteration constants into the parent
        multiplied by the trip-count variable."""
        names = ("cI", "cF", "cC", "cLD", "cST", "cLP")
        for n, v in zip(names, self.counts):
            if v:
                parent.emit(f"{n} += {v} * {trip}")
        for o, v in self.objs.items():
            if v:
                parent.emit(f"ac_{_obj_slot(o)} += {v} * {trip}")


_obj_slots: Dict[str, int] = {}


def _obj_slot(obj: str) -> int:
    # per-compilation slot table; reset by _NestCompiler
    return _obj_slots[obj]


class _NestCompiler:
    """Generates the specialized function source for one nest."""

    def __init__(self, kernel: Kernel, nest_index: int, record_trace: bool,
                 arrays: Dict[str, np.ndarray], scalar_types: dict,
                 loaded: set):
        self.kernel = kernel
        self.nest = kernel.loops[nest_index]
        self.record_trace = record_trace
        self.arrays = arrays
        self.scalar_types = scalar_types
        self.loaded = loaded
        self.site_ids = kernel.site_ids()
        self.loop_ids = kernel.innermost_loop_ids()
        self.innermost = {id(l) for l in kernel.innermost_loops()}
        self.blocks: List[_Block] = []
        self.tmp_n = 0
        self.loop_n = 0
        # name tables (deterministic orders for the result fold)
        self.obj_order: List[str] = []
        self.var_order: List[str] = []
        self.inner_keys: List[int] = []
        # scoping
        self.loop_stack: List[str] = []
        self.definite: Dict[str, str] = {}   # temp -> static type
        self.maybe: set = set()
        self.assign_log: List[str] = []

    # -- small helpers ---------------------------------------------------
    def fresh(self) -> str:
        self.tmp_n += 1
        return f"v{self.tmp_n}"

    @property
    def b(self) -> _Block:
        return self.blocks[-1]

    def hoist(self, code: str, typ: str) -> Tuple[str, str]:
        if code.isidentifier():
            return code, typ
        v = self.fresh()
        self.b.emit(f"{v} = {code}")
        return v, typ

    def note_obj(self, obj: str) -> None:
        if obj not in _obj_slots:
            _obj_slots[obj] = len(_obj_slots)
            self.obj_order.append(obj)

    def dtype_of(self, obj: str) -> np.dtype:
        arr = self.arrays.get(obj)
        if arr is None or arr.dtype.kind not in "if":
            raise _Bail
        return arr.dtype

    # -- expressions -----------------------------------------------------
    def expr(self, e: Expr) -> Tuple[str, str]:
        """Emit effects for ``e`` into the current block; return
        ``(code, static_type)`` where code is a pure Python expression."""
        k = e.__class__
        if k is Const:
            v = e.value
            if isinstance(v, float) and not math.isfinite(v):
                raise _Bail  # repr() of inf/nan is not a Python literal
            code = repr(v)
            if code.startswith("-"):
                # parenthesize: unary minus binds looser than % and **
                code = f"({code})"
            return code, _FLT if isinstance(v, float) else _INT
        if k is LoopVar:
            if e.name not in self.loop_stack:
                raise _Bail  # unbound: the tree walker raises properly
            return f"L_{_ident(e.name)}", _INT
        if k is Temp:
            if e.name in self.maybe or e.name not in self.definite:
                raise _Bail  # conditional/unbound temp
            return f"T_{_ident(e.name)}", self.definite[e.name]
        if k is Scalar:
            t = self.scalar_types.get(e.name)
            if t is None:
                raise _Bail  # missing scalar: tree walker raises lazily
            return f"S_{_ident(e.name)}", t
        if k is Load:
            return self.load(e)
        if k is BinOp:
            return self.binop(e)
        if k is UnaryOp:
            return self.unop(e)
        if k is Select:
            return self.select(e)
        raise _Bail

    def load(self, e: Load) -> Tuple[str, str]:
        dt = self.dtype_of(e.obj)
        self.note_obj(e.obj)
        idx = self.index_of(e.index)
        size = self.arrays[e.obj].size
        self.b.emit(
            f"if {idx} < 0 or {idx} >= {size}: "
            f"raise _IE(f\"load out of bounds: {e.obj}[{{{idx}}}] "
            f"(size {size})\")"
        )
        self.b.counts[3] += 1
        self.b.objs[e.obj] = self.b.objs.get(e.obj, 0) + 1
        if self.record_trace:
            self.b.emit(
                f"_ta(({self.site_ids[id(e)]}, {e.obj!r}, {idx}, False))"
            )
        v = self.fresh()
        self.b.emit(f"{v} = lst_{_ident(e.obj)}[{idx}]")
        return v, _FLT if dt.kind == "f" else _INT

    def index_of(self, index_expr: Expr) -> str:
        code, typ = self.expr(index_expr)
        if typ is not _INT:
            code = f"int({code})"
        v, _ = self.hoist(code, _INT)
        return v

    def binop(self, e: BinOp) -> Tuple[str, str]:
        lc, lt = self.expr(e.lhs)
        rc, rt = self.expr(e.rhs)
        op = e.op
        # -- operation counting (mirrors runtime isinstance classes) ----
        if op in COMPLEX_OPS:
            self.b.counts[2] += 1
        elif lt is _DYN or rt is _DYN:
            lc, lt = self.hoist(lc, lt)
            rc, rt = self.hoist(rc, rt)
            self.b.emit(
                f"cF, cI = (cF + 1, cI) if ({lc}.__class__ is float "
                f"or {rc}.__class__ is float) else (cF, cI + 1)"
            )
        elif lt is _FLT or rt is _FLT:
            self.b.counts[1] += 1
        else:
            self.b.counts[0] += 1
        # -- semantics --------------------------------------------------
        both_int = lt is _INT and rt is _INT
        any_dyn = lt is _DYN or rt is _DYN
        out = (_DYN if any_dyn
               else _FLT if (lt is _FLT or rt is _FLT) else _INT)
        if op in ("+", "-", "*"):
            return f"({lc} {op} {rc})", out
        if op == "/":
            if any_dyn:
                lc, _ = self.hoist(lc, lt)
                rc, _ = self.hoist(rc, rt)
                v = self.fresh()
                self.b.emit(f"{v} = _ab('/', {lc}, {rc})")
                return v, _DYN
            if both_int:
                lc, _ = self.hoist(lc, lt)
                rc, _ = self.hoist(rc, rt)
                self.b.emit(f"if {rc} == 0: "
                            f"raise _IE('integer division by zero')")
                v = self.fresh()
                self.b.emit(
                    f"{v} = -(-{lc} // {rc}) "
                    f"if ({lc} < 0) != ({rc} < 0) else {lc} // {rc}"
                )
                return v, _INT
            return f"({lc} / {rc})", _FLT
        if op == "%":
            rc, _ = self.hoist(rc, rt)
            self.b.emit(f"if {rc} == 0: raise _IE('modulo by zero')")
            if any_dyn:
                lc, _ = self.hoist(lc, lt)
                v = self.fresh()
                self.b.emit(f"{v} = {lc} % {rc}")
                return v, _DYN
            return f"({lc} % {rc})", _INT if both_int else _FLT
        if op in ("min", "max"):
            lc, _ = self.hoist(lc, lt)
            rc, _ = self.hoist(rc, rt)
            cmp = "<=" if op == "min" else ">="
            res = f"({lc} if {lc} {cmp} {rc} else {rc})"
            return res, lt if lt is rt else _DYN
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return f"(1 if {lc} {op} {rc} else 0)", _INT
        if op in ("&", "|", "^", "<<", ">>"):
            if lt is not _INT:
                lc = f"int({lc})"
            if rt is not _INT:
                rc = f"int({rc})"
            return f"({lc} {op} {rc})", _INT
        raise _Bail

    def unop(self, e: UnaryOp) -> Tuple[str, str]:
        vc, vt = self.expr(e.operand)
        op = e.op
        if op in COMPLEX_OPS:
            self.b.counts[2] += 1
        elif vt is _DYN:
            vc, vt = self.hoist(vc, vt)
            self.b.emit(
                f"cF, cI = (cF + 1, cI) if {vc}.__class__ is float "
                f"else (cF, cI + 1)"
            )
        elif vt is _FLT:
            self.b.counts[1] += 1
        else:
            self.b.counts[0] += 1
        if op == "-":
            return f"(-{vc})", vt
        if op == "abs":
            return f"abs({vc})", vt
        if op == "not":
            return f"(0 if {vc} else 1)", _INT
        if op == "floor":
            return f"_floor({vc})", _INT
        if op == "sqrt":
            vc, _ = self.hoist(vc, vt)
            self.b.emit(f"if {vc} < 0: "
                        f"raise _IE(f'sqrt of negative value {{{vc}}}')")
            return f"_sqrt({vc})", _FLT
        if op == "exp":
            return f"_exp({vc})", _FLT
        if op == "log":
            vc, _ = self.hoist(vc, vt)
            self.b.emit(f"if {vc} <= 0: "
                        f"raise _IE(f'log of non-positive value {{{vc}}}')")
            return f"_log({vc})", _FLT
        raise _Bail

    def select(self, e: Select) -> Tuple[str, str]:
        cc, _ct = self.expr(e.cond)
        self.b.counts[0] += 1  # the select itself, always an int op
        v = self.fresh()
        self.b.emit(f"if {cc}:")
        self.blocks.append(_Block(self.b.indent + 1))
        tc, tt = self.expr(e.if_true)
        self.b.emit(f"{v} = {tc}")
        t_block = self.blocks.pop()
        for line in t_block.count_bundle():
            t_block.emit(line)
        self.b.lines.extend(t_block.lines)
        self.b.emit("else:")
        self.blocks.append(_Block(self.b.indent + 1))
        fc, ft = self.expr(e.if_false)
        self.b.emit(f"{v} = {fc}")
        f_block = self.blocks.pop()
        for line in f_block.count_bundle():
            f_block.emit(line)
        self.b.lines.extend(f_block.lines)
        return v, tt if tt is ft else _DYN

    # -- statements ------------------------------------------------------
    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Loop):
            self.loop(s)
        elif isinstance(s, Store):
            self.store(s)
        elif isinstance(s, When):
            self.when(s)
        elif isinstance(s, Assign):
            code, typ = self.expr(s.value)
            name = s.name
            self.definite[name] = typ
            self.maybe.discard(name)
            self.assign_log.append(name)
            self.b.emit(f"T_{_ident(name)} = {code}")
        else:
            raise _Bail

    def store(self, s: Store) -> None:
        dt = self.dtype_of(s.obj)
        self.note_obj(s.obj)
        idx = self.index_of(s.index)
        code, typ = self.expr(s.value)
        val, _ = self.hoist(code, typ)
        size = self.arrays[s.obj].size
        self.b.emit(
            f"if {idx} < 0 or {idx} >= {size}: "
            f"raise _IE(f\"store out of bounds: {s.obj}[{{{idx}}}] "
            f"(size {size})\")"
        )
        o = _ident(s.obj)
        self.b.emit(f"arr_{o}[{idx}] = {val}")
        if s.obj in self.loaded:
            # keep the Python-value mirror in sync through the dtype
            # cast; float64 stores of float values need no read-back
            if dt == np.float64 and typ is _FLT:
                self.b.emit(f"lst_{o}[{idx}] = {val}")
            else:
                self.b.emit(f"lst_{o}[{idx}] = arr_{o}[{idx}].item()")
        self.b.counts[4] += 1
        self.b.objs[s.obj] = self.b.objs.get(s.obj, 0) + 1
        if self.record_trace:
            self.b.emit(
                f"_ta(({self.site_ids[id(s)]}, {s.obj!r}, {idx}, True))"
            )

    def when(self, s: When) -> None:
        cc, _ct = self.expr(s.cond)
        self.b.emit(f"if {cc}:")
        self.blocks.append(_Block(self.b.indent + 1))
        before = dict(self.definite)
        before_maybe = set(self.maybe)
        for inner in s.body:
            self.stmt(inner)
        block = self.blocks.pop()
        for line in block.count_bundle():
            block.emit(line)
        if not block.lines:
            block.emit("pass")
        self.b.lines.extend(block.lines)
        # temps first assigned under the When are only conditionally
        # bound afterwards; reassigned ones keep (possibly widened) type
        for name, typ in list(self.definite.items()):
            if name not in before:
                self.maybe.add(name)
            elif before[name] is not typ:
                self.definite[name] = _DYN
        self.maybe |= before_maybe

    def loop(self, loop: Loop) -> None:
        if loop.step == 0:
            raise _Bail  # the tree walker raises the named error
        if loop.var in self.loop_stack:
            raise _Bail  # shadowed induction variable
        lo_c, lo_t = self.expr(loop.lower)
        up_c, up_t = self.expr(loop.upper)
        if lo_t is not _INT:
            lo_c = f"int({lo_c})"
        if up_t is not _INT:
            up_c = f"int({up_c})"
        lo, _ = self.hoist(lo_c, _INT)
        up, _ = self.hoist(up_c, _INT)
        self.loop_n += 1
        n = f"n{self.loop_n}"
        self.b.emit(f"{n} = len(range({lo}, {up}, {loop.step}))")
        if loop.var not in self.var_order:
            self.var_order.append(loop.var)
        # the scalar path touches iterations[var] on every invocation,
        # creating the entry even for zero-trip loops — count both
        self.b.emit(f"ic_{_ident(loop.var)} += 1")
        self.b.emit(f"it_{_ident(loop.var)} += {n}")
        self.b.emit(f"cLP += 2 * {n}")
        if id(loop) in self.innermost:
            key = self.loop_ids[id(loop)]
            if key not in self.inner_keys:
                self.inner_keys.append(key)
            self.b.emit(f"inv_{key} += 1")
            self.b.emit(f"itr_{key} += {n}")
        var = f"L_{_ident(loop.var)}"
        self.b.emit(f"for {var} in range({lo}, {up}, {loop.step}):")
        parent = self.b
        self.blocks.append(_Block(parent.indent + 1))
        self.loop_stack.append(loop.var)
        before = dict(self.definite)
        before_maybe = set(self.maybe)
        log_mark = len(self.assign_log)
        for stmt in loop.body:
            self.stmt(stmt)
        body = self.blocks.pop()
        self.loop_stack.pop()
        # temps assigned in the body would leak across iterations in
        # Python while the scalar env resets; reads are only legal when
        # re-dominated by an assign, which overwrites the leak — but a
        # body assign shadowing an enclosing definite/maybe temp would
        # make later iterations read the leak where the scalar reference
        # re-reads the enclosing copy
        if set(self.assign_log[log_mark:]) & (set(before) | before_maybe):
            raise _Bail
        self.definite = before
        self.maybe = before_maybe
        if not body.lines:
            body.emit("pass")
        parent.lines.extend(body.lines)
        body.fold_scaled(parent, n)

    # -- whole nest ------------------------------------------------------
    def compile(self) -> Tuple[str, dict]:
        _obj_slots.clear()
        root = _Block(1)
        self.blocks = [root]
        self.loop(self.nest)
        for line in root.count_bundle():
            root.emit(line)

        prelude: List[str] = ["def _nest(arrays, scalars, trace):"]
        e = prelude.append
        for obj in self.obj_order:
            o = _ident(obj)
            e(f"    arr_{o} = arrays[{obj!r}]")
            if obj in self.loaded:
                e(f"    lst_{o} = arr_{o}.tolist()")
        for name, _t in sorted(self.scalar_types.items()):
            e(f"    S_{_ident(name)} = scalars[{name!r}]")
        if self.record_trace:
            e("    _ta = trace.append")
        e("    cI = cF = cC = cLD = cST = cLP = 0")
        for v in self.var_order:
            e(f"    ic_{_ident(v)} = it_{_ident(v)} = 0")
        for key in self.inner_keys:
            e(f"    inv_{key} = itr_{key} = 0")
        for obj in self.obj_order:
            e(f"    ac_{_obj_slots[obj]} = 0")
        lines = prelude + root.lines
        ret_iters = ", ".join(
            f"ic_{_ident(v)}, it_{_ident(v)}" for v in self.var_order
        )
        ret_objs = ", ".join(f"ac_{_obj_slots[o]}" for o in self.obj_order)
        ret_inner = ", ".join(f"inv_{k}, itr_{k}" for k in self.inner_keys)
        lines.append(
            f"    return (cI, cF, cC, cLD, cST, cLP, "
            f"({ret_iters}{',' if ret_iters else ''}), "
            f"({ret_objs}{',' if ret_objs else ''}), "
            f"({ret_inner}{',' if ret_inner else ''}))"
        )
        meta = {
            "vars": list(self.var_order),
            "objs": list(self.obj_order),
            "inner_keys": list(self.inner_keys),
        }
        return "\n".join(lines), meta


def _ident(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else f"_{ord(c):x}_"
                  for c in name)
    return out


# ---------------------------------------------------------------------------
# runtime wrapper
# ---------------------------------------------------------------------------
class _Compiled:
    """A compiled nest: the generated function plus fold metadata."""

    __slots__ = ("fn", "vars", "objs", "inner_keys", "source")

    def __init__(self, fn, meta: dict, source: str):
        self.fn = fn
        self.vars = meta["vars"]
        self.objs = meta["objs"]
        self.inner_keys = meta["inner_keys"]
        self.source = source

    def execute(self, state: _State) -> None:
        res = self.fn(state.arrays, state.scalars, state.trace)
        (cI, cF, cC, cLD, cST, cLP, iters, objs, inner) = res
        c = state.counts
        c.int_ops += cI
        c.float_ops += cF
        c.complex_ops += cC
        c.loads += cLD
        c.stores += cST
        c.loop_overhead += cLP
        # dict entries are created on invocation/access in the scalar
        # path, so never-reached loops / untouched objects stay absent
        its = state.iterations
        for j, v in enumerate(self.vars):
            if iters[2 * j]:  # invocations of any loop over this var
                its[v] = its.get(v, 0) + iters[2 * j + 1]
        oa = state.obj_accesses
        for o, n in zip(self.objs, objs):
            if n:
                oa[o] = oa.get(o, 0) + n
        total = 0
        ii = state.inner_iters_by_loop
        iv = state.inner_invocations_by_loop
        for j, key in enumerate(self.inner_keys):
            inv, itr = inner[2 * j], inner[2 * j + 1]
            if inv:
                iv[key] = iv.get(key, 0) + inv
                ii[key] = ii.get(key, 0) + itr
                total += itr
        state.inner_iterations += total


_EXEC_GLOBALS = {
    "_IE": InterpreterError,
    "_ab": _apply_binop,
    "_au": _apply_unop,
    "_sqrt": math.sqrt,
    "_exp": math.exp,
    "_log": math.log,
    "_floor": math.floor,
}


def compiled_nest(kernel: Kernel, nest_index: int, state: _State,
                  record_trace: bool) -> Optional[_Compiled]:
    """Compiled specialization of ``kernel.loops[nest_index]``, or None
    when the nest (or its runtime bindings) can't be mirrored exactly."""
    try:
        fp = kernel_fingerprint(kernel)
    except _Bail:
        return None
    nest = kernel.loops[nest_index]
    stmts = _walk_stmts([nest])
    exprs = [n for s in stmts for n in _stmt_exprs(s)]
    loop_vars = {s.var for s in stmts if isinstance(s, Loop)}
    temps = {s.name for s in stmts if isinstance(s, Assign)}
    temps |= {n.name for n in exprs if isinstance(n, Temp)}
    if loop_vars & temps:
        return None  # one scalar namespace; prefixed locals would split it
    used_scalars = tuple(sorted(
        {n.name for n in exprs if isinstance(n, Scalar)}
    ))
    scalar_types = {}
    for name in used_scalars:
        if name not in state.scalars:
            return None  # the tree walker raises (or not) at the right time
        v = state.scalars[name]
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            return None
        scalar_types[name] = _FLT if isinstance(v, float) else _INT
    loaded = {n.obj for n in exprs if isinstance(n, Load)}
    accessed = sorted(
        loaded | {s.obj for s in stmts if isinstance(s, Store)}
    )
    for name in (loop_vars | temps | set(used_scalars) | set(accessed)):
        if not name.isidentifier():
            return None  # keep generated source well-formed
    arrs = []
    for obj in accessed:
        arr = state.arrays.get(obj)
        if arr is None or arr.ndim != 1 or arr.dtype.kind not in "if":
            return None
        arrs.append(arr)
    if len({id(a) for a in arrs}) != len(arrs):
        return None  # aliased arrays would stale the value mirrors
    key = (
        fp, nest_index, record_trace,
        tuple((o, state.arrays[o].dtype.str) for o in accessed),
        tuple(sorted(scalar_types.items())),
    )
    try:
        hash(key)
    except TypeError:
        return None
    if key in _cache:
        return _cache[key]
    if len(_cache) >= _CACHE_CAP:
        _cache.clear()
    compiled: Optional[_Compiled]
    try:
        comp = _NestCompiler(kernel, nest_index, record_trace,
                             state.arrays, scalar_types, loaded)
        source, meta = comp.compile()
        ns: dict = {}
        exec(compile(source, "<nestjit>", "exec"), dict(_EXEC_GLOBALS), ns)
        compiled = _Compiled(ns["_nest"], meta, source)
    except _Bail:
        compiled = None
    except SyntaxError:  # pragma: no cover - generator bug guard
        compiled = None
    _cache[key] = compiled
    return compiled


def _walk_stmts(stmts) -> List[Stmt]:
    out: List[Stmt] = []
    work = list(stmts)
    while work:
        s = work.pop()
        out.append(s)
        if isinstance(s, (Loop, When)):
            work.extend(s.body)
    return out


def _stmt_exprs(s: Stmt) -> List[Expr]:
    if isinstance(s, Loop):
        roots = [s.lower, s.upper]
    elif isinstance(s, Store):
        roots = [s.index, s.value]
    elif isinstance(s, When):
        roots = [s.cond]
    elif isinstance(s, Assign):
        roots = [s.value]
    else:
        return []
    return [n for r in roots for n in r.walk()]

"""Statement and loop nodes of the kernel IR."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, Union

from ..errors import IRError
from .expr import Expr, ExprLike, Load, as_expr


class Stmt:
    """Base statement."""

    __slots__ = ()

    def expressions(self) -> Tuple[Expr, ...]:
        """All top-level expressions read by this statement."""
        return ()

    def walk_exprs(self) -> Iterator[Expr]:
        for expr in self.expressions():
            yield from expr.walk()


class Assign(Stmt):
    """Define (or redefine) a loop-local temporary."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: ExprLike):
        self.name = name
        self.value = as_expr(value)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return f"%{self.name} = {self.value!r}"


class Store(Stmt):
    """Write one element of a memory object at a flat index."""

    __slots__ = ("obj", "index", "value")

    def __init__(self, obj: str, index: ExprLike, value: ExprLike):
        self.obj = obj
        self.index = as_expr(index)
        self.value = as_expr(value)

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.index, self.value)

    @property
    def is_indirect(self) -> bool:
        """True when the index itself depends on loaded data."""
        return next(self.index.loads(), None) is not None

    def __repr__(self) -> str:
        return f"{self.obj}[{self.index!r}] = {self.value!r}"


class When(Stmt):
    """Predicated statement block (control dep -> data dep by predication).

    The compiler converts `When` into per-statement predication when
    building the DFG (paper §V-A-2: "Control-dependencies in the DFG are
    converted to data dependencies by predication").
    """

    __slots__ = ("cond", "body")

    def __init__(self, cond: ExprLike, body: Sequence[Stmt]):
        self.cond = as_expr(cond)
        self.body = list(body)
        if not self.body:
            raise IRError("When requires a non-empty body")
        for stmt in self.body:
            if isinstance(stmt, Loop):
                raise IRError("When bodies may not contain loops")

    def expressions(self) -> Tuple[Expr, ...]:
        out: List[Expr] = [self.cond]
        for stmt in self.body:
            out.extend(stmt.expressions())
        return tuple(out)

    def __repr__(self) -> str:
        return f"when {self.cond!r}: {self.body!r}"


class Loop(Stmt):
    """Counted loop: ``for var in range(lower, upper, step)``.

    Bounds are expressions so inner-loop trip counts may be data-dependent
    (e.g. CSR row pointers: ``for j in Ap[i] .. Ap[i+1]``).
    """

    __slots__ = ("var", "lower", "upper", "step", "body", "parallel")

    def __init__(self, var: str, lower: ExprLike, upper: ExprLike,
                 body: Sequence[Union[Stmt, "Loop"]], step: int = 1,
                 parallel: bool = False):
        if step == 0:
            raise IRError("loop step must be nonzero")
        self.var = var
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.step = step
        self.body = list(body)
        #: hint that iterations are independent (multithreading case study)
        self.parallel = parallel
        if not self.body:
            raise IRError(f"loop over {var!r} has an empty body")

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.lower, self.upper)

    # -- structure helpers ---------------------------------------------------
    def inner_loops(self) -> List["Loop"]:
        return [s for s in self.body if isinstance(s, Loop)]

    @property
    def is_innermost(self) -> bool:
        return not self.inner_loops()

    def innermost(self) -> List["Loop"]:
        """All innermost loops in this nest (in program order)."""
        inner = self.inner_loops()
        if not inner:
            return [self]
        out: List[Loop] = []
        for loop in inner:
            out.extend(loop.innermost())
        return out

    def depth(self) -> int:
        inner = self.inner_loops()
        return 1 + (max(l.depth() for l in inner) if inner else 0)

    def body_stmts(self) -> List[Stmt]:
        """Non-loop statements directly in this loop's body."""
        return [s for s in self.body if not isinstance(s, Loop)]

    def all_loads(self) -> List[Load]:
        out: List[Load] = []
        for stmt in self.body:
            if isinstance(stmt, Loop):
                out.extend(stmt.all_loads())
            else:
                for expr in stmt.expressions():
                    out.extend(expr.loads())
        for expr in self.expressions():
            out.extend(expr.loads())
        return out

    def all_stores(self) -> List[Store]:
        out: List[Store] = []
        for stmt in self.body:
            if isinstance(stmt, Loop):
                out.extend(stmt.all_stores())
            elif isinstance(stmt, Store):
                out.append(stmt)
            elif isinstance(stmt, When):
                out.extend(s for s in stmt.body if isinstance(s, Store))
        return out

    def __repr__(self) -> str:
        return (
            f"for {self.var} in [{self.lower!r}, {self.upper!r}) "
            f"step {self.step}: <{len(self.body)} stmts>"
        )

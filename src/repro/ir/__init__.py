"""Typed kernel IR for offloadable loop nests.

The paper's compiler operates on LLVM IR of C/C++ hot loops; our
substitution is a small typed IR expressing the same class of programs:
loop nests over flat memory objects with affine and indirect (data-
dependent) index expressions, scalar temporaries, predication, and
read-modify-write accumulation through memory.

A kernel in this IR is simultaneously:

* executable — :mod:`repro.ir.interp` runs it against NumPy arrays,
  producing golden outputs, instruction counts and address traces;
* analyzable — :mod:`repro.dfg` lifts innermost-loop bodies to dataflow
  graphs for the offload compiler.
"""

from .types import DType, INT32, INT64, FLOAT32, FLOAT64
from .expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
    COMPLEX_OPS,
)
from .stmt import Assign, Loop, Stmt, Store, When
from .program import Kernel, MemObject
from .trace import ColumnarTrace
from .interp import InterpResult, Interpreter, MemAccess, OpCounts

__all__ = [
    "DType", "INT32", "INT64", "FLOAT32", "FLOAT64",
    "Expr", "Const", "LoopVar", "Scalar", "Temp", "Load", "BinOp",
    "UnaryOp", "Select", "COMPLEX_OPS",
    "Stmt", "Assign", "Store", "When", "Loop",
    "Kernel", "MemObject",
    "ColumnarTrace",
    "Interpreter", "InterpResult", "MemAccess", "OpCounts",
]

"""Whole-loop vectorized golden interpreter (the ``REPRO_VEC`` path).

The tree-walking :class:`~repro.ir.interp.Interpreter` pays Python
dispatch per dynamic operation; for the affine loop nests that dominate
the workload suite, every iteration evaluates the same expression tree
over a predictable iteration grid. :class:`VecInterpreter` executes one
whole loop nest at a time as numpy array expressions over that grid —
loads become gathers, stores become scatters, the access trace is
emitted as full per-site index vectors interleaved into a
:class:`~repro.ir.trace.ColumnarTrace`, and `OpCounts`, per-loop
iteration totals and ``accesses_per_object`` come out in closed form.

Bit-identity with the scalar interpreter is the contract, not an
approximation: same outputs (same IEEE operation order per element, same
dtype casts), same trace (same program order), same operation counts
(the scalar's *runtime* int/float classification is reproduced through
static-per-node type inference), same error behavior. Wherever the
vectorized semantics could diverge — data-dependent loop-carried flow,
values that leave int64 range, libm-backed ``exp``/``log``, division by
zero, out-of-bounds indices, NaN-sensitive truthiness — the nest falls
back to the scalar interpreter *before any state is committed*: a nest
either executes fully vectorized or exactly as the reference would have.

Legality of vectorizing a nest is decided per memory object at run
time: an object that is stored through more than one dynamic access
vector must see the *same* index vector at every site, and that vector
must be injective (checked with one ``np.unique``). Under that rule the
only loop-carried hazard — a RAW through memory — provably cannot
change any loaded value, so statement-at-a-time array evaluation equals
the scalar interleaving. True reductions and in-place stencils fail the
check and fall back; gathers, scatters and disjoint-object stencils
vectorize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .expr import (
    COMPLEX_OPS,
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from .interp import (
    InterpResult,
    Interpreter,
    InterpreterError,
    OpCounts,
    _apply_binop,
    _apply_unop,
    _State,
)
from .program import Kernel
from .stmt import Assign, Loop, Stmt, Store, When
from .trace import ColumnarTrace
from . import nestjit

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1
#: largest integer magnitude exactly representable in float64; int/float
#: comparisons beyond it are exact in Python but rounded in numpy
_F64_EXACT = 2 ** 53


class _Fallback(Exception):
    """This nest cannot be vectorized bit-identically; run it scalar."""


class _Seq:
    """Static emission-order counter (mirrors scalar eval order)."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def next(self) -> int:
        self.n += 1
        return self.n


class _Ctx:
    """One loop node's iteration table.

    ``n`` rows in execution order; ``env`` maps loop vars and temps to
    ``(value, is_float)`` where value is an int64/float64 vector over
    the table (or a Python scalar); ``prefix`` holds the hierarchical
    order-key columns of every ancestor level.
    """

    __slots__ = ("n", "env", "prefix", "uid")

    def __init__(self, n: int, env: Dict[str, Tuple[object, bool]],
                 prefix: List[np.ndarray], uid: int):
        self.n = n
        self.env = env
        self.prefix = prefix
        self.uid = uid


class _Emission:
    """One static access site's dynamic accesses for one table."""

    __slots__ = ("cols", "site", "obj", "idx", "is_write", "node_uid",
                 "full")

    def __init__(self, cols: List[np.ndarray], site: int, obj: str,
                 idx: np.ndarray, is_write: bool, node_uid: int,
                 full: bool):
        self.cols = cols
        self.site = site
        self.obj = obj
        self.idx = idx
        self.is_write = is_write
        self.node_uid = node_uid
        self.full = full


class _AccessRecord:
    """Per-object runtime legality bookkeeping (see module docstring)."""

    __slots__ = ("first", "instances", "all_equal", "has_store",
                 "checked_unique", "unique")

    def __init__(self) -> None:
        self.first: Optional[np.ndarray] = None
        self.instances = 0
        self.all_equal = True
        self.has_store = False
        self.checked_unique = False
        self.unique = True


def _int_bounds(value) -> Tuple[int, int]:
    """Exact python-int [min, max] of an int operand (vector or scalar)."""
    if isinstance(value, np.ndarray):
        if value.size == 0:
            return (0, 0)
        return (int(value.min()), int(value.max()))
    return (int(value), int(value))


def _guard_i64(*corners: int) -> None:
    for c in corners:
        if not (_I64_MIN <= c <= _I64_MAX):
            raise _Fallback


class _NestRun:
    """Vectorized execution of one top-level loop nest.

    All effects (counts, iteration maps, array writes, trace emissions)
    are buffered locally and folded into the shared interpreter state
    only by :meth:`commit`, after every legality check passed — so a
    :class:`_Fallback` at any point leaves the state untouched for the
    scalar re-run.
    """

    def __init__(self, state: _State, site_ids: Dict[int, int],
                 loop_ids: Dict[int, int], innermost: set,
                 record_trace: bool):
        self.state = state
        self.site_ids = site_ids
        self.loop_ids = loop_ids
        self.innermost = innermost
        self.record_trace = record_trace
        self.counts = OpCounts()
        self.iterations: Dict[str, int] = {}
        self.obj_accesses: Dict[str, int] = {}
        self.inner_iterations = 0
        self.inner_iters: Dict[int, int] = {}
        self.inner_invocs: Dict[int, int] = {}
        self.pending: Dict[str, np.ndarray] = {}
        self.emissions: List[_Emission] = []
        self.access: Dict[str, _AccessRecord] = {}
        self._uid = 0

    # -- top level ---------------------------------------------------------
    def execute(self, loop: Loop) -> Optional[Tuple]:
        root = _Ctx(1, {}, [], self._next_uid())
        self._exec_loop(loop, root, _Seq())
        self._check_legality()
        self._fold_into_state()
        if not self.record_trace:
            return None
        return self._assemble_segment()

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    # -- loops -------------------------------------------------------------
    def _exec_loop(self, loop: Loop, ctx: _Ctx, seq: _Seq) -> None:
        if ctx.n == 0:
            # the enclosing loop never iterates: the scalar interpreter
            # never invokes this one (no bound evals, no map entries)
            return
        lo = self._index_vec(*self._eval(loop.lower, ctx, None, seq), ctx.n)
        up = self._index_vec(*self._eval(loop.upper, ctx, None, seq), ctx.n)
        step = loop.step
        if step == 0:
            raise _Fallback  # scalar path raises InterpreterError
        s_loop = seq.next()
        lo_b, up_b = _int_bounds(lo), _int_bounds(up)
        _guard_i64(up_b[0] - lo_b[1] - abs(step),
                   up_b[1] - lo_b[0] + abs(step),
                   lo_b[0] - up_b[1] - abs(step),
                   lo_b[1] - up_b[0] + abs(step))
        if step > 0:
            trips = np.maximum((up - lo + (step - 1)) // step, 0)
        else:
            trips = np.maximum((lo - up + (-step - 1)) // (-step), 0)
        n_c = int(trips.sum())
        if id(loop) in self.innermost:
            key = self.loop_ids[id(loop)]
            self.inner_invocs[key] = self.inner_invocs.get(key, 0) + ctx.n
            self.inner_iters[key] = self.inner_iters.get(key, 0) + n_c
            self.inner_iterations += n_c
        self.iterations[loop.var] = self.iterations.get(loop.var, 0) + n_c
        self.counts.loop_overhead += 2 * n_c

        parent_idx = np.repeat(np.arange(ctx.n, dtype=np.int64), trips)
        starts = np.zeros(ctx.n, dtype=np.int64)
        np.cumsum(trips[:-1], out=starts[1:])
        offs = np.arange(n_c, dtype=np.int64) - starts[parent_idx]
        values = lo[parent_idx] + step * offs
        env = {
            name: ((v[parent_idx], f) if isinstance(v, np.ndarray)
                   else (v, f))
            for name, (v, f) in ctx.env.items()
        }
        env[loop.var] = (values, False)
        prefix = [c[parent_idx] for c in ctx.prefix]
        prefix.append(parent_idx)
        prefix.append(np.full(n_c, s_loop, dtype=np.int64))
        child = _Ctx(n_c, env, prefix, self._next_uid())
        child_seq = _Seq()
        for stmt in loop.body:
            if isinstance(stmt, Loop):
                self._exec_loop(stmt, child, child_seq)
            else:
                self._exec_stmt(stmt, child, None, child_seq)

    # -- statements --------------------------------------------------------
    def _exec_stmt(self, stmt: Stmt, ctx: _Ctx,
                   sel: Optional[np.ndarray], seq: _Seq) -> None:
        if isinstance(stmt, Assign):
            if sel is not None:
                # conditionally-assigned temps diverge per element
                raise _Fallback
            ctx.env[stmt.name] = self._eval(stmt.value, ctx, None, seq)
            return
        if isinstance(stmt, Store):
            self._store(stmt, ctx, sel, seq)
            return
        if isinstance(stmt, When):
            cond, _cf = self._eval(stmt.cond, ctx, sel, seq)
            if not isinstance(cond, np.ndarray):
                if cond:
                    sub = sel
                else:
                    sub = np.empty(0, dtype=np.int64)
            else:
                mask = cond != 0
                base = np.arange(ctx.n, dtype=np.int64) if sel is None \
                    else sel
                sub = base[mask]
            for inner in stmt.body:
                self._exec_stmt(inner, ctx, sub, seq)
            return
        raise _Fallback

    def _store(self, stmt: Store, ctx: _Ctx,
               sel: Optional[np.ndarray], seq: _Seq) -> None:
        m = ctx.n if sel is None else len(sel)
        idx = self._index_vec(*self._eval(stmt.index, ctx, sel, seq), m)
        value, vf = self._eval(stmt.value, ctx, sel, seq)
        arr = self._image(stmt.obj)
        if arr is None or arr.dtype.kind not in "if":
            raise _Fallback
        if m and (int(idx.min()) < 0 or int(idx.max()) >= arr.size):
            raise _Fallback  # scalar raises the bounds InterpreterError
        self._record_access(stmt.obj, idx, True)
        vals = self._materialize(value, vf, m)
        self._guard_store_cast(arr.dtype, vals, vf)
        if stmt.obj not in self.pending:
            arr = self.pending[stmt.obj] = arr.copy()
        # duplicate scatter indices: numpy assigns in order, last wins —
        # the same winner the scalar per-iteration store order picks
        arr[idx] = vals
        self.counts.stores += m
        if m:  # the scalar path creates per-object entries lazily
            self.obj_accesses[stmt.obj] = (
                self.obj_accesses.get(stmt.obj, 0) + m
            )
        self._emit(stmt, ctx, sel, seq, stmt.obj, idx, True)

    def _guard_store_cast(self, dtype: np.dtype, vals: np.ndarray,
                          is_float: bool) -> None:
        """Stores where numpy's vector cast and the scalar per-element
        assignment could disagree (or where the scalar path raises) fall
        back: out-of-range ints, and NaN/inf/overflow into int dtypes."""
        if vals.size == 0:
            return
        if dtype.kind == "f":
            return  # int64->float and float64->float32 casts match
        info = np.iinfo(dtype)
        if not is_float:
            lo, hi = _int_bounds(vals)
            if lo < info.min or hi > info.max:
                raise _Fallback
            return
        if not np.isfinite(vals).all():
            raise _Fallback
        trunc = np.trunc(vals)
        if (trunc < info.min).any() or (trunc > info.max).any():
            raise _Fallback

    # -- expressions -------------------------------------------------------
    def _eval(self, expr: Expr, ctx: _Ctx, sel: Optional[np.ndarray],
              seq: _Seq) -> Tuple[object, bool]:
        kind = expr.__class__
        m = ctx.n if sel is None else len(sel)
        if kind is Const:
            return expr.value, isinstance(expr.value, float)
        if kind is LoopVar or kind is Temp:
            entry = ctx.env.get(expr.name)
            if entry is None:
                raise _Fallback  # scalar raises "unbound name"
            v, f = entry
            if isinstance(v, np.ndarray) and sel is not None:
                v = v[sel]
            return v, f
        if kind is Scalar:
            try:
                v = self.state.scalars[expr.name]
            except KeyError:
                raise _Fallback from None
            return v, isinstance(v, float)
        if kind is Load:
            return self._load(expr, ctx, sel, seq, m)
        if kind is BinOp:
            lhs, lf = self._eval(expr.lhs, ctx, sel, seq)
            rhs, rf = self._eval(expr.rhs, ctx, sel, seq)
            op = expr.op
            if op in COMPLEX_OPS:
                self.counts.complex_ops += m
            elif lf or rf:
                self.counts.float_ops += m
            else:
                self.counts.int_ops += m
            return self._binop(op, lhs, lf, rhs, rf)
        if kind is UnaryOp:
            val, vf = self._eval(expr.operand, ctx, sel, seq)
            if expr.op in COMPLEX_OPS:
                self.counts.complex_ops += m
            elif vf:
                self.counts.float_ops += m
            else:
                self.counts.int_ops += m
            return self._unop(expr.op, val, vf)
        if kind is Select:
            return self._select(expr, ctx, sel, seq, m)
        raise _Fallback

    def _load(self, expr: Load, ctx: _Ctx, sel: Optional[np.ndarray],
              seq: _Seq, m: int) -> Tuple[object, bool]:
        idx = self._index_vec(*self._eval(expr.index, ctx, sel, seq), m)
        arr = self._image(expr.obj)
        if arr is None or arr.dtype.kind not in "if":
            raise _Fallback
        if m and (int(idx.min()) < 0 or int(idx.max()) >= arr.size):
            raise _Fallback  # scalar raises the bounds InterpreterError
        self._record_access(expr.obj, idx, False)
        self.counts.loads += m
        if m:  # the scalar path creates per-object entries lazily
            self.obj_accesses[expr.obj] = (
                self.obj_accesses.get(expr.obj, 0) + m
            )
        self._emit(expr, ctx, sel, seq, expr.obj, idx, False)
        vals = arr[idx]
        if arr.dtype.kind == "f":
            # .item() widens to python float == float64; exact upcast
            return vals.astype(np.float64), True
        return vals.astype(np.int64), False

    def _select(self, expr: Select, ctx: _Ctx, sel: Optional[np.ndarray],
                seq: _Seq, m: int) -> Tuple[object, bool]:
        cond, _cf = self._eval(expr.cond, ctx, sel, seq)
        self.counts.int_ops += m
        if not isinstance(cond, np.ndarray):
            # uniform condition: the scalar path evaluates only the
            # chosen branch in every iteration
            branch = expr.if_true if cond else expr.if_false
            return self._eval(branch, ctx, sel, seq)
        mask = cond != 0  # NaN compares unequal to 0 == truthy, as scalar
        base = np.arange(ctx.n, dtype=np.int64) if sel is None else sel
        t_sel = base[mask]
        f_sel = base[~mask]
        t_val, tf = self._eval(expr.if_true, ctx, t_sel, seq)
        f_val, ff = self._eval(expr.if_false, ctx, f_sel, seq)
        if len(t_sel) == 0:
            out_f = ff
        elif len(f_sel) == 0:
            out_f = tf
        elif tf != ff:
            raise _Fallback  # per-element result types would diverge
        else:
            out_f = tf
        dtype = np.float64 if out_f else np.int64
        out = np.empty(m, dtype=dtype)
        out[mask] = self._materialize(t_val, tf, len(t_sel))
        out[~mask] = self._materialize(f_val, ff, len(f_sel))
        return out, out_f

    # -- operator semantics ------------------------------------------------
    def _binop(self, op: str, lhs, lf: bool, rhs, rf: bool):
        if not isinstance(lhs, np.ndarray) and not isinstance(rhs,
                                                              np.ndarray):
            # two runtime constants: defer to the exact scalar kernel
            try:
                res = _apply_binop(op, lhs, rhs)
            except InterpreterError:
                raise _Fallback from None
            return res, isinstance(res, float)
        out_float = lf or rf
        if op in ("+", "-", "*"):
            if not out_float:
                (a0, a1), (b0, b1) = _int_bounds(lhs), _int_bounds(rhs)
                if op == "+":
                    _guard_i64(a0 + b0, a1 + b1)
                elif op == "-":
                    _guard_i64(a0 - b1, a1 - b0)
                else:
                    _guard_i64(a0 * b0, a0 * b1, a1 * b0, a1 * b1)
                l, r = self._as_i64(lhs), self._as_i64(rhs)
            else:
                l, r = self._as_f64(lhs, lf), self._as_f64(rhs, rf)
            if op == "+":
                return l + r, out_float
            if op == "-":
                return l - r, out_float
            return l * r, out_float
        if op == "/":
            if self._any_zero(rhs):
                raise _Fallback  # scalar raises (Interpreter/ZeroDivision)
            if not out_float:
                l, r = self._as_i64(lhs), self._as_i64(rhs)
                if _int_bounds(l)[0] == _I64_MIN and \
                        bool((np.asarray(r) == -1).any()):
                    raise _Fallback
                q = np.floor_divide(l, r)
                rem = l - q * r
                # truncate toward zero, as the scalar reference does
                q = q + ((rem != 0) & ((l < 0) != (r < 0)))
                return q, False
            return (self._as_f64(lhs, lf) / self._as_f64(rhs, rf)), True
        if op == "%":
            if self._any_zero(rhs):
                raise _Fallback  # scalar raises "modulo by zero"
            if not out_float:
                l, r = self._as_i64(lhs), self._as_i64(rhs)
                if _int_bounds(l)[0] == _I64_MIN and \
                        bool((np.asarray(r) == -1).any()):
                    raise _Fallback
                return np.mod(l, r), False
            l = self._as_f64(lhs, lf)
            r = self._as_f64(rhs, rf)
            # CPython float_rem: fmod, sign-adjust, signed-zero fix
            mod = np.fmod(l, r)
            mod = np.where((mod != 0) & ((r < 0) != (mod < 0)),
                           mod + r, mod)
            return np.where(mod == 0, np.copysign(0.0, r), mod), True
        if op in ("min", "max"):
            if lf != rf:
                raise _Fallback  # result type varies per element
            l, r = self._aligned(lhs, rhs, lf)
            # np.where mirrors `lhs if lhs <= rhs else rhs` exactly,
            # including NaN and signed-zero behavior
            if op == "min":
                return np.where(l <= r, l, r), lf
            return np.where(l >= r, l, r), lf
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lf != rf:
                # python compares int/float exactly; numpy rounds the
                # int through float64 first — only safe within 2^53
                iv = rhs if lf else lhs
                b = _int_bounds(iv)
                if b[0] < -_F64_EXACT or b[1] > _F64_EXACT:
                    raise _Fallback
            l, r = self._aligned(lhs, rhs, lf or rf)
            res = {
                "==": l == r, "!=": l != r, "<": l < r,
                "<=": l <= r, ">": l > r, ">=": l >= r,
            }[op]
            return np.asarray(res).astype(np.int64), False
        if op in ("&", "|", "^", "<<", ">>"):
            if lf or rf:
                raise _Fallback  # int(float) per element; rare, scalar-only
            l, r = self._as_i64(lhs), self._as_i64(rhs)
            if op in ("<<", ">>"):
                b = _int_bounds(r)
                if b[0] < 0 or b[1] > 62:
                    raise _Fallback  # ValueError / overflow territory
                if op == "<<":
                    lb = _int_bounds(l)
                    _guard_i64(lb[0] << b[1], lb[1] << b[1])
                    return np.left_shift(l, r), False
                return np.right_shift(l, r), False
            fn = {"&": np.bitwise_and, "|": np.bitwise_or,
                  "^": np.bitwise_xor}[op]
            return fn(l, r), False
        raise _Fallback

    def _unop(self, op: str, val, vf: bool):
        if not isinstance(val, np.ndarray):
            try:
                res = _apply_unop(op, val)
            except InterpreterError:
                raise _Fallback from None
            if op in ("exp", "log"):
                raise _Fallback  # libm vs numpy can differ in ULPs
            return res, isinstance(res, float)
        if op == "-":
            if not vf:
                b = _int_bounds(val)
                _guard_i64(-b[0], -b[1])
            return -val, vf
        if op == "abs":
            if not vf and _int_bounds(val)[0] == _I64_MIN:
                raise _Fallback
            return np.abs(val), vf
        if op == "sqrt":
            v = self._as_f64(val, vf)
            if bool((v < 0).any()):
                raise _Fallback  # scalar raises InterpreterError
            return np.sqrt(v), True
        if op == "floor":
            if not vf:
                return val, False
            if not np.isfinite(val).all():
                raise _Fallback  # math.floor raises on nan/inf
            fl = np.floor(val)
            if bool((fl < _I64_MIN).any()) or bool((fl > _I64_MAX).any()):
                raise _Fallback
            return fl.astype(np.int64), False
        if op == "not":
            if vf and bool(np.isnan(val).any()):
                raise _Fallback  # NaN is truthy in python, != 0 in numpy
            return (val == 0).astype(np.int64), False
        raise _Fallback  # exp / log / unknown

    # -- operand plumbing --------------------------------------------------
    @staticmethod
    def _any_zero(rhs) -> bool:
        if isinstance(rhs, np.ndarray):
            return bool((rhs == 0).any())
        return rhs == 0

    @staticmethod
    def _as_i64(v) -> np.ndarray:
        if isinstance(v, np.ndarray):
            return v
        _guard_i64(int(v))
        return np.int64(v)

    @staticmethod
    def _as_f64(v, is_float: bool):
        if isinstance(v, np.ndarray):
            return v.astype(np.float64) if v.dtype.kind != "f" else v
        if is_float:
            return np.float64(v)
        try:
            return np.float64(float(v))  # CPython's exact int->float
        except OverflowError:
            raise _Fallback from None

    def _aligned(self, lhs, rhs, as_float: bool):
        if as_float:
            return self._as_f64(lhs, True), self._as_f64(rhs, True)
        return self._as_i64(lhs), self._as_i64(rhs)

    def _materialize(self, v, is_float: bool, m: int) -> np.ndarray:
        dtype = np.float64 if is_float else np.int64
        if isinstance(v, np.ndarray):
            return v if v.dtype == dtype else v.astype(dtype)
        if not is_float:
            _guard_i64(int(v))
        return np.full(m, v, dtype=dtype)

    def _index_vec(self, v, is_float: bool, m: int) -> np.ndarray:
        """The scalar path computes ``int(eval(index))`` per access."""
        if isinstance(v, np.ndarray):
            if not is_float:
                return v
            if not np.isfinite(v).all():
                raise _Fallback  # int(nan/inf) raises in the scalar path
            t = np.trunc(v)
            if bool((t < _I64_MIN).any()) or bool((t > _I64_MAX).any()):
                raise _Fallback
            return t.astype(np.int64)
        iv = int(v)
        _guard_i64(iv)
        return np.full(m, iv, dtype=np.int64)

    # -- memory ------------------------------------------------------------
    def _image(self, obj: str) -> Optional[np.ndarray]:
        arr = self.pending.get(obj)
        if arr is None:
            arr = self.state.arrays.get(obj)
        return arr

    def _record_access(self, obj: str, idx: np.ndarray,
                       is_write: bool) -> None:
        rec = self.access.get(obj)
        if rec is None:
            rec = self.access[obj] = _AccessRecord()
        rec.instances += 1
        rec.has_store = rec.has_store or is_write
        if rec.first is None:
            rec.first = idx
        elif rec.all_equal and not np.array_equal(rec.first, idx):
            rec.all_equal = False
        # fail the nest the moment legality is decided, not at commit —
        # in-place stencils would otherwise pay a full doomed vectorized
        # pass before their scalar re-run
        if rec.has_store and rec.instances > 1:
            if not rec.all_equal:
                raise _Fallback
            if not rec.checked_unique:
                rec.checked_unique = True
                rec.unique = bool(
                    np.unique(rec.first).size == rec.first.size
                )
            if not rec.unique:
                raise _Fallback

    def _check_legality(self) -> None:
        """Legality is enforced eagerly in :meth:`_record_access`; the
        invariants it maintains make every surviving nest legal here."""

    # -- trace emission ----------------------------------------------------
    def _emit(self, node, ctx: _Ctx, sel: Optional[np.ndarray],
              seq: _Seq, obj: str, idx: np.ndarray,
              is_write: bool) -> None:
        s = seq.next()
        if not self.record_trace:
            return
        full = sel is None
        rows = np.arange(ctx.n, dtype=np.int64) if full else sel
        cols = [c if full else c[sel] for c in ctx.prefix]
        cols.append(rows)
        cols.append(np.full(len(rows), s, dtype=np.int64))
        self.emissions.append(_Emission(
            cols, self.site_ids[id(node)], obj, idx, is_write,
            ctx.uid, full,
        ))

    def _assemble_segment(self) -> Optional[Tuple]:
        """Interleave per-site emissions into program-order columns."""
        ems = self.emissions
        if not ems:
            return None
        names = sorted({e.obj for e in ems})
        name_id = {n: i for i, n in enumerate(names)}
        total = sum(len(e.idx) for e in ems)
        site = np.empty(total, dtype=np.int32)
        obj = np.empty(total, dtype=np.int16)
        idx = np.empty(total, dtype=np.int64)
        w = np.empty(total, dtype=bool)
        k = len(ems)
        if all(e.node_uid == ems[0].node_uid and e.full for e in ems):
            # the common shape: every emission covers the same full
            # table, so program order is a strided interleave
            for j, e in enumerate(ems):
                site[j::k] = e.site
                obj[j::k] = name_id[e.obj]
                idx[j::k] = e.idx
                w[j::k] = e.is_write
            return site, obj, idx, w, tuple(names)
        depth = max(len(e.cols) for e in ems)
        keys = []
        for c in range(depth):
            keys.append(np.concatenate([
                e.cols[c] if c < len(e.cols)
                else np.full(len(e.idx), -1, dtype=np.int64)
                for e in ems
            ]))
        order = np.lexsort(keys[::-1])
        np.concatenate([np.full(len(e.idx), e.site, dtype=np.int32)
                        for e in ems], out=site)
        np.concatenate([np.full(len(e.idx), name_id[e.obj],
                                dtype=np.int16) for e in ems], out=obj)
        np.concatenate([e.idx for e in ems], out=idx)
        np.concatenate([np.full(len(e.idx), e.is_write, dtype=bool)
                        for e in ems], out=w)
        return site[order], obj[order], idx[order], w[order], tuple(names)

    # -- commit ------------------------------------------------------------
    def _fold_into_state(self) -> None:
        st = self.state
        st.counts = st.counts.merged(self.counts)
        for k, v in self.iterations.items():
            st.iterations[k] = st.iterations.get(k, 0) + v
        for k, v in self.obj_accesses.items():
            st.obj_accesses[k] = st.obj_accesses.get(k, 0) + v
        st.inner_iterations += self.inner_iterations
        for k, v in self.inner_iters.items():
            st.inner_iters_by_loop[k] = (
                st.inner_iters_by_loop.get(k, 0) + v
            )
        for k, v in self.inner_invocs.items():
            st.inner_invocations_by_loop[k] = (
                st.inner_invocations_by_loop.get(k, 0) + v
            )
        for name, arr in self.pending.items():
            st.arrays[name][...] = arr


class VecInterpreter:
    """Drop-in :class:`~repro.ir.interp.Interpreter` with whole-loop
    vectorized execution per top-level nest and scalar fallback."""

    def __init__(self, record_trace: bool = False):
        self.record_trace = record_trace
        #: nests executed vectorized vs. by the scalar fallback (telemetry
        #: for tests and the bench harness; not part of the result);
        #: ``jit_nests`` counts the subset of fallbacks that ran through
        #: the specialized per-nest compiler instead of the tree walker
        self.vectorized_nests = 0
        self.fallback_nests = 0
        self.jit_nests = 0

    def run(self, kernel: Kernel,
            arrays: Dict[str, np.ndarray],
            scalars: Optional[Dict[str, float]] = None) -> InterpResult:
        from ..analysis.verifier import assert_kernel_verified

        assert_kernel_verified(kernel, context="interpreter")
        scalar = Interpreter(record_trace=self.record_trace)
        scalar._check_arrays(kernel, arrays)
        env_scalars = dict(kernel.scalars)
        if scalars:
            env_scalars.update(scalars)
        site_ids = kernel.site_ids()
        loop_ids = kernel.innermost_loop_ids()
        scalar._site_ids = site_ids
        scalar._loop_ids = loop_ids
        state = _State(
            arrays=arrays,
            scalars=env_scalars,
            trace=[] if self.record_trace else None,
        )
        innermost = {id(l) for l in kernel.innermost_loops()}
        segments: List[Tuple[str, object]] = []
        for nest_index, loop in enumerate(kernel.loops):
            nest = _NestRun(state, site_ids, loop_ids, innermost,
                            self.record_trace)
            try:
                seg = nest.execute(loop)
            except _Fallback:
                self.fallback_nests += 1
                mark = len(state.trace) if state.trace is not None else 0
                jit = nestjit.compiled_nest(kernel, nest_index, state,
                                            self.record_trace)
                if jit is not None:
                    self.jit_nests += 1
                    jit.execute(state)
                else:
                    scalar._run_loop(loop, state, {}, innermost)
                if state.trace is not None and len(state.trace) > mark:
                    segments.append(("records", (mark, len(state.trace))))
                continue
            self.vectorized_nests += 1
            if seg is not None:
                segments.append(("cols", seg))
        return InterpResult(
            counts=state.counts,
            arrays=arrays,
            trace=(self._merge_trace(segments, state)
                   if self.record_trace else None),
            iterations=dict(state.iterations),
            accesses_per_object=dict(state.obj_accesses),
            inner_iterations=state.inner_iterations,
            inner_iters_by_loop=dict(state.inner_iters_by_loop),
            inner_invocations_by_loop=dict(state.inner_invocations_by_loop),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_trace(segments: List[Tuple[str, object]],
                     state: _State) -> ColumnarTrace:
        if not segments:
            return ColumnarTrace.empty()
        parts = []  # (site, obj_local, idx, w, local_names)
        for kind, payload in segments:
            if kind == "cols":
                parts.append(payload)
            else:
                lo, hi = payload
                ct = ColumnarTrace.from_records(state.trace[lo:hi])
                parts.append((ct.site, ct.obj_id, ct.idx, ct.is_write,
                              ct.obj_names))
        all_names = sorted({n for p in parts for n in p[4]})
        name_id = {n: i for i, n in enumerate(all_names)}
        remapped = []
        for s, o, i, w, local in parts:
            lut = np.array([name_id[n] for n in local] or [0],
                           dtype=np.int16)
            remapped.append((s, lut[o], i, w))
        return ColumnarTrace(
            np.concatenate([p[0] for p in remapped]),
            np.concatenate([p[1] for p in remapped]),
            np.concatenate([p[2] for p in remapped]),
            np.concatenate([p[3] for p in remapped]),
            tuple(all_names),
        )


def make_interpreter(record_trace: bool = False):
    """The functional interpreter the current env config selects."""
    from ..vecpath import vec_path_enabled

    if vec_path_enabled():
        return VecInterpreter(record_trace=record_trace)
    return Interpreter(record_trace=record_trace)

"""Expression nodes of the kernel IR.

Expressions are immutable trees. Python operators are overloaded so that
workload definitions read like the original C loops::

    Store(out, (i, j), a[i, j] * alpha + b[i, j - 1])

``Load`` keeps the *object name* plus a flat index expression; the
multi-dimensional sugar lives on :class:`~repro.ir.program.MemObject`.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

from ..errors import IRError

#: operations charged at "complex ALU" cost (paper: div/sqrt-class units)
COMPLEX_OPS = frozenset({"/", "%", "sqrt", "exp", "log", "rsqrt"})

_BINOPS = frozenset({
    "+", "-", "*", "/", "%", "min", "max",
    "==", "!=", "<", "<=", ">", ">=", "&", "|", "^", "<<", ">>",
})
_UNOPS = frozenset({"-", "abs", "sqrt", "exp", "log", "floor", "not"})

Number = Union[int, float]


def as_expr(value: "ExprLike") -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    raise IRError(f"cannot convert {value!r} to an IR expression")


class Expr:
    """Base expression; subclasses are immutable value objects."""

    __slots__ = ()

    # -- operator sugar ---------------------------------------------------
    def __add__(self, other): return BinOp("+", self, as_expr(other))
    def __radd__(self, other): return BinOp("+", as_expr(other), self)
    def __sub__(self, other): return BinOp("-", self, as_expr(other))
    def __rsub__(self, other): return BinOp("-", as_expr(other), self)
    def __mul__(self, other): return BinOp("*", self, as_expr(other))
    def __rmul__(self, other): return BinOp("*", as_expr(other), self)
    def __truediv__(self, other): return BinOp("/", self, as_expr(other))
    def __rtruediv__(self, other): return BinOp("/", as_expr(other), self)
    def __mod__(self, other): return BinOp("%", self, as_expr(other))
    def __lshift__(self, other): return BinOp("<<", self, as_expr(other))
    def __rshift__(self, other): return BinOp(">>", self, as_expr(other))
    def __and__(self, other): return BinOp("&", self, as_expr(other))
    def __or__(self, other): return BinOp("|", self, as_expr(other))
    def __xor__(self, other): return BinOp("^", self, as_expr(other))
    def __neg__(self): return UnaryOp("-", self)

    # comparisons build predicates (used by Select / When)
    def eq(self, other): return BinOp("==", self, as_expr(other))
    def ne(self, other): return BinOp("!=", self, as_expr(other))
    def lt(self, other): return BinOp("<", self, as_expr(other))
    def le(self, other): return BinOp("<=", self, as_expr(other))
    def gt(self, other): return BinOp(">", self, as_expr(other))
    def ge(self, other): return BinOp(">=", self, as_expr(other))

    def min(self, other): return BinOp("min", self, as_expr(other))
    def max(self, other): return BinOp("max", self, as_expr(other))

    # -- traversal ---------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def loads(self) -> Iterator["Load"]:
        for node in self.walk():
            if isinstance(node, Load):
                yield node

    def loop_vars(self) -> set:
        return {n.name for n in self.walk() if isinstance(n, LoopVar)}

    def op_count(self) -> int:
        """Number of arithmetic operation nodes in this tree."""
        return sum(
            1 for n in self.walk() if isinstance(n, (BinOp, UnaryOp, Select))
        )


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Number):
        if not isinstance(value, (int, float)):
            raise IRError(f"Const value must be numeric, got {value!r}")
        self.value = value

    def __repr__(self) -> str:
        return f"{self.value}"


class LoopVar(Expr):
    """Reference to an induction variable of an enclosing loop."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


class Scalar(Expr):
    """A runtime scalar kernel parameter (read-only inside the kernel)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"${self.name}"


class Temp(Expr):
    """Reference to a loop-local temporary defined by an ``Assign``.

    Temps carry intra-iteration dataflow between statements; reading a
    temp before any assignment in the same iteration is an error caught
    by the interpreter.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"%{self.name}"


class Load(Expr):
    """Read one element of a memory object at a flat index."""

    __slots__ = ("obj", "index")

    def __init__(self, obj: str, index: "ExprLike"):
        self.obj = obj
        self.index = as_expr(index)

    def children(self) -> Tuple[Expr, ...]:
        return (self.index,)

    @property
    def is_indirect(self) -> bool:
        """True when the index itself depends on loaded data."""
        return next(self.index.loads(), None) is not None

    def __repr__(self) -> str:
        return f"{self.obj}[{self.index!r}]"


class BinOp(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: "ExprLike", rhs: "ExprLike"):
        if op not in _BINOPS:
            raise IRError(f"unknown binary op {op!r}")
        self.op = op
        self.lhs = as_expr(lhs)
        self.rhs = as_expr(rhs)

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    @property
    def is_complex(self) -> bool:
        return self.op in COMPLEX_OPS

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: "ExprLike"):
        if op not in _UNOPS:
            raise IRError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = as_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    @property
    def is_complex(self) -> bool:
        return self.op in COMPLEX_OPS

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


class Select(Expr):
    """Predicated choice: ``cond ? if_true : if_false``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: "ExprLike", if_true: "ExprLike",
                 if_false: "ExprLike"):
        self.cond = as_expr(cond)
        self.if_true = as_expr(if_true)
        self.if_false = as_expr(if_false)

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __repr__(self) -> str:
        return f"select({self.cond!r}, {self.if_true!r}, {self.if_false!r})"


ExprLike = Union[Expr, int, float]

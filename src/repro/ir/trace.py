"""Columnar (structure-of-arrays) memory-access traces.

A recorded trace is consumed three ways: replayed element-by-element
through the host path (OoO baseline), grouped by static site for the
offload engine's access streams, and cached/spilled by the trace cache.
All three are better served by four parallel NumPy arrays than by a list
of per-access tuples: entries are ~5x smaller, slicing and per-object
address math vectorize, and pickling is a few buffer copies instead of
millions of tuple constructions.

:class:`ColumnarTrace` keeps full sequence compatibility with the
historical ``List[MemAccess]`` representation — iteration, indexing and
equality all speak :class:`~repro.ir.interp.MemAccess` — so the scalar
reference paths (``REPRO_FAST=0``) and existing tests consume it
unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Sequence, Tuple

import numpy as np


class ColumnarTrace:
    """Program-order element accesses as parallel columns.

    Columns:

    * ``site`` (int32) — static access-site id;
    * ``obj_id`` (int16) — index into :attr:`obj_names`;
    * ``idx`` (int64) — element index within the object;
    * ``is_write`` (bool).
    """

    __slots__ = ("site", "obj_id", "idx", "is_write", "obj_names")

    def __init__(self, site: np.ndarray, obj_id: np.ndarray,
                 idx: np.ndarray, is_write: np.ndarray,
                 obj_names: Tuple[str, ...]):
        n = len(site)
        if not (len(obj_id) == len(idx) == len(is_write) == n):
            raise ValueError("trace columns must have equal lengths")
        self.site = np.ascontiguousarray(site, dtype=np.int32)
        self.obj_id = np.ascontiguousarray(obj_id, dtype=np.int16)
        self.idx = np.ascontiguousarray(idx, dtype=np.int64)
        self.is_write = np.ascontiguousarray(is_write, dtype=bool)
        self.obj_names = tuple(obj_names)

    # -- construction -------------------------------------------------------
    @classmethod
    def empty(cls) -> "ColumnarTrace":
        return cls(
            np.empty(0, np.int32), np.empty(0, np.int16),
            np.empty(0, np.int64), np.empty(0, bool), (),
        )

    @classmethod
    def from_records(cls, records: Sequence) -> "ColumnarTrace":
        """Build from an iterable of ``MemAccess``-shaped tuples."""
        records = list(records)
        if not records:
            return cls.empty()
        sites, objs, idxs, writes = zip(*records)
        # factorize object names in one C pass (traces repeat a handful
        # of names millions of times)
        names, inverse = np.unique(np.asarray(objs), return_inverse=True)
        return cls(
            np.asarray(sites, dtype=np.int32),
            inverse.astype(np.int16),
            np.asarray(idxs, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            tuple(str(n) for n in names),
        )

    # -- sequence protocol (MemAccess compatibility) ------------------------
    def __len__(self) -> int:
        return len(self.site)

    def __iter__(self) -> Iterator:
        from .interp import MemAccess

        names = self.obj_names
        for s, o, i, w in zip(self.site.tolist(), self.obj_id.tolist(),
                              self.idx.tolist(), self.is_write.tolist()):
            yield MemAccess(s, names[o], i, w)

    def __getitem__(self, key):
        from .interp import MemAccess

        if isinstance(key, slice):
            return ColumnarTrace(
                self.site[key], self.obj_id[key], self.idx[key],
                self.is_write[key], self.obj_names,
            )
        return MemAccess(
            int(self.site[key]), self.obj_names[int(self.obj_id[key])],
            int(self.idx[key]), bool(self.is_write[key]),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarTrace):
            return (
                len(self) == len(other)
                and np.array_equal(self.site, other.site)
                and np.array_equal(self.idx, other.idx)
                and np.array_equal(self.is_write, other.is_write)
                and all(a == b for a, b in zip(self._names_per_access(),
                                               other._names_per_access()))
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ColumnarTrace n={len(self)} "
                f"objs={','.join(self.obj_names)}>")

    def _names_per_access(self) -> Iterator[str]:
        names = self.obj_names
        return (names[o] for o in self.obj_id.tolist())

    # -- columnar views -----------------------------------------------------
    @property
    def nbytes(self) -> int:
        return (self.site.nbytes + self.obj_id.nbytes + self.idx.nbytes
                + self.is_write.nbytes)

    def addresses(self, base_for: Mapping[str, int],
                  elem_bytes_for: Mapping[str, int]) -> np.ndarray:
        """Byte address of every access (``base + idx * elem_bytes``)."""
        if not len(self):
            return np.empty(0, dtype=np.int64)
        bases = np.array([base_for[n] for n in self.obj_names],
                         dtype=np.int64)
        ebytes = np.array([elem_bytes_for[n] for n in self.obj_names],
                          dtype=np.int64)
        oid = self.obj_id
        return bases[oid] + self.idx * ebytes[oid]

    def num_writes(self) -> int:
        return int(np.count_nonzero(self.is_write))

    def streams_by_site(self) -> Mapping[int, np.ndarray]:
        """Ordered element-index stream per static site (vectorized
        group-by; a stable sort preserves each site's program order)."""
        if not len(self):
            return {}
        order = np.argsort(self.site, kind="stable")
        sites_sorted = self.site[order]
        idx_sorted = self.idx[order]
        cuts = np.flatnonzero(sites_sorted[1:] != sites_sorted[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [len(sites_sorted)]))
        return {
            int(sites_sorted[lo]): idx_sorted[lo:hi].copy()
            for lo, hi in zip(starts.tolist(), ends.tolist())
        }

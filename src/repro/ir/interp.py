"""Functional interpreter for kernel IR — the golden model.

The interpreter serves three roles:

* **Correctness oracle** — offloaded executions are validated against its
  outputs (the paper: "all our applications with accelerator offloads are
  validated by execution until program completion").
* **Instruction/access accounting** — dynamic op counts by class
  (int/float/complex), loads/stores per object, loop iteration counts;
  these feed the OoO baseline model and Table VI coverage numbers.
* **Address tracing** — optional program-order element access trace that
  drives the cache simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..errors import InterpreterError
from .expr import (
    COMPLEX_OPS,
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from .stmt import Assign, Loop, Stmt, Store, When
from .program import Kernel
from .trace import ColumnarTrace


class MemAccess(NamedTuple):
    """One dynamic element access in program order."""

    site_id: int
    obj: str
    elem_index: int
    is_write: bool


@dataclass
class OpCounts:
    """Dynamic operation counts by functional-unit class."""

    int_ops: int = 0
    float_ops: int = 0
    complex_ops: int = 0
    loads: int = 0
    stores: int = 0
    loop_overhead: int = 0  # induction update + bound compare per iteration

    @property
    def compute_ops(self) -> int:
        return self.int_ops + self.float_ops + self.complex_ops

    @property
    def total_insts(self) -> int:
        return self.compute_ops + self.loads + self.stores + self.loop_overhead

    def merged(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.int_ops + other.int_ops,
            self.float_ops + other.float_ops,
            self.complex_ops + other.complex_ops,
            self.loads + other.loads,
            self.stores + other.stores,
            self.loop_overhead + other.loop_overhead,
        )


@dataclass
class InterpResult:
    """Outputs and accounting from one kernel execution.

    ``trace`` is columnar (:class:`~repro.ir.trace.ColumnarTrace`); it
    iterates as :class:`MemAccess` records in program order.
    """

    counts: OpCounts
    arrays: Dict[str, np.ndarray]
    trace: Optional[ColumnarTrace]
    iterations: Dict[str, int] = field(default_factory=dict)
    accesses_per_object: Dict[str, int] = field(default_factory=dict)
    #: innermost-loop body executions (total inner iterations)
    inner_iterations: int = 0
    #: per-innermost-loop totals, keyed by the loop's stable structural
    #: id (:meth:`~repro.ir.program.Kernel.innermost_loop_ids`): body
    #: iterations and invocation counts (times the loop was entered).
    #: Keying by ``id(loop)`` — as this used to — silently merges counts
    #: across kernels once the allocator reuses a GC'd loop's address.
    inner_iters_by_loop: Dict[int, int] = field(default_factory=dict)
    inner_invocations_by_loop: Dict[int, int] = field(default_factory=dict)


class Interpreter:
    """Tree-walking evaluator with instrumentation."""

    def __init__(self, record_trace: bool = False):
        self.record_trace = record_trace

    def run(self, kernel: Kernel,
            arrays: Dict[str, np.ndarray],
            scalars: Optional[Dict[str, float]] = None) -> InterpResult:
        """Execute ``kernel`` over ``arrays`` (mutated in place).

        ``arrays`` must contain a flat NumPy array per declared object.
        """
        # static legality guard (repro.analysis); env-var opt-out via
        # REPRO_NO_VERIFY=1. Imported lazily: repro.ir must be loadable
        # before repro.analysis (which imports from it).
        from ..analysis.verifier import assert_kernel_verified

        assert_kernel_verified(kernel, context="interpreter")
        self._check_arrays(kernel, arrays)
        env_scalars = dict(kernel.scalars)
        if scalars:
            env_scalars.update(scalars)
        self._site_ids = kernel.site_ids()
        self._loop_ids = kernel.innermost_loop_ids()
        state = _State(
            arrays=arrays,
            scalars=env_scalars,
            trace=[] if self.record_trace else None,
        )
        innermost = {id(l) for l in kernel.innermost_loops()}
        for loop in kernel.loops:
            self._run_loop(loop, state, {}, innermost)
        return InterpResult(
            counts=state.counts,
            arrays=arrays,
            trace=(ColumnarTrace.from_records(state.trace)
                   if state.trace is not None else None),
            iterations=dict(state.iterations),
            accesses_per_object=dict(state.obj_accesses),
            inner_iterations=state.inner_iterations,
            inner_iters_by_loop=dict(state.inner_iters_by_loop),
            inner_invocations_by_loop=dict(state.inner_invocations_by_loop),
        )

    # ------------------------------------------------------------------
    def _check_arrays(self, kernel: Kernel,
                      arrays: Dict[str, np.ndarray]) -> None:
        for name, obj in kernel.objects.items():
            arr = arrays.get(name)
            if arr is None:
                raise InterpreterError(f"missing array for object {name!r}")
            if arr.ndim != 1:
                raise InterpreterError(
                    f"array for {name!r} must be flat, got ndim={arr.ndim}"
                )
            if arr.size != obj.num_elements:
                raise InterpreterError(
                    f"array for {name!r} has {arr.size} elements, "
                    f"object declares {obj.num_elements}"
                )

    # ------------------------------------------------------------------
    def _run_loop(self, loop: Loop, state: "_State",
                  outer_env: Dict[str, float], innermost: set) -> None:
        lower = int(self._eval(loop.lower, outer_env, state))
        upper = int(self._eval(loop.upper, outer_env, state))
        if loop.step == 0:
            # normally rejected at construction (IRError) and by AN-V14;
            # reachable via REPRO_NO_VERIFY=1 + post-hoc mutation, and
            # range() would leak a bare ValueError
            raise InterpreterError(
                f"loop over {loop.var!r} has zero step"
            )
        is_inner = id(loop) in innermost
        if is_inner:
            loop_key = self._loop_ids[id(loop)]
            state.inner_invocations_by_loop[loop_key] = (
                state.inner_invocations_by_loop.get(loop_key, 0) + 1
            )
        env = dict(outer_env)
        iters = 0
        for value in range(lower, upper, loop.step):
            iters += 1
            env = dict(outer_env)
            env[loop.var] = value
            state.counts.loop_overhead += 2  # induction ++ / bound check
            for stmt in loop.body:
                if isinstance(stmt, Loop):
                    self._run_loop(stmt, state, env, innermost)
                else:
                    self._exec_stmt(stmt, env, state)
            if is_inner:
                state.inner_iterations += 1
        if is_inner:
            state.inner_iters_by_loop[loop_key] = (
                state.inner_iters_by_loop.get(loop_key, 0) + iters
            )
        state.iterations[loop.var] = state.iterations.get(loop.var, 0) + iters

    def _exec_stmt(self, stmt: Stmt, env: Dict[str, float],
                   state: "_State") -> None:
        if isinstance(stmt, Assign):
            env[stmt.name] = self._eval(stmt.value, env, state)
        elif isinstance(stmt, Store):
            self._store(stmt, env, state)
        elif isinstance(stmt, When):
            if self._eval(stmt.cond, env, state):
                for inner in stmt.body:
                    self._exec_stmt(inner, env, state)
        else:
            raise InterpreterError(f"unknown statement {stmt!r}")

    def _store(self, stmt: Store, env: Dict[str, float],
               state: "_State") -> None:
        index = int(self._eval(stmt.index, env, state))
        value = self._eval(stmt.value, env, state)
        arr = state.arrays.get(stmt.obj)
        if arr is None:
            raise InterpreterError(
                f"store to unknown object {stmt.obj!r} at index {index}"
            )
        if not (0 <= index < arr.size):
            raise InterpreterError(
                f"store out of bounds: {stmt.obj}[{index}] (size {arr.size})"
            )
        arr[index] = value
        state.counts.stores += 1
        state.obj_accesses[stmt.obj] = state.obj_accesses.get(stmt.obj, 0) + 1
        if state.trace is not None:
            # plain tuple, not MemAccess: structurally identical, and the
            # NamedTuple constructor is measurable at millions of appends
            # (ColumnarTrace.from_records consumes either)
            state.trace.append(
                (self._site_ids[id(stmt)], stmt.obj, index, True)
            )

    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[str, float],
              state: "_State") -> float:
        kind = expr.__class__
        if kind is Const:
            return expr.value
        if kind is LoopVar or kind is Temp:
            try:
                return env[expr.name]
            except KeyError:
                raise InterpreterError(
                    f"unbound name {expr.name!r} in expression"
                ) from None
        if kind is Scalar:
            try:
                return state.scalars[expr.name]
            except KeyError:
                raise InterpreterError(
                    f"unbound scalar {expr.name!r}"
                ) from None
        if kind is Load:
            index = int(self._eval(expr.index, env, state))
            arr = state.arrays.get(expr.obj)
            if arr is None:
                raise InterpreterError(
                    f"load from unknown object {expr.obj!r} at index {index}"
                )
            if not (0 <= index < arr.size):
                raise InterpreterError(
                    f"load out of bounds: {expr.obj}[{index}] "
                    f"(size {arr.size})"
                )
            state.counts.loads += 1
            state.obj_accesses[expr.obj] = (
                state.obj_accesses.get(expr.obj, 0) + 1
            )
            if state.trace is not None:
                state.trace.append(
                    (self._site_ids[id(expr)], expr.obj, index, False)
                )
            return arr[index].item()
        if kind is BinOp:
            lhs = self._eval(expr.lhs, env, state)
            rhs = self._eval(expr.rhs, env, state)
            # _count_op inlined (hottest interpreter operation)
            op = expr.op
            counts = state.counts
            if op in COMPLEX_OPS:
                counts.complex_ops += 1
            elif isinstance(lhs, float) or isinstance(rhs, float):
                counts.float_ops += 1
            else:
                counts.int_ops += 1
            return _apply_binop(op, lhs, rhs)
        if kind is UnaryOp:
            val = self._eval(expr.operand, env, state)
            self._count_op(expr.op, val, 0, state)
            return _apply_unop(expr.op, val)
        if kind is Select:
            cond = self._eval(expr.cond, env, state)
            state.counts.int_ops += 1  # the select itself
            branch = expr.if_true if cond else expr.if_false
            return self._eval(branch, env, state)
        raise InterpreterError(f"unknown expression {expr!r}")

    @staticmethod
    def _count_op(op: str, lhs: float, rhs: float, state: "_State") -> None:
        counts = state.counts
        if op in COMPLEX_OPS:
            counts.complex_ops += 1
        elif isinstance(lhs, float) or isinstance(rhs, float):
            counts.float_ops += 1
        else:
            counts.int_ops += 1


def _apply_binop(op: str, lhs, rhs):
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, int) and isinstance(rhs, int):
            if rhs == 0:
                raise InterpreterError("integer division by zero")
            # trunc-toward-zero without the float64 round trip that
            # corrupts quotients once |operands| reach 2^53
            return -(-lhs // rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs
        return lhs / rhs
    if op == "%":
        if rhs == 0:
            raise InterpreterError("modulo by zero")
        return lhs % rhs
    if op == "min":
        return lhs if lhs <= rhs else rhs
    if op == "max":
        return lhs if lhs >= rhs else rhs
    if op == "==":
        return 1 if lhs == rhs else 0
    if op == "!=":
        return 1 if lhs != rhs else 0
    if op == "<":
        return 1 if lhs < rhs else 0
    if op == "<=":
        return 1 if lhs <= rhs else 0
    if op == ">":
        return 1 if lhs > rhs else 0
    if op == ">=":
        return 1 if lhs >= rhs else 0
    if op == "&":
        return int(lhs) & int(rhs)
    if op == "|":
        return int(lhs) | int(rhs)
    if op == "^":
        return int(lhs) ^ int(rhs)
    if op == "<<":
        return int(lhs) << int(rhs)
    if op == ">>":
        return int(lhs) >> int(rhs)
    raise InterpreterError(f"unhandled binary op {op!r}")


def _apply_unop(op: str, val):
    import math

    if op == "-":
        return -val
    if op == "abs":
        return abs(val)
    if op == "sqrt":
        if val < 0:
            raise InterpreterError(f"sqrt of negative value {val}")
        return math.sqrt(val)
    if op == "exp":
        return math.exp(val)
    if op == "log":
        if val <= 0:
            raise InterpreterError(f"log of non-positive value {val}")
        return math.log(val)
    if op == "floor":
        return math.floor(val)
    if op == "not":
        return 0 if val else 1
    raise InterpreterError(f"unhandled unary op {op!r}")


@dataclass
class _State:
    arrays: Dict[str, np.ndarray]
    scalars: Dict[str, float]
    #: MemAccess-shaped plain tuples (site_id, obj, elem_index, is_write)
    trace: Optional[List[Tuple[int, str, int, bool]]]
    counts: OpCounts = field(default_factory=OpCounts)
    iterations: Dict[str, int] = field(default_factory=dict)
    obj_accesses: Dict[str, int] = field(default_factory=dict)
    inner_iterations: int = 0
    inner_iters_by_loop: Dict[int, int] = field(default_factory=dict)
    inner_invocations_by_loop: Dict[int, int] = field(default_factory=dict)

"""Observability layer: process-local counters, timers and cell stats.

Usage::

    from ..obs import OBS

    OBS.inc("interp.invocations")
    with OBS.time("matrix.populate"):
        ...

``OBS`` is process-local mutable state that never feeds back into
simulation results; parallel experiment workers return ``OBS.snapshot()``
to the parent, which calls ``OBS.merge(snap)``.
"""

from .stats import OBS, CellStat, StatsRegistry, SweepProgress

__all__ = ["OBS", "CellStat", "StatsRegistry", "SweepProgress"]

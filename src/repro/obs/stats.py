"""Run observability: counters, maxima, timers and per-cell records.

Every layer of the simulator (experiment runner, system simulator,
offload engine, memory hierarchy) reports into a process-local
:class:`StatsRegistry`. The registry is deliberately *outside* the
simulated-machine state: nothing in it may influence simulation results,
only describe them. Snapshots are plain picklable dicts so worker
processes of the parallel experiment runner can ship their stats back to
the parent, which merges them (counters add, maxima take the max, cell
records concatenate).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass
class CellStat:
    """Wall-clock record of one completed (workload, config) cell."""

    workload: str
    config: str
    wall_s: float
    #: longest functional trace (in element accesses) of any kernel call
    #: the cell executed or replayed
    trace_elems: int = 0

    def as_tuple(self):
        return (self.workload, self.config, self.wall_s, self.trace_elems)


class StatsRegistry:
    """Mergeable process-local registry of counters, maxima and timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.maxima: Dict[str, float] = {}
        #: name -> [total_seconds, invocations]
        self.timers: Dict[str, List[float]] = {}
        self.cells: List[CellStat] = []

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def observe_max(self, name: str, value: float) -> None:
        if value > self.maxima.get(name, float("-inf")):
            self.maxima[name] = value

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        """Record one already-measured duration (for spans that start
        and end on different threads, e.g. serve queue latency)."""
        entry = self.timers.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += 1

    def add_cell(self, cell: CellStat) -> None:
        self.cells.append(cell)

    # -- queries -----------------------------------------------------------
    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        self.counters.clear()
        self.maxima.clear()
        self.timers.clear()
        self.cells.clear()

    def snapshot(self) -> dict:
        """Picklable copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "maxima": dict(self.maxima),
            "timers": {k: list(v) for k, v in self.timers.items()},
            "cells": [c.as_tuple() for c in self.cells],
        }

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for name, n in snap.get("counters", {}).items():
            self.inc(name, n)
        for name, v in snap.get("maxima", {}).items():
            self.observe_max(name, v)
        for name, (total, count) in snap.get("timers", {}).items():
            entry = self.timers.setdefault(name, [0.0, 0])
            entry[0] += total
            entry[1] += count
        for workload, config, wall_s, trace_elems in snap.get("cells", []):
            self.add_cell(CellStat(workload, config, wall_s, trace_elems))

    # -- reporting ---------------------------------------------------------
    def report(self, slowest: int = 10) -> str:
        """Human-readable report section (the CLI's ``--stats`` output)."""
        lines = ["Run statistics"]
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<32} {self.counters[name]:,.0f}")
        if self.maxima:
            lines.append("  maxima:")
            for name in sorted(self.maxima):
                lines.append(f"    {name:<32} {self.maxima[name]:,.0f}")
        if self.timers:
            lines.append("  timers:")
            for name in sorted(self.timers):
                total, count = self.timers[name]
                mean = total / count if count else 0.0
                lines.append(
                    f"    {name:<32} {total:8.2f}s total"
                    f"  {count:6.0f} calls  {mean * 1e3:8.2f} ms/call"
                )
        if self.cells:
            total = sum(c.wall_s for c in self.cells)
            lines.append(
                f"  cells: {len(self.cells)} completed, "
                f"{total:.2f}s simulated wall-clock"
            )
            ranked = sorted(self.cells, key=lambda c: c.wall_s, reverse=True)
            for cell in ranked[:slowest]:
                lines.append(
                    f"    {cell.workload:>5} x {cell.config:<12}"
                    f" {cell.wall_s:7.2f}s"
                    f"  trace={cell.trace_elems:,d} elems"
                )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


class SweepProgress:
    """Progress/throughput tracker for one design-space sweep.

    Counts completed, failed and skipped (resume-hit) points against the
    planned total and renders one-line status strings with points/s and
    an ETA. Purely observational: reports into the ``dse.*`` counters of
    ``registry`` (default :data:`OBS`) and never touches results.
    """

    def __init__(self, total: int,
                 registry: "StatsRegistry" = None) -> None:
        self.total = int(total)
        self.done = 0
        self.failed = 0
        self.skipped = 0
        self._registry = registry if registry is not None else OBS
        self._start = time.perf_counter()

    def skip(self, n: int = 1) -> None:
        self.skipped += n
        self._registry.inc("dse.points_skipped", n)

    def complete(self, failed: bool = False) -> None:
        self.done += 1
        self._registry.inc("dse.points_done")
        if failed:
            self.failed += 1
            self._registry.inc("dse.points_failed")

    @property
    def remaining(self) -> int:
        return max(self.total - self.skipped - self.done, 0)

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._start

    @property
    def points_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    def line(self, detail: str = "") -> str:
        """One status line: ``[done+skipped/total] detail (rate, eta)``."""
        rate = self.points_per_s
        eta = self.remaining / rate if rate > 0 else float("inf")
        eta_txt = f"eta {eta:.0f}s" if eta != float("inf") else "eta ?"
        parts = [f"[{self.done + self.skipped}/{self.total}]"]
        if detail:
            parts.append(detail)
        suffix = [f"{rate:.2f} pts/s", eta_txt]
        if self.failed:
            suffix.append(f"{self.failed} failed")
        if self.skipped:
            suffix.append(f"{self.skipped} resumed")
        parts.append("(" + ", ".join(suffix) + ")")
        return " ".join(parts)


#: the process-wide default registry every simulator layer reports into
OBS = StatsRegistry()

"""Horizontal placement: assigning partitions to L3 clusters.

Greedy allocation-time policy (paper §V-A-4 / §V-B): "At allocation time,
the access nodes are assigned a home LLC cluster based on the address of
its first access." Compute-only partitions (no anchored object) are
placed at the cluster of the partition they exchange the most bits with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from ..errors import PlacementError
from ..mem.nuca import NucaL3
from ..mem.slab import Allocation
from ..partition.iterate import DfgPartitioning


def place_partitions(partitioning: DfgPartitioning,
                     allocations: Dict[str, Allocation],
                     nuca: NucaL3,
                     first_offsets: Optional[Dict[str, int]] = None
                     ) -> Dict[int, int]:
    """Map each partition to an L3 cluster; returns partition -> cluster.

    ``first_offsets`` optionally gives the byte offset of the first
    dynamic access per object (defaults to 0 — the object base).
    """
    first_offsets = first_offsets or {}
    clusters: Dict[int, int] = {}
    # anchored partitions: home cluster of the first access's address
    for part in range(partitioning.num_partitions):
        objs = partitioning.objects.get(part, set())
        if not objs:
            continue
        if len(objs) > 1:
            raise PlacementError(
                f"partition {part} anchors several objects: {sorted(objs)}"
            )
        obj = next(iter(objs))
        alloc = allocations.get(obj)
        if alloc is None:
            raise PlacementError(f"object {obj!r} has no allocation")
        addr = alloc.base + first_offsets.get(obj, 0)
        clusters[part] = nuca.home_cluster(addr)

    # compute-only partitions: follow the heaviest-communication partner
    affinity: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for edge in partitioning.dfg.edges:
        src_part = partitioning.assignment[edge.src]
        dst_part = partitioning.assignment[edge.dst]
        if src_part != dst_part:
            affinity[src_part][dst_part] += edge.width_bits
            affinity[dst_part][src_part] += edge.width_bits

    pending = [
        p for p in range(partitioning.num_partitions) if p not in clusters
    ]
    # iterate until fixed point (chains of compute-only partitions)
    for _ in range(len(pending) + 1):
        progressed = False
        for part in list(pending):
            partners = affinity.get(part, {})
            placed = [
                (bits, other) for other, bits in partners.items()
                if other in clusters
            ]
            if placed:
                _, best = max(placed, key=lambda t: (t[0], -t[1]))
                clusters[part] = clusters[best]
                pending.remove(part)
                progressed = True
        if not pending or not progressed:
            break
    for part in pending:  # isolated compute-only partition: cluster 0
        clusters[part] = 0
    return clusters

"""Vertical placement: LLC cluster vs. near-host (paper §V-A-4)."""

from __future__ import annotations

import enum
from typing import Optional

from ..dfg.node import AccessNode, AccessPattern
from ..ir.program import MemObject

#: below this per-invocation trip count, offloading a short irregular
#: sequence to the LLC does not amortize the control transfer
SHORT_SEQUENCE_ITERS = 16


class PlacementLevel(enum.Enum):
    L3_CLUSTER = "l3"
    NEAR_HOST = "host"


def vertical_placement(access: AccessNode, obj: Optional[MemObject],
                       expected_trip_count: Optional[int] = None
                       ) -> PlacementLevel:
    """Choose the hierarchy level for one access node.

    Long strided accesses amortize at the LLC. Irregular (indirect/random)
    accesses over short sequences need more control data per useful byte
    and stay near the host; over long sequences locality at the LLC still
    wins (the paper offloads bfs/pointer-chase indirections to the LLC).
    """
    trips = expected_trip_count if expected_trip_count is not None else 10**9
    if access.pattern in (AccessPattern.STREAM, AccessPattern.INVARIANT):
        if trips < SHORT_SEQUENCE_ITERS:
            return PlacementLevel.NEAR_HOST
        return PlacementLevel.L3_CLUSTER
    # indirect / random
    if trips < SHORT_SEQUENCE_ITERS:
        return PlacementLevel.NEAR_HOST
    if obj is not None and obj.size_bytes <= 4 * 1024:
        # a tiny irregular structure fits next to the host anyway
        return PlacementLevel.NEAR_HOST
    return PlacementLevel.L3_CLUSTER

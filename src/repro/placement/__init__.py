"""Access/compute node placement in the memory hierarchy (paper §V-A-4).

Two decisions, made at different times:

* **Vertical** (compile time) — is a partition's access unit worth placing
  at the LLC, or should it stay near the host? "Long strided accesses are
  marked to be placed at L3, whereas irregular accesses to shorter
  sequences are placed closer to the host."
* **Horizontal** (allocation time) — which L3 cluster hosts the access
  unit? The greedy policy anchors it to the home cluster of the first
  access's address; compute-only partitions follow their heaviest
  communication partner.
"""

from .vertical import PlacementLevel, vertical_placement
from .horizontal import place_partitions

__all__ = ["PlacementLevel", "vertical_placement", "place_partitions"]

"""Affine dependence & footprint analysis (rules AN-D01..AN-D03).

Per innermost loop, summarizes every memory access as an
:class:`AccessRegion` (object, stride w.r.t. the induction variable,
static element interval) and runs a GCD + interval loop-carried
dependence test, statically classifying the loop as

* ``PARALLEL``   — iterations provably independent,
* ``REDUCTION``  — the only carried dependence is an accumulator
  (loop-invariant store address read back in the same loop),
* ``SERIAL``     — a carried dependence exists or independence cannot
  be proven (indirect/unanalyzable accesses).

The classification is deliberately redundant with
:func:`repro.dfg.classify.classify_kernel_loop` — the DFG classifier
decides *how to offload*, this pass decides *what is true of the
memory accesses* — and rule AN-D03 cross-checks the two: a genuine
contradiction means one of the analyses has a bug.

Rules
-----
==========  ========  =====================================================
AN-D01      error     loop annotated ``parallel=True`` but a loop-carried
                      dependence exists (or cannot be excluded)
AN-D02      info      reduction loop (carried accumulator)
AN-D03      error     dependence classification contradicts the DFG
                      offload classifier
==========  ========  =====================================================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dfg.classify import Classification, classify_kernel_loop
from ..dfg.node import AccessPattern
from ..dfg.scev import analyze_index, classify_pattern
from ..ir.expr import Expr
from ..ir.program import Kernel
from ..ir.stmt import Loop, Stmt, Store, When
from .findings import Finding, Severity
from .ranges import Env, affine_form, affine_range, expr_interval, \
    loop_var_range


class DepKind(enum.Enum):
    PARALLEL = "parallel"
    REDUCTION = "reduction"
    SERIAL = "serial"


@dataclass(frozen=True)
class AccessRegion:
    """Summary of one static access site w.r.t. an innermost loop."""

    obj: str
    is_write: bool
    pattern: AccessPattern
    #: element stride per innermost iteration (None = not affine)
    stride: Optional[int]
    #: constant part of the affine index (None = unknown/outer-dependent)
    offset: Optional[int]
    outer_dependent: bool
    #: static element interval touched over the whole loop, when known
    interval: Optional[Tuple[int, int]]
    #: canonical index text, for same-address (RMW) detection
    index_repr: str
    guarded: bool = False


@dataclass
class LoopDepSummary:
    """Dependence summary of one innermost loop."""

    var: str
    location: str
    reads: Tuple[AccessRegion, ...]
    writes: Tuple[AccessRegion, ...]
    kind: DepKind
    reasons: Tuple[str, ...]

    def regions_of(self, obj: str) -> List[AccessRegion]:
        return [r for r in self.reads + self.writes if r.obj == obj]


# ---------------------------------------------------------------------------
# region extraction
# ---------------------------------------------------------------------------
def _region(obj: str, index: Expr, is_write: bool, var: str, env: Env,
            guarded: bool) -> AccessRegion:
    rec = analyze_index(index, var)
    interval = None
    form = affine_form(index)
    if form is not None:
        res = affine_range(form[0], form[1], env)
        if res is not None:
            interval = (res[0], res[1])
    else:
        interval = expr_interval(index, env)
    return AccessRegion(
        obj=obj, is_write=is_write,
        pattern=classify_pattern(index, var),
        stride=rec.stride if rec is not None else None,
        offset=rec.const_offset if rec is not None else None,
        outer_dependent=rec.outer_dependent if rec is not None else False,
        interval=interval,
        index_repr=repr(index),
        guarded=guarded,
    )


def _collect_regions(loop: Loop, var: str, env: Env,
                     guarded: bool = False
                     ) -> Tuple[List[AccessRegion], List[AccessRegion]]:
    reads: List[AccessRegion] = []
    writes: List[AccessRegion] = []

    def visit_expr(expr: Expr, in_when: bool) -> None:
        for load in expr.loads():
            reads.append(_region(load.obj, load.index, False, var, env,
                                 in_when))

    def visit_body(body: Sequence[Stmt], in_when: bool) -> None:
        for stmt in body:
            if isinstance(stmt, Loop):  # defensive: innermost has none
                for e in stmt.expressions():
                    visit_expr(e, in_when)
                visit_body(stmt.body, in_when)
            elif isinstance(stmt, When):
                visit_expr(stmt.cond, in_when)
                visit_body(stmt.body, True)
            elif isinstance(stmt, Store):
                visit_expr(stmt.index, in_when)
                visit_expr(stmt.value, in_when)
                writes.append(_region(stmt.obj, stmt.index, True, var,
                                      env, in_when))
            else:
                for e in stmt.expressions():
                    visit_expr(e, in_when)

    visit_body(loop.body, guarded)
    return reads, writes


# ---------------------------------------------------------------------------
# dependence testing
# ---------------------------------------------------------------------------
def _disjoint(a: Optional[Tuple[int, int]],
              b: Optional[Tuple[int, int]]) -> bool:
    return (a is not None and b is not None
            and (a[1] < b[0] or b[1] < a[0]))


def _carried(write: AccessRegion, other: AccessRegion,
             trip_bound: Optional[int]) -> Optional[str]:
    """Reason a loop-carried dependence may exist between ``write`` and
    ``other`` (a read or another write); None = provably independent or
    same-iteration-only (plain RMW)."""
    if _disjoint(write.interval, other.interval):
        return None
    if write.stride is None:
        return "unanalyzable write index"
    if other.stride is None:
        kind = "write" if other.is_write else "read"
        return f"unanalyzable {kind} index"
    sw, so = write.stride, other.stride
    ow, oo = write.offset, other.offset
    if sw == 0 and so == 0:
        if write.index_repr == other.index_repr:
            return "loop-carried accumulator"
        if (ow is not None and oo is not None
                and not write.outer_dependent
                and not other.outer_dependent):
            return None if ow != oo else "loop-carried accumulator"
        return "loop-carried accumulator"
    if sw == 0 or so == 0:
        # one side fixed, the other sweeps: the sweep crosses the fixed
        # element unless the intervals are disjoint (checked above)
        return "invariant/stream overlap"
    if write.index_repr == other.index_repr:
        return None  # identical address every iteration: RMW only
    if sw == so:
        if (ow is not None and oo is not None
                and not write.outer_dependent
                and not other.outer_dependent):
            if ow == oo:
                return None  # same element, same iteration
            dist = oo - ow
            if dist % sw != 0:
                return None  # offsets never align across iterations
            if trip_bound is not None and abs(dist // sw) >= trip_bound:
                return None  # dependence distance exceeds the trip count
            return f"carried dependence, distance {dist // sw}"
        return "possibly overlapping equal-stride accesses"
    g = math.gcd(abs(sw), abs(so))
    if (ow is not None and oo is not None
            and not write.outer_dependent and not other.outer_dependent
            and (oo - ow) % g != 0):
        return None  # GCD test: address lattices never intersect
    return "cross-stride overlap"


def analyze_innermost_loop(loop: Loop, kernel: Kernel,
                           env: Optional[Env] = None,
                           location: str = "") -> LoopDepSummary:
    """Region summaries + dependence classification of one innermost
    loop. ``env`` supplies enclosing-loop variable ranges."""
    env = dict(env or {})
    var_range = loop_var_range(loop, env)
    trip_bound = None
    if var_range is not None and not var_range.empty:
        env[loop.var] = var_range
        if var_range.exact and loop.step != 0:
            trip_bound = (var_range.hi - var_range.lo) // abs(loop.step) + 1
    reads, writes = _collect_regions(loop, loop.var, env)

    kind = DepKind.PARALLEL
    reasons: List[str] = []
    for i, w in enumerate(writes):
        others = reads + writes[i + 1:]
        for other in others:
            if other.obj != w.obj:
                continue
            reason = _carried(w, other, trip_bound)
            if reason is None:
                continue
            if reason == "loop-carried accumulator":
                if kind is not DepKind.SERIAL:
                    kind = DepKind.REDUCTION
            else:
                kind = DepKind.SERIAL
            reasons.append(f"{w.obj}: {reason}")
    return LoopDepSummary(
        var=loop.var, location=location or f"{kernel.name}/loop[{loop.var}]",
        reads=tuple(reads), writes=tuple(writes),
        kind=kind, reasons=tuple(dict.fromkeys(reasons)),
    )


def innermost_walk(kernel: Kernel) -> Iterator[Tuple[Loop, Env, str]]:
    """Yield ``(loop, enclosing_env, path)`` for every innermost loop.

    Paths are unique: a sibling loop reusing an enclosing-level variable
    name gets an ordinal suffix (``loop[i#2]``).
    """

    def walk(loops: Sequence[Loop], env: Env, prefix: str
             ) -> Iterator[Tuple[Loop, Env, str]]:
        seen: Dict[str, int] = {}
        for loop in loops:
            n = seen.get(loop.var, 0)
            seen[loop.var] = n + 1
            seg = (f"loop[{loop.var}]" if n == 0
                   else f"loop[{loop.var}#{n + 1}]")
            path = f"{prefix}/{seg}"
            inner = loop.inner_loops()
            if not inner:
                yield loop, env, path
                continue
            rng = loop_var_range(loop, env)
            inner_env = dict(env)
            if rng is not None and not rng.empty:
                inner_env[loop.var] = rng
            yield from walk(inner, inner_env, path)

    yield from walk(kernel.loops, {}, kernel.name)


def analyze_kernel(kernel: Kernel) -> List[LoopDepSummary]:
    """Dependence summaries for every innermost loop of ``kernel``."""
    return [analyze_innermost_loop(loop, kernel, env, location=path)
            for loop, env, path in innermost_walk(kernel)]


# ---------------------------------------------------------------------------
# cross-check against the DFG offload classifier
# ---------------------------------------------------------------------------
def agrees_with_classification(kind: DepKind,
                               classification: Classification) -> bool:
    """True when the dependence class and the offload class can both be
    right. The offload classifier answers a different question (how to
    legally offload), so several pairs are compatible:

    * ``PARALLEL``  ↔ PARALLELIZABLE, or PIPELINABLE (the offloader may
      be more conservative than the GCD/interval test);
    * ``REDUCTION``/``SERIAL`` ↔ PIPELINABLE or SERIAL.

    The contradictions are ``PARALLEL`` ↔ SERIAL (we proved independence
    where the offloader found a hard serial chain) and non-``PARALLEL``
    ↔ PARALLELIZABLE (the offloader claims independence we refuted).
    """
    if kind is DepKind.PARALLEL:
        return classification is not Classification.SERIAL
    return classification is not Classification.PARALLELIZABLE


def dependence_findings(kernel: Kernel) -> List[Finding]:
    """AN-D01..AN-D03 lint findings for ``kernel``."""
    findings: List[Finding] = []
    for loop, env, path in innermost_walk(kernel):
        summary = analyze_innermost_loop(loop, kernel, env, location=path)
        if loop.parallel and summary.kind is not DepKind.PARALLEL:
            findings.append(Finding(
                rule="AN-D01", severity=Severity.ERROR, location=path,
                message=(
                    f"loop over {loop.var!r} is annotated parallel but "
                    f"analysis found: {'; '.join(summary.reasons)}"
                ),
                kernel=kernel.name,
            ))
        if summary.kind is DepKind.REDUCTION:
            findings.append(Finding(
                rule="AN-D02", severity=Severity.INFO, location=path,
                message=(
                    f"reduction loop: {'; '.join(summary.reasons)}"
                ),
                kernel=kernel.name,
            ))
        classify = classify_kernel_loop(loop, kernel)
        if not agrees_with_classification(summary.kind, classify.kind):
            findings.append(Finding(
                rule="AN-D03", severity=Severity.ERROR, location=path,
                message=(
                    f"dependence analysis says {summary.kind.value} "
                    f"({'; '.join(summary.reasons) or 'no dependences'}) "
                    f"but the offload classifier says "
                    f"{classify.kind.value} "
                    f"({'; '.join(classify.reasons) or 'no reasons'})"
                ),
                kernel=kernel.name,
            ))
    return findings

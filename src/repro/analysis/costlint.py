"""AN-C offload lint: interval comparisons that decide offload choices.

The lint takes the static cost intervals from
:mod:`repro.analysis.cost` and compares accelerator configurations
against the host (``ooo``) baseline per decisive metric. Because the
intervals are sound, a *disjoint* comparison is a proof:

* ``AN-C04`` (INFO) — the accelerator's upper bound beats the host's
  lower bound, so the offload wins regardless of dynamics.
* ``AN-C03`` (WARNING) — the accelerator's lower bound exceeds the
  host's upper bound, so offloading provably loses. This is rare in
  practice: the host upper bound must assume worst-case memory stalls,
  so only pathologically offload-hostile kernels are decidable.

The advisory codes carry the raw data: ``AN-C01`` summarises the
model's view of the workload (footprint, calls, distinct-line bound),
``AN-C02`` reports each configuration's time/energy interval, and
``AN-C05`` (ERROR) flags a *soundness violation* — a measured run that
escaped its static interval, which means the cost model itself is wrong
and must be fixed (the differential oracle turns these into test
failures; the DSE report turns them into hard sweep failures).

Most real workloads are *undecided*: their intervals overlap. That is
the honest answer — the lint only speaks when the proof is airtight.
:func:`demo_decision_instance` builds a compute-dense workload whose
offload win is statically provable, used by the CLI tests and docs as
the canonical decided case; it is deliberately not registered in the
workload registry (it is a lint fixture, not a paper workload).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.program import Kernel, MemObject
from ..ir.types import INT32
from ..ir.expr import LoopVar, Temp
from ..ir.stmt import Assign, Loop
from ..params import MachineParams, experiment_machine
from ..workloads.base import KernelCall, WorkloadInstance
from .cost import BoundViolation, CostReport, Interval, workload_cost_report
from .findings import Finding, Severity

#: finding codes emitted by this pass family
RULE_SUMMARY = "AN-C01"
RULE_INTERVALS = "AN-C02"
RULE_LOSES = "AN-C03"
RULE_WINS = "AN-C04"
RULE_UNSOUND = "AN-C05"

#: metrics on which an offload decision is adjudicated
DECISIVE_METRICS = ("time_ps", "energy_pj")

#: configurations the lint compares against the host baseline
DEFAULT_BASELINE = "ooo"
DEFAULT_TARGETS = (
    "mono_ca", "mono_da_io", "mono_da_f", "dist_da_io", "dist_da_f",
)


def _fmt_interval(iv: Interval) -> str:
    hi = "inf" if iv.hi == float("inf") else f"{iv.hi:.4g}"
    return f"[{iv.lo:.4g}, {hi}]"


def compare_configs(report: CostReport, baseline: str, target: str,
                    metric: str) -> Optional[bool]:
    """Adjudicate ``target`` vs ``baseline`` on ``metric``.

    Returns ``True`` when the target provably wins (its upper bound is
    below the baseline's lower bound), ``False`` when it provably loses,
    and ``None`` when the intervals overlap (undecided).
    """
    base = report.metrics.get(baseline, {}).get(metric)
    tgt = report.metrics.get(target, {}).get(metric)
    if base is None or tgt is None:
        return None
    if tgt.hi < base.lo:
        return True
    if tgt.lo > base.hi:
        return False
    return None


def decision_findings(report: CostReport,
                      baseline: str = DEFAULT_BASELINE,
                      targets: Sequence[str] = DEFAULT_TARGETS,
                      ) -> List[Finding]:
    """AN-C03/AN-C04 findings for every decided config comparison."""
    findings: List[Finding] = []
    for target in targets:
        if target not in report.metrics:
            continue
        for metric in DECISIVE_METRICS:
            verdict = compare_configs(report, baseline, target, metric)
            if verdict is None:
                continue
            base = report.metrics[baseline][metric]
            tgt = report.metrics[target][metric]
            if verdict:
                findings.append(Finding(
                    rule=RULE_WINS, severity=Severity.INFO,
                    kernel=report.workload,
                    location=f"{report.workload}/{target}",
                    message=(
                        f"offload to {target!r} provably wins on {metric}: "
                        f"static bound {_fmt_interval(tgt)} is entirely "
                        f"below {baseline!r} {_fmt_interval(base)}"
                    ),
                ))
            else:
                findings.append(Finding(
                    rule=RULE_LOSES, severity=Severity.WARNING,
                    kernel=report.workload,
                    location=f"{report.workload}/{target}",
                    message=(
                        f"offload to {target!r} provably loses on {metric}: "
                        f"static bound {_fmt_interval(tgt)} is entirely "
                        f"above {baseline!r} {_fmt_interval(base)}"
                    ),
                ))
    return findings


def report_findings(report: CostReport,
                    baseline: str = DEFAULT_BASELINE,
                    targets: Sequence[str] = DEFAULT_TARGETS,
                    ) -> List[Finding]:
    """All AN-C findings for one workload cost report."""
    findings = [Finding(
        rule=RULE_SUMMARY, severity=Severity.INFO,
        kernel=report.workload, location=report.workload,
        message=(
            f"static cost model: {report.ncalls} call(s), footprint "
            f"{report.footprint_bytes} B"
            + (f"; {'; '.join(report.notes)}" if report.notes else "")
        ),
    )]
    for config in report.metrics:
        time_iv = report.metrics[config]["time_ps"]
        energy_iv = report.metrics[config]["energy_pj"]
        findings.append(Finding(
            rule=RULE_INTERVALS, severity=Severity.INFO,
            kernel=report.workload,
            location=f"{report.workload}/{config}",
            message=(
                f"time_ps {_fmt_interval(time_iv)}, "
                f"energy_pj {_fmt_interval(energy_iv)}"
            ),
        ))
    findings.extend(decision_findings(report, baseline, targets))
    return findings


def soundness_finding(workload: str, violation: BoundViolation) -> Finding:
    """AN-C05: a measured run escaped its static interval."""
    return Finding(
        rule=RULE_UNSOUND, severity=Severity.ERROR,
        kernel=workload,
        location=f"{workload}/{violation.config}",
        message=f"static bound violated: {violation.format()}",
    )


def cost_findings(instance: WorkloadInstance,
                  machine: Optional[MachineParams] = None,
                  configs: Optional[Sequence[str]] = None,
                  baseline: str = DEFAULT_BASELINE,
                  targets: Sequence[str] = DEFAULT_TARGETS,
                  ) -> Tuple[CostReport, List[Finding]]:
    """Run the cost model on a workload instance and lint the result.

    Consumes ``instance`` (the model replays its schedule through the
    golden interpreter to learn concrete trip counts).
    """
    machine = machine or experiment_machine()
    report = workload_cost_report(instance, machine, configs=configs)
    return report, report_findings(report, baseline, targets)


# ---------------------------------------------------------------------------
# the canonical statically-decidable workload
# ---------------------------------------------------------------------------

#: iterations of the demo kernel's single loop
DEMO_TRIPS = 768
#: repetitions of the 3-int-op round ``x = (x & 1023) * 3 + 1``; the
#: CGRA register file caps the DFG at ~250 nodes, so this is near the
#: largest compute density one partition can hold
DEMO_ROUNDS = 78


def _demo_kernel(n: int, rounds: int) -> Kernel:
    a = MemObject("a", (n,), INT32)
    out = MemObject("out", (n,), INT32)
    i = LoopVar("i")
    # one Assign per round keeps every expression tree shallow (a single
    # nested chain would exceed the recursive walker's depth)
    body = [Assign("x0", a[i])]
    for r in range(rounds):
        # three integer ops per round; the mask keeps values bounded so
        # the interpreter and the NumPy reference agree exactly
        body.append(Assign(f"x{r + 1}", (Temp(f"x{r}") & 1023) * 3 + 1))
    body.append(out.store((i,), Temp(f"x{rounds}")))
    nest = Loop("i", 0, n, body)
    return Kernel("cost_demo", {"a": a, "out": out}, [nest],
                  outputs=["out"])


def demo_decision_instance(n: int = DEMO_TRIPS,
                           rounds: int = DEMO_ROUNDS) -> WorkloadInstance:
    """Compute-dense workload whose offload win is statically provable.

    Each iteration runs ``3 * rounds`` dependent integer ops on one
    streamed element. The host retires at most ``issue_width`` ops per
    cycle, so its time lower bound grows ~``3*rounds/5`` cycles per
    iteration at 2 GHz; the CGRA packs the same ops at ``int_alus`` per
    cycle at 1 GHz, and with enough rounds its *pessimistic* upper bound
    (worst-case line fetches, channel fills, configure) still beats the
    host's *optimistic* lower bound — making AN-C04 fire.

    Not registered in the workload registry: this is a lint fixture.
    """
    kernel = _demo_kernel(n, rounds)
    rng = np.random.default_rng(11)
    arrays = {
        "a": rng.integers(0, 1 << 20, size=n, dtype=np.int32),
        "out": np.zeros(n, dtype=np.int32),
    }

    def schedule(instance: WorkloadInstance) -> Iterator[KernelCall]:
        yield KernelCall(kernel)

    def reference(inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = inputs["a"].copy()
        for _ in range(rounds):
            x = (x & 1023) * 3 + 1
        return {"out": x}

    return WorkloadInstance(
        name="cost-demo", short="cdemo",
        objects=dict(kernel.objects), arrays=arrays,
        outputs=["out"], schedule=schedule, reference=reference,
        host_insts_per_call=40, host_accesses_per_call=2,
    )

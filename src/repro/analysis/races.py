"""Offload-race detector (rules AN-R01..AN-R03).

An offloaded loop runs on access units at the data's home clusters
while the host executes the residual (rejected-for-offload) loops of
the same kernel and launches the next kernel. The runtime serializes
kernel *calls*, so program-order footprint sharing is normal and only
advisory — but an offloaded loop whose write footprint overlaps what
the host-residual part of the *same kernel* touches has no such
ordering inside the kernel and is a real hazard.

Footprints are static per-loop region summaries from
:mod:`repro.analysis.deps`, widened to byte extents via each object's
element size and mapped to L3 cluster spans with the same slab layout
(stripe-aligned bump allocation) and static-NUCA striping the
simulator uses (:mod:`repro.mem.slab`, :mod:`repro.mem.nuca`), so a
finding can say *which clusters* both parties hit.

Rules
-----
==========  ========  =====================================================
AN-R01      warning   offloaded loop's write footprint overlaps a
                      host-residual loop's reads or writes (same kernel)
AN-R02      info      two offloaded loops of one kernel have overlapping
                      write/read footprints (runtime orders them; the
                      overlap forces that ordering)
AN-R03      info      concurrently-placed kernels share a written object
                      region across clusters
==========  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dfg.classify import classify_kernel_loop
from ..ir.program import Kernel
from ..params import MachineParams, default_machine
from .deps import (
    LoopDepSummary,
    analyze_innermost_loop,
    innermost_walk,
)
from .findings import Finding, Severity

Interval = Tuple[int, int]


@dataclass(frozen=True)
class ObjectFootprint:
    """Static element region one loop touches in one object."""

    obj: str
    reads: Optional[Interval]   # None = unknown extent (whole object)
    writes: Optional[Interval]
    has_reads: bool
    has_writes: bool


@dataclass(frozen=True)
class LoopFootprint:
    """All object regions of one innermost loop, plus its role."""

    location: str
    offloaded: bool
    objects: Dict[str, ObjectFootprint]


def _merge(a: Optional[Interval], b: Optional[Interval],
           known: bool) -> Optional[Interval]:
    if not known:
        return None
    if a is None:
        return b
    if b is None:
        return a
    return (min(a[0], b[0]), max(a[1], b[1]))


def _object_footprints(summary: LoopDepSummary,
                       kernel: Kernel) -> Dict[str, ObjectFootprint]:
    per_obj: Dict[str, Dict[str, object]] = {}
    for region in summary.reads + summary.writes:
        slot = per_obj.setdefault(region.obj, {
            "reads": None, "writes": None,
            "has_reads": False, "has_writes": False,
            "reads_known": True, "writes_known": True,
        })
        key = "writes" if region.is_write else "reads"
        slot[f"has_{key}"] = True
        if region.interval is None:
            slot[f"{key}_known"] = False
        slot[key] = _merge(slot[key], region.interval,
                           bool(slot[f"{key}_known"]))
    out: Dict[str, ObjectFootprint] = {}
    for obj, slot in per_obj.items():
        n = kernel.objects[obj].num_elements if obj in kernel.objects else None

        def clamp(iv: Optional[Interval]) -> Optional[Interval]:
            if iv is None or n is None:
                return iv
            return (max(iv[0], 0), min(iv[1], n - 1))

        out[obj] = ObjectFootprint(
            obj=obj,
            reads=clamp(slot["reads"]) if slot["reads_known"] else None,
            writes=clamp(slot["writes"]) if slot["writes_known"] else None,
            has_reads=bool(slot["has_reads"]),
            has_writes=bool(slot["has_writes"]),
        )
    return out


def kernel_footprints(kernel: Kernel) -> List[LoopFootprint]:
    """Per-innermost-loop footprints, tagged offloaded/host-residual
    with the same classifier the compiler uses."""
    footprints: List[LoopFootprint] = []
    for loop, env, path in innermost_walk(kernel):
        summary = analyze_innermost_loop(loop, kernel, env, location=path)
        classify = classify_kernel_loop(loop, kernel)
        footprints.append(LoopFootprint(
            location=path,
            offloaded=classify.kind.offloadable,
            objects=_object_footprints(summary, kernel),
        ))
    return footprints


# ---------------------------------------------------------------------------
# cluster spans
# ---------------------------------------------------------------------------
def cluster_spans(kernel: Kernel,
                  machine: Optional[MachineParams] = None
                  ) -> Dict[str, Tuple[int, ...]]:
    """Home-cluster set of every object under the simulator's layout:
    stripe-aligned bump allocation + static range striping."""
    import math

    from ..mem.slab import DEFAULT_ARENA_BASE
    from ..params import PAGE_BYTES

    machine = machine or default_machine()
    stripe = machine.l3_cluster_bytes
    n = machine.l3_clusters
    spans: Dict[str, Tuple[int, ...]] = {}
    # the simulator's slab bumps page-granular slabs from
    # DEFAULT_ARENA_BASE, not 0; when arena_base // stripe is not a
    # multiple of n (any topology whose stripe * clusters does not
    # divide the arena base) the first home cluster is nonzero, so
    # starting the mirror at 0 would misattribute every span
    align = math.lcm(stripe, PAGE_BYTES)
    base = DEFAULT_ARENA_BASE
    for name, obj in kernel.objects.items():
        # aligned page-granular bump layout, mirroring
        # SystemSimulator.run()'s slab allocation
        base = (base + align - 1) // align * align
        first = (base // stripe) % n
        stripes = (obj.size_bytes + stripe - 1) // stripe
        spans[name] = tuple(sorted({(first + k) % n
                                    for k in range(min(stripes, n))}))
        base += (obj.size_bytes + PAGE_BYTES - 1) // PAGE_BYTES * PAGE_BYTES
    return spans


def _overlap(a: Optional[Interval], b: Optional[Interval]) -> bool:
    """Unknown extents conservatively overlap everything."""
    if a is None or b is None:
        return True
    return a[0] <= b[1] and b[0] <= a[1]


def _span_text(kernel: Kernel, obj: str,
               spans: Dict[str, Tuple[int, ...]]) -> str:
    clusters = spans.get(obj)
    if not clusters:
        return ""
    return " (clusters " + ",".join(str(c) for c in clusters) + ")"


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def race_findings(kernel: Kernel,
                  machine: Optional[MachineParams] = None) -> List[Finding]:
    """AN-R01/AN-R02 findings within one kernel."""
    footprints = kernel_footprints(kernel)
    spans = cluster_spans(kernel, machine)
    findings: List[Finding] = []
    for i, a in enumerate(footprints):
        for b in footprints[i + 1:]:
            if a.offloaded == b.offloaded:
                if not a.offloaded:
                    continue  # host vs host: ordinary sequential code
                rule, sev = "AN-R02", Severity.INFO
                what = "both offloaded"
            else:
                rule, sev = "AN-R01", Severity.WARNING
                what = "offloaded vs host-residual"
            off, host = (a, b) if a.offloaded else (b, a)
            for obj, fp in off.objects.items():
                if not fp.has_writes:
                    continue
                other = host.objects.get(obj)
                if other is None:
                    continue
                conflicts = []
                if other.has_writes and _overlap(fp.writes, other.writes):
                    conflicts.append("write/write")
                if other.has_reads and _overlap(fp.writes, other.reads):
                    conflicts.append("write/read")
                if not conflicts:
                    continue
                findings.append(Finding(
                    rule=rule, severity=sev, location=off.location,
                    message=(
                        f"{what}: {'+'.join(conflicts)} overlap on "
                        f"{obj!r} with {host.location}"
                        f"{_span_text(kernel, obj, spans)}"
                    ),
                    kernel=kernel.name, obj=obj,
                ))
    return findings


def cross_kernel_findings(kernels: Sequence[Kernel],
                          machine: Optional[MachineParams] = None
                          ) -> List[Finding]:
    """AN-R03: written-object sharing between kernels that could be
    resident on the clusters at the same time (e.g. adjacent calls of a
    pipeline). Advisory — the runtime serializes kernel calls, so the
    finding documents where that serialization is load-bearing."""
    findings: List[Finding] = []
    per_kernel = [(k, kernel_footprints(k), cluster_spans(k, machine))
                  for k in kernels]
    for i, (ka, fa, spans) in enumerate(per_kernel):
        for kb, fb, _ in per_kernel[i + 1:]:
            if ka.name == kb.name:
                continue
            shared: Dict[str, List[str]] = {}
            for lf_a in fa:
                if not lf_a.offloaded:
                    continue
                for obj, fp_a in lf_a.objects.items():
                    if not fp_a.has_writes or obj not in kb.objects:
                        continue
                    for lf_b in fb:
                        if not lf_b.offloaded:
                            continue
                        fp_b = lf_b.objects.get(obj)
                        if fp_b is None:
                            continue
                        if ((fp_b.has_reads
                             and _overlap(fp_a.writes, fp_b.reads))
                                or (fp_b.has_writes
                                    and _overlap(fp_a.writes, fp_b.writes))):
                            shared.setdefault(obj, []).append(lf_b.location)
            for obj, locations in shared.items():
                findings.append(Finding(
                    rule="AN-R03", severity=Severity.INFO,
                    location=f"{ka.name}<->{kb.name}",
                    message=(
                        f"offloads of both kernels touch written object "
                        f"{obj!r} ({', '.join(sorted(set(locations)))})"
                        f"{_span_text(ka, obj, spans)}; correctness "
                        f"relies on the runtime serializing the calls"
                    ),
                    kernel=ka.name, obj=obj,
                ))
    return findings

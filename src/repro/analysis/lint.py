"""Lint driver: run every analysis pass over kernels and workloads.

The unit of linting is a :class:`Kernel`; workloads are linted by
statically enumerating the kernels their schedule issues (without
interpreting them — array state never changes, so data-dependent
schedules such as BFS's frontier loop terminate after the first
repeated kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.program import Kernel
from ..workloads import workload_registry
from ..workloads.base import WorkloadInstance
from .deps import dependence_findings
from .findings import Finding, errors_of
from .races import cross_kernel_findings, race_findings
from .verifier import verify_kernel

#: schedules are iterated statically (arrays never change), so any
#: data-dependent schedule loops forever; stop after this many calls
MAX_SCHEDULE_CALLS = 64


def lint_kernel(kernel: Kernel) -> List[Finding]:
    """All single-kernel findings: verifier, dependence, races."""
    findings = verify_kernel(kernel)
    # dependence/race analysis assumes a structurally valid kernel
    if not errors_of(findings):
        findings += dependence_findings(kernel)
        findings += race_findings(kernel)
    return findings


def collect_kernels(instance: WorkloadInstance,
                    max_calls: int = MAX_SCHEDULE_CALLS) -> List[Kernel]:
    """Unique kernels the instance's schedule issues, in first-issue
    order, deduplicated by structural fingerprint."""
    seen: Dict[str, Kernel] = {}
    for i, call in enumerate(instance.calls()):
        if i >= max_calls:
            break
        fp = call.kernel.fingerprint()
        if fp not in seen:
            seen[fp] = call.kernel
    return list(seen.values())


@dataclass
class LintReport:
    """Findings for one workload (or one ad-hoc kernel set)."""

    workload: str
    kernels: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return errors_of(self.findings)

    @property
    def clean(self) -> bool:
        return not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "kernels": list(self.kernels),
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
        }


def lint_kernels(name: str, kernels: Sequence[Kernel]) -> LintReport:
    report = LintReport(workload=name)
    for kernel in kernels:
        report.kernels.append(kernel.name)
        report.findings.extend(lint_kernel(kernel))
    report.findings.extend(cross_kernel_findings(list(kernels)))
    return report


def lint_workload(short: str, scale: str = "tiny") -> LintReport:
    """Lint every kernel a registered workload's schedule issues."""
    registry = workload_registry()
    instance = registry[short].build(scale)
    return lint_kernels(short, collect_kernels(instance))


def lint_all(scale: str = "tiny",
             shorts: Optional[Sequence[str]] = None) -> List[LintReport]:
    """Lint all registered workloads (or the given subset)."""
    registry = workload_registry()
    names = list(shorts) if shorts else sorted(registry)
    return [lint_workload(short, scale) for short in names]

"""Static kernel analysis: verifier, dependence/footprint, race lint.

Three cooperating passes over kernel IR, run before interpretation or
compilation ever sees a kernel:

* :mod:`repro.analysis.verifier` — structural + bounds legality
  (rules ``AN-V..``); wired as a default-on guard in
  :meth:`repro.ir.interp.Interpreter.run` and
  :func:`repro.compiler.pipeline.compile_kernel`
  (opt out with ``REPRO_NO_VERIFY=1``).
* :mod:`repro.analysis.deps` — affine dependence & footprint analysis
  (rules ``AN-D..``), cross-checked against the DFG offload classifier.
* :mod:`repro.analysis.races` — offload-race detection
  (rules ``AN-R..``).

``python -m repro.analysis`` lints every registered workload.
"""

from .deps import (
    AccessRegion,
    DepKind,
    LoopDepSummary,
    agrees_with_classification,
    analyze_innermost_loop,
    analyze_kernel,
    dependence_findings,
    innermost_walk,
)
from .findings import Finding, Severity, errors_of, max_severity
from .lint import (
    LintReport,
    collect_kernels,
    lint_all,
    lint_kernel,
    lint_kernels,
    lint_workload,
)
from .races import (
    LoopFootprint,
    ObjectFootprint,
    cluster_spans,
    cross_kernel_findings,
    kernel_footprints,
    race_findings,
)
from .ranges import VarRange, affine_form, affine_range, expr_interval
from .verifier import (
    OPT_OUT_ENV,
    assert_kernel_verified,
    verification_enabled,
    verify_kernel,
)

__all__ = [
    "AccessRegion",
    "DepKind",
    "Finding",
    "LintReport",
    "LoopDepSummary",
    "LoopFootprint",
    "ObjectFootprint",
    "OPT_OUT_ENV",
    "Severity",
    "VarRange",
    "affine_form",
    "affine_range",
    "agrees_with_classification",
    "analyze_innermost_loop",
    "analyze_kernel",
    "assert_kernel_verified",
    "cluster_spans",
    "collect_kernels",
    "cross_kernel_findings",
    "dependence_findings",
    "errors_of",
    "expr_interval",
    "innermost_walk",
    "kernel_footprints",
    "lint_all",
    "lint_kernel",
    "lint_kernels",
    "lint_workload",
    "max_severity",
    "race_findings",
    "verification_enabled",
    "verify_kernel",
]

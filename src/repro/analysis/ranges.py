"""Static value-range machinery shared by the analysis passes.

Two cooperating views of an index expression:

* :func:`affine_form` — exact multi-variable affine decomposition
  ``c0 + sum(ci * vi)`` over loop variables (the n-variable extension of
  the per-variable recurrences in :mod:`repro.dfg.scev`). When every
  variable's extent is known exactly, the resulting range is *tight*:
  a bound violation is a definite out-of-bounds access.
* :func:`expr_interval` — conservative interval arithmetic over the
  full expression grammar (min/max clamps, selects, division, ...).
  Sound over-approximation: can prove safety, never a violation.

Loop extents are modeled by :class:`VarRange`; ``exact`` is True only
when the loop's bounds are compile-time constants, so ranges derived
through data- or outer-variable-dependent bounds are demoted to
"possible" findings by the verifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir.expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from ..ir.stmt import Loop

Interval = Tuple[int, int]  # closed [lo, hi]


@dataclass(frozen=True)
class VarRange:
    """Inclusive value range of one induction variable."""

    lo: int
    hi: int
    #: True when derived from constant loop bounds (range is attained)
    exact: bool = True

    @property
    def empty(self) -> bool:
        return self.hi < self.lo


Env = Dict[str, VarRange]


# ---------------------------------------------------------------------------
# affine forms
# ---------------------------------------------------------------------------
def affine_form(expr: Expr) -> Optional[Tuple[int, Dict[str, int]]]:
    """Decompose ``expr`` into ``(const, {var: coeff})`` when it is an
    integer affine combination of loop variables. Returns None for any
    expression involving loads, scalars, temps, or non-affine operators.
    """
    kind = expr.__class__
    if kind is Const:
        if isinstance(expr.value, int):
            return (expr.value, {})
        return None
    if kind is LoopVar:
        return (0, {expr.name: 1})
    if kind in (Scalar, Temp, Load, Select):
        return None
    if kind is UnaryOp:
        if expr.op != "-":
            return None
        inner = affine_form(expr.operand)
        if inner is None:
            return None
        c, coeffs = inner
        return (-c, {v: -k for v, k in coeffs.items()})
    if kind is BinOp:
        return _affine_binop(expr)
    return None


def _affine_binop(expr: BinOp) -> Optional[Tuple[int, Dict[str, int]]]:
    left = affine_form(expr.lhs)
    right = affine_form(expr.rhs)
    if left is None or right is None:
        return None
    lc, lco = left
    rc, rco = right
    if expr.op in ("+", "-"):
        sign = 1 if expr.op == "+" else -1
        coeffs = dict(lco)
        for v, k in rco.items():
            coeffs[v] = coeffs.get(v, 0) + sign * k
        return (lc + sign * rc, {v: k for v, k in coeffs.items() if k})
    if expr.op == "*":
        if not lco:  # const * affine
            return (lc * rc, {v: lc * k for v, k in rco.items() if lc * k})
        if not rco:  # affine * const
            return (rc * lc, {v: rc * k for v, k in lco.items() if rc * k})
        return None
    return None


def affine_range(const: int, coeffs: Dict[str, int],
                 env: Env) -> Optional[Tuple[int, int, bool]]:
    """(lo, hi, exact) of an affine form under ``env``; None when some
    variable's extent is unknown."""
    lo = hi = const
    exact = True
    for var, coeff in coeffs.items():
        rng = env.get(var)
        if rng is None or rng.empty:
            return None
        exact = exact and rng.exact
        if coeff >= 0:
            lo += coeff * rng.lo
            hi += coeff * rng.hi
        else:
            lo += coeff * rng.hi
            hi += coeff * rng.lo
    # a form over >1 variable is only attained at the corners when the
    # variables range independently; dependent extents are inexact by
    # construction (VarRange.exact=False), single-variable forms always
    # attain their endpoints
    return (lo, hi, exact)


# ---------------------------------------------------------------------------
# conservative interval arithmetic
# ---------------------------------------------------------------------------
def expr_interval(expr: Expr, env: Env) -> Optional[Interval]:
    """Sound over-approximating interval of ``expr`` under ``env``.

    Returns None when the value is statically unbounded (loads, scalars,
    temps, or operators we do not model).
    """
    kind = expr.__class__
    if kind is Const:
        v = expr.value
        if isinstance(v, float) and not v.is_integer():
            return (math.floor(v), math.ceil(v))
        return (int(v), int(v))
    if kind is LoopVar:
        rng = env.get(expr.name)
        if rng is None or rng.empty:
            return None
        return (rng.lo, rng.hi)
    if kind in (Scalar, Temp, Load):
        return None
    if kind is UnaryOp:
        return _unop_interval(expr, env)
    if kind is Select:
        t = expr_interval(expr.if_true, env)
        f = expr_interval(expr.if_false, env)
        if t is None or f is None:
            return None
        return (min(t[0], f[0]), max(t[1], f[1]))
    if kind is BinOp:
        return _binop_interval(expr, env)
    return None


def _unop_interval(expr: UnaryOp, env: Env) -> Optional[Interval]:
    inner = expr_interval(expr.operand, env)
    if inner is None:
        return None
    lo, hi = inner
    if expr.op == "-":
        return (-hi, -lo)
    if expr.op == "abs":
        if lo >= 0:
            return (lo, hi)
        if hi <= 0:
            return (-hi, -lo)
        return (0, max(-lo, hi))
    if expr.op == "floor":
        return (lo, hi)
    if expr.op == "not":
        return (0, 1)
    return None  # sqrt/exp/log: not index material


def _binop_interval(expr: BinOp, env: Env) -> Optional[Interval]:
    op = expr.op
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return (0, 1)
    left = expr_interval(expr.lhs, env)
    right = expr_interval(expr.rhs, env)
    if left is None or right is None:
        return None
    ll, lh = left
    rl, rh = right
    if op == "+":
        return (ll + rl, lh + rh)
    if op == "-":
        return (ll - rh, lh - rl)
    if op == "*":
        products = (ll * rl, ll * rh, lh * rl, lh * rh)
        return (min(products), max(products))
    if op == "min":
        return (min(ll, rl), min(lh, rh))
    if op == "max":
        return (max(ll, rl), max(lh, rh))
    if op == "/":
        if rl <= 0 <= rh:
            return None  # divisor range contains zero
        quotients = (ll / rl, ll / rh, lh / rl, lh / rh)
        return (math.floor(min(quotients)), math.ceil(max(quotients)))
    if op == "%":
        if rl == rh and rl != 0:
            m = abs(rl)
            if ll >= 0:
                return (0, m - 1)
            return (-(m - 1), m - 1)
        return None
    if op in ("<<", ">>"):
        if ll < 0 or rl < 0 or rh > 62:
            return None
        shift = (lambda a, b: a << b) if op == "<<" else (lambda a, b: a >> b)
        vals = (shift(ll, rl), shift(ll, rh), shift(lh, rl), shift(lh, rh))
        return (min(vals), max(vals))
    if op in ("&", "|", "^"):
        if ll == lh and rl == rh:  # both points: fold
            val = {"&": ll & rl, "|": ll | rl, "^": ll ^ rl}[op]
            return (val, val)
        return None
    return None


def const_value(expr: Expr) -> Optional[int]:
    """Fold a constant integer expression; None when not constant."""
    iv = expr_interval(expr, {})
    if iv is not None and iv[0] == iv[1]:
        return iv[0]
    return None


# ---------------------------------------------------------------------------
# loop extents
# ---------------------------------------------------------------------------
def loop_var_range(loop: Loop, env: Env) -> Optional[VarRange]:
    """Value range of ``loop.var`` over ``range(lower, upper, step)``.

    ``exact`` is True only when both bounds are compile-time constants;
    bounds involving outer loop variables produce a sound union range
    marked inexact, and data-dependent bounds return None.
    """
    lower = expr_interval(loop.lower, env)
    upper = expr_interval(loop.upper, env)
    if lower is None or upper is None:
        return None
    lo_c = const_value(loop.lower)
    up_c = const_value(loop.upper)
    if lo_c is not None and up_c is not None:
        values = range(lo_c, up_c, loop.step)
        if not values:
            return VarRange(lo_c, lo_c - 1, exact=True)  # empty
        return VarRange(min(values[0], values[-1]),
                        max(values[0], values[-1]), exact=True)
    # non-constant bounds: sound union over every possible trip range
    if loop.step > 0:
        return VarRange(lower[0], upper[1] - 1, exact=False)
    return VarRange(upper[0] + 1, lower[1], exact=False)

"""Lint CLI: ``python -m repro.analysis [--strict] [--json] [...]``.

Runs the verifier, dependence, and race passes over every kernel each
registered workload issues and prints the findings. With ``--costs``,
the AN-C static cost model also runs per workload, adding interval
summaries (AN-C01/AN-C02) and any provable offload decisions
(AN-C03/AN-C04); unless ``--workloads`` narrows the set, the
statically-decidable ``cost-demo`` fixture is linted too, so the
decided case is always visible.

Exit status contract (stable; CI keys off it):

* ``0`` — analysis ran; no gating findings (``--strict`` absent, or
  present with zero ERROR findings).
* ``1`` — analysis ran and ``--strict`` gated on at least one ERROR
  finding (e.g. verifier rejection, AN-C05 soundness violation).
* ``2`` — configuration/usage error: bad flags (argparse), unknown
  workload, or a :class:`~repro.errors.ConfigError` while building.
* ``3`` — unexpected crash inside an analysis pass; the traceback goes
  to stderr. Crashes are never conflated with findings.

``--json`` emits a machine-readable document carrying
``schema_version`` (bumped on any breaking change to the report
shape).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from typing import List, Optional

from ..errors import ConfigError
from .findings import Severity
from .lint import LintReport, lint_all

#: version of the --json document shape; bump on breaking changes
SCHEMA_VERSION = 1

#: exit codes (see module docstring)
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_CRASH = 3

_SEVERITIES = {s.value: s for s in Severity}


def _cost_lint(reports: List[LintReport], scale: str,
               shorts: Optional[List[str]]) -> None:
    """Append AN-C findings to each report; add the demo fixture."""
    from ..workloads import workload_registry
    from .costlint import cost_findings, demo_decision_instance

    registry = workload_registry()
    by_name = {r.workload: r for r in reports}
    for short, report in by_name.items():
        if short not in registry:
            continue
        instance = registry[short].build(scale)
        _, findings = cost_findings(instance)
        report.findings.extend(findings)
    if not shorts:
        # the canonical decided case rides along by default
        _, findings = cost_findings(demo_decision_instance())
        demo = LintReport(workload="cost-demo", kernels=["cost_demo"])
        demo.findings.extend(findings)
        reports.append(demo)


def _run(args: argparse.Namespace) -> int:
    reports = lint_all(scale=args.scale, shorts=args.workloads)
    if args.costs:
        _cost_lint(reports, args.scale, args.workloads)
    total_errors = sum(len(r.errors) for r in reports)

    if args.as_json:
        print(json.dumps(
            {"schema_version": SCHEMA_VERSION,
             "reports": [r.to_dict() for r in reports],
             "errors": total_errors},
            indent=2,
        ))
    else:
        floor = _SEVERITIES[args.min_severity].rank
        for report in reports:
            shown = [f for f in report.findings if f.severity.rank >= floor]
            status = "ok" if report.clean else "FAIL"
            print(f"[{status}] {report.workload}: "
                  f"{len(report.kernels)} kernel(s), "
                  f"{len(report.findings)} finding(s)")
            for finding in shown:
                print(f"    {finding.format()}")
        print(f"{len(reports)} workload(s) linted, "
              f"{total_errors} error(s)")

    if args.strict and total_errors:
        return EXIT_FINDINGS
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically lint all registered workload kernels",
    )
    parser.add_argument(
        "--workloads", nargs="*", metavar="SHORT",
        help="lint only these workload short names (default: all)",
    )
    parser.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "large"),
        help="workload build scale (default: tiny)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any error-severity finding exists",
    )
    parser.add_argument(
        "--costs", action="store_true",
        help="also run the AN-C static cost model per workload "
             "(interval summaries and provable offload decisions)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON reports (schema_version "
             f"{SCHEMA_VERSION})",
    )
    parser.add_argument(
        "--min-severity", default="info", choices=sorted(_SEVERITIES),
        help="hide findings below this severity in text output",
    )
    args = parser.parse_args(argv)

    try:
        return _run(args)
    except (ConfigError, KeyError) as exc:
        # unknown workload shorts surface as KeyError from the registry
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception:  # noqa: BLE001 — crash != finding, by contract
        traceback.print_exc()
        return EXIT_CRASH


if __name__ == "__main__":
    sys.exit(main())

"""Lint CLI: ``python -m repro.analysis [--strict] [--json] [...]``.

Runs the verifier, dependence, and race passes over every kernel each
registered workload issues and prints the findings. ``--strict`` exits
non-zero when any ERROR finding exists (the CI gate); ``--json`` emits
the machine-readable reports instead of text.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .findings import Severity
from .lint import lint_all

_SEVERITIES = {s.value: s for s in Severity}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically lint all registered workload kernels",
    )
    parser.add_argument(
        "--workloads", nargs="*", metavar="SHORT",
        help="lint only these workload short names (default: all)",
    )
    parser.add_argument(
        "--scale", default="tiny", choices=("tiny", "small", "large"),
        help="workload build scale (default: tiny)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any error-severity finding exists",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON reports",
    )
    parser.add_argument(
        "--min-severity", default="info", choices=sorted(_SEVERITIES),
        help="hide findings below this severity in text output",
    )
    args = parser.parse_args(argv)

    reports = lint_all(scale=args.scale, shorts=args.workloads)
    total_errors = sum(len(r.errors) for r in reports)

    if args.as_json:
        print(json.dumps(
            {"reports": [r.to_dict() for r in reports],
             "errors": total_errors},
            indent=2,
        ))
    else:
        floor = _SEVERITIES[args.min_severity].rank
        for report in reports:
            shown = [f for f in report.findings if f.severity.rank >= floor]
            status = "ok" if report.clean else "FAIL"
            print(f"[{status}] {report.workload}: "
                  f"{len(report.kernels)} kernel(s), "
                  f"{len(report.findings)} finding(s)")
            for finding in shown:
                print(f"    {finding.format()}")
        print(f"{len(reports)} workload(s) linted, "
              f"{total_errors} error(s)")

    if args.strict and total_errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Finding model shared by every static-analysis pass.

A :class:`Finding` is one diagnostic: a stable rule id, a severity, a
path-qualified location inside the kernel (``kernel/loop[i]/stmt[2]``)
and a human-readable message. Findings are plain data so the lint CLI
can emit them machine-readably (``--json``) and tests can assert on
rule ids instead of message text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    * ``ERROR`` — the kernel is statically illegal; the default-on
      guard in the compiler/interpreter refuses it and ``--strict``
      lint runs exit non-zero.
    * ``WARNING`` — likely-wrong or unprovable-but-suspicious; reported
      but never fatal.
    * ``INFO`` — advisory facts (classifications, footprint overlaps
      the runtime's ordering is known to handle).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static-analysis pass."""

    rule: str                 # stable id, e.g. "AN-V10"
    severity: Severity
    location: str             # "kernel/loop[i]/stmt[2]"
    message: str
    kernel: str = ""
    obj: Optional[str] = None  # memory object involved, when applicable

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "kernel": self.kernel,
            "location": self.location,
            "message": self.message,
        }
        if self.obj is not None:
            out["obj"] = self.obj
        return out

    def format(self) -> str:
        return (
            f"{self.severity.value:7s} {self.rule} {self.location}: "
            f"{self.message}"
        )


def errors_of(findings: List[Finding]) -> List[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]


def max_severity(findings: List[Finding]) -> Optional[Severity]:
    if not findings:
        return None
    return max((f.severity for f in findings), key=lambda s: s.rank)


@dataclass
class Location:
    """Mutable path builder used while walking a kernel."""

    kernel: str
    parts: List[str] = field(default_factory=list)

    def push(self, part: str) -> None:
        self.parts.append(part)

    def pop(self) -> None:
        self.parts.pop()

    def path(self) -> str:
        return "/".join([self.kernel] + self.parts)

"""AN-C static cost model: closed-form traffic/time/energy intervals.

The pass family derives, per kernel x configuration x machine point, a
sound **interval** ``[lo, hi]`` for every figure-visible metric of a run
(:class:`~repro.sim.results.RunResult`): time, energy, per-level cache
traffic, data movement, instruction and memory-op counts. The interval
discipline is the whole contract:

* the **lower bound** is provable from first principles (compulsory
  misses: every distinct cache line a run touches crosses the chip
  boundary at least once; compute: every instruction issues at most
  ``issue_width`` per cycle; accelerators: a partition cannot retire
  iterations faster than its initiation interval), and
* the **upper bound** is a no-reuse worst case built from the simulator's
  own charge sheet (every latency bounded by the named ``LATM_*``
  constants below, every event count bounded by its architectural
  maximum).

Measured values from :func:`repro.sim.system.simulate_workload` must fall
inside the interval for *every* kernel — the soundness oracle in
:mod:`repro.testing.oracle` enforces exactly that across the fuzzer and
all registered workloads. Nothing here runs the event-driven simulator:
the cost of a query is one symbolic walk over the IR plus (for
accelerator configs) one compile of the kernel, which is what makes the
model usable as a DSE pre-pass (:mod:`repro.analysis.prune`) and an
offload lint (:mod:`repro.analysis.costlint`).

Widths are honest: data-dependent trip counts make upper bounds
infinite, and the latency margins are deliberately pessimistic, so most
real offload comparisons stay undecided — the point is that when an
interval comparison *does* decide, the decision needs no simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.expr import (
    COMPLEX_OPS,
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from ..ir.program import Kernel, MemObject
from ..energy.tables import EnergyTable
from ..ir.stmt import Assign, Loop, Stmt, Store, When
from ..params import CACHE_LINE_BYTES, MachineParams
from .ranges import affine_form

INF = math.inf

# ---------------------------------------------------------------------------
# margin constants (all latencies in cycles at the named clock)
# ---------------------------------------------------------------------------

#: worst-case latency of one host demand access (L1 + L2 + L3 bank + NoC
#: round trips + DRAM + late-prefetch residual), with margin.
LATM_OOO_ACCESS = 320
#: worst-case cycles to fetch/drain one cache line through the access
#: path (L3 probe + NoC + DRAM fill + writeback), with margin.
LATM_LINE = 256
#: worst-case cycles for one indirect element access (ACP + L3 + DRAM).
LATM_ELEM = 256
#: upper bound on data movement per host memory access (fills, evicts,
#: prefetch chains and NoC header byte-hops all included).
MOVE_HI_PER_HOST_ACCESS = 8192
#: L2/L3/DRAM/prefetch access-count caps per host access (demand probe +
#: prefetcher side effects), validated by the soundness oracle.
L2_HI_PER_ACCESS = 4
L3_HI_PER_ACCESS = 6
DRAM_HI_PER_ACCESS = 8
PREFETCH_HI_PER_ACCESS = 2
#: per-call / per-offload picosecond slack absorbing integer rounding of
#: `cycles_to_ps` across chunked delays.
SLACK_PS_PER_CALL = 4000
#: per-channel pipeline-fill delay upper bound (ps).
CHAN_FILL_PS = 20_000
#: the engine splits work into ~128 chunks (``TARGET_CHUNKS``); the
#: one-time channel fill delay serializes one chunk's flits, bounded
#: here with the divisor halved for margin.
TARGET_CHUNKS_BOUND = 64
#: host<->engine relaunch handshake (engine HOST_SYNC_CYCLES=40 at 2GHz).
RELAUNCH_PS = 20_000
#: flat per-offload configure upper bound (MMIO + scheduler tables), ps;
#: the setup microcode itself is added exactly via the backend.
CONFIGURE_PS = 40_000
#: movement upper per fetched line on the accel path (fill + writeback +
#: NoC headers + handshakes).
MOVE_HI_PER_LINE = 1024
#: movement upper per indirect element access on the accel path (the
#: element's line may be DRAM-filled into the home cluster).
MOVE_HI_PER_ELEM = 512
#: flat per-call energy margin (pJ) for coherence acquires and MMIO odds
#: and ends not itemized below.
ENERGY_MARGIN_PJ_PER_CALL = 50_000.0

#: the six paper configurations the model's margins are validated on
#: (see ``tools/validate_cost.py`` and the soundness oracle).
VALIDATED_CONFIGS = (
    "ooo", "mono_ca", "mono_da_io", "mono_da_f", "dist_da_io", "dist_da_f",
)

#: metric keys every prediction carries.
METRICS = (
    "time_ps", "energy_pj", "insts", "mem_ops", "movement_bytes",
    "l1", "l2", "l3", "dram", "prefetches", "acp", "accel_iterations",
)


# ---------------------------------------------------------------------------
# intervals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``hi`` may be ``math.inf``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------
    @staticmethod
    def point(v: float) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def zero() -> "Interval":
        return _ZERO

    @staticmethod
    def top() -> "Interval":
        return Interval(0.0, INF)

    # -- predicates ----------------------------------------------------
    @property
    def exact(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)

    def contains(self, value: float, rel: float = 1e-9,
                 abs_: float = 1e-6) -> bool:
        slack = max(abs_, rel * max(abs(self.lo),
                                    abs(value),
                                    abs(self.hi) if math.isfinite(self.hi)
                                    else 0.0))
        if value < self.lo - slack:
            return False
        if math.isfinite(self.hi) and value > self.hi + slack:
            return False
        return True

    def width_over(self, measured: float) -> float:
        """Bound tightness: interval width / measured value."""
        if not math.isfinite(self.hi):
            return INF
        if measured == 0:
            return 0.0 if self.hi == self.lo else INF
        return (self.hi - self.lo) / abs(measured)

    # -- arithmetic (counts: both endpoints >= 0 unless stated) --------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def scale(self, k: float) -> "Interval":
        """Multiply by a nonnegative constant (``0 * inf == 0``)."""
        if k < 0:
            raise ValueError("scale expects a nonnegative factor")
        return Interval(_mul0(self.lo, k), _mul0(self.hi, k))

    def times(self, other: "Interval") -> "Interval":
        """Product of two nonnegative intervals (``0 * inf == 0``)."""
        return Interval(_mul0(self.lo, other.lo), _mul0(self.hi, other.hi))

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_nonneg(self) -> "Interval":
        return Interval(max(self.lo, 0.0), max(self.hi, 0.0))

    def widen(self, rel: float = 0.0, abs_: float = 0.0) -> "Interval":
        lo = self.lo - abs_ - rel * abs(self.lo)
        hi = self.hi
        if math.isfinite(hi):
            hi = hi + abs_ + rel * abs(hi)
        return Interval(max(lo, 0.0) if self.lo >= 0 else lo, hi)

    def as_pair(self) -> Tuple[float, float]:
        return (self.lo, self.hi)


_ZERO = Interval(0.0, 0.0)
_ONE = Interval(1.0, 1.0)


def _mul0(a: float, b: float) -> float:
    """Multiplication with the counting convention ``0 * inf == 0``."""
    if a == 0 or b == 0:
        return 0.0
    return a * b


def _imax(a: Interval, b: Interval) -> Interval:
    """Interval of ``max(x, y)`` for independent x in a, y in b."""
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def _ceil_div(num: float, den: float) -> float:
    """``ceil(num / den)`` tolerating infinite numerators."""
    if not math.isfinite(num):
        return INF if num > 0 else -INF
    return math.ceil(num / den)


# ---------------------------------------------------------------------------
# value intervals over expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VarDesc:
    """What the walker knows about one in-scope name.

    ``n_values``/``step_mag``/``grid_exact`` describe the arithmetic
    progression an induction variable walks (used by the distinct-line
    lower bound); temporaries carry only a value interval.
    """

    lo: float
    hi: float
    n_values: Interval = _ONE
    step_mag: int = 0
    grid_exact: bool = False


Env = Dict[str, VarDesc]

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def value_interval(expr: Expr, env: Env,
                   scalars: Mapping[str, Any]) -> Interval:
    """Sound interval for the runtime value of ``expr``.

    Loaded data is unknown (``[-inf, inf]``); scalars resolve to the
    bound call values; everything else follows interval arithmetic with
    the interpreter's numeric semantics (truncating integer division,
    Python modulo, comparisons yielding 0/1).
    """
    if isinstance(expr, Const):
        return Interval.point(float(expr.value))
    if isinstance(expr, Scalar):
        if expr.name in scalars:
            return Interval.point(float(scalars[expr.name]))
        return Interval(-INF, INF)
    if isinstance(expr, (LoopVar, Temp)):
        desc = env.get(expr.name)
        if desc is None:
            return Interval(-INF, INF)
        return Interval(desc.lo, desc.hi)
    if isinstance(expr, Load):
        return Interval(-INF, INF)
    if isinstance(expr, UnaryOp):
        return _unop_value(expr.op, value_interval(expr.operand, env, scalars))
    if isinstance(expr, BinOp):
        lhs = value_interval(expr.lhs, env, scalars)
        rhs = value_interval(expr.rhs, env, scalars)
        return _binop_value(expr.op, lhs, rhs)
    if isinstance(expr, Select):
        cond = value_interval(expr.cond, env, scalars)
        if cond.lo > 0 or cond.hi < 0:
            return value_interval(expr.if_true, env, scalars)
        if cond.lo == cond.hi == 0:
            return value_interval(expr.if_false, env, scalars)
        return value_interval(expr.if_true, env, scalars).join(
            value_interval(expr.if_false, env, scalars))
    return Interval(-INF, INF)


def _unop_value(op: str, v: Interval) -> Interval:
    if op == "-":
        return Interval(-v.hi, -v.lo)
    if op == "abs":
        lo = 0.0 if v.lo <= 0 <= v.hi else min(abs(v.lo), abs(v.hi))
        return Interval(lo, max(abs(v.lo), abs(v.hi)))
    if op == "floor":
        return Interval(math.floor(v.lo) if math.isfinite(v.lo) else v.lo,
                        math.floor(v.hi) if math.isfinite(v.hi) else v.hi)
    if op == "not":
        if v.lo > 0 or v.hi < 0:
            return Interval.point(0.0)
        if v.lo == v.hi == 0:
            return Interval.point(1.0)
        return Interval(0.0, 1.0)
    if op == "sqrt":
        if v.lo < 0:
            return Interval(-INF, INF)  # may fault at runtime
        hi = math.sqrt(v.hi) if math.isfinite(v.hi) else INF
        return Interval(math.sqrt(v.lo), hi)
    if op == "rsqrt":
        if v.lo <= 0:
            return Interval(-INF, INF)
        lo = 0.0 if not math.isfinite(v.hi) else 1.0 / math.sqrt(v.hi)
        return Interval(lo, 1.0 / math.sqrt(v.lo))
    if op == "exp":
        try:
            lo = math.exp(v.lo) if math.isfinite(v.lo) else (
                0.0 if v.lo < 0 else INF)
            hi = math.exp(v.hi) if math.isfinite(v.hi) else INF
        except OverflowError:
            return Interval(0.0, INF)
        return Interval(lo, hi)
    if op == "log":
        if v.lo <= 0:
            return Interval(-INF, INF)
        hi = math.log(v.hi) if math.isfinite(v.hi) else INF
        return Interval(math.log(v.lo), hi)
    return Interval(-INF, INF)


def _binop_value(op: str, a: Interval, b: Interval) -> Interval:
    if op == "+":
        return Interval(a.lo + b.lo, a.hi + b.hi)
    if op == "-":
        return Interval(a.lo - b.hi, a.hi - b.lo)
    if op == "*":
        cands = [_mul0(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        return Interval(min(cands), max(cands))
    if op == "min":
        return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
    if op == "max":
        return Interval(max(a.lo, b.lo), max(a.hi, b.hi))
    if op in _CMP_OPS:
        return _cmp_value(op, a, b)
    if op == "/":
        if b.lo <= 0 <= b.hi:
            return Interval(-INF, INF)
        cands = []
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                if math.isfinite(x) and math.isfinite(y):
                    cands.append(x / y)
                else:
                    return Interval(-INF, INF)
        # widen by 1 either way: the interpreter truncates int/int
        return Interval(math.floor(min(cands)) - 1,
                        math.ceil(max(cands)) + 1)
    if op == "%":
        if b.exact and b.lo != 0:
            d = b.lo
            return Interval(0.0, d - 1) if d > 0 else Interval(d + 1, 0.0)
        if b.lo > 0:
            return Interval(0.0, b.hi - 1 if math.isfinite(b.hi) else INF)
        return Interval(-INF, INF)
    if op in ("&", "|", "^"):
        if a.lo >= 0 and b.lo >= 0 and math.isfinite(a.hi) \
                and math.isfinite(b.hi):
            if op == "&":
                return Interval(0.0, min(a.hi, b.hi))
            return Interval(0.0, a.hi + b.hi)  # a|b <= a+b, a^b <= a+b
        return Interval(-INF, INF)
    if op == "<<":
        if a.lo >= 0 and 0 <= b.lo and b.hi <= 63 and math.isfinite(a.hi):
            return Interval(float(int(a.lo) << int(b.lo)),
                            float(int(a.hi) << int(b.hi)))
        return Interval(-INF, INF)
    if op == ">>":
        if a.lo >= 0 and b.lo >= 0 and math.isfinite(a.hi):
            sh_lo = min(int(b.lo), 63)
            sh_hi = min(int(b.hi), 63) if math.isfinite(b.hi) else 63
            return Interval(float(int(a.lo) >> sh_hi),
                            float(int(a.hi) >> sh_lo))
        return Interval(-INF, INF)
    return Interval(-INF, INF)


def _cmp_value(op: str, a: Interval, b: Interval) -> Interval:
    def decide(true_when: bool, false_when: bool) -> Interval:
        if true_when:
            return Interval.point(1.0)
        if false_when:
            return Interval.point(0.0)
        return Interval(0.0, 1.0)

    if op == "<":
        return decide(a.hi < b.lo, a.lo >= b.hi)
    if op == "<=":
        return decide(a.hi <= b.lo, a.lo > b.hi)
    if op == ">":
        return decide(a.lo > b.hi, a.hi <= b.lo)
    if op == ">=":
        return decide(a.lo >= b.hi, a.hi < b.lo)
    if op == "==":
        return decide(a.exact and b.exact and a.lo == b.lo,
                      a.hi < b.lo or b.hi < a.lo)
    if op == "!=":
        return decide(a.hi < b.lo or b.hi < a.lo,
                      a.exact and b.exact and a.lo == b.lo)
    return Interval(0.0, 1.0)


# ---------------------------------------------------------------------------
# static operation counts (mirrors repro.ir.interp classification)
# ---------------------------------------------------------------------------

class _Acc:
    """Interval accumulator over the interpreter's OpCounts classes.

    ``nc`` counts non-complex compute ops (the interpreter's int + float
    classes together, which the walk knows exactly); ``flt`` is the
    float sub-count (a sub-interval of ``nc``: EITHER-typed operands
    make the split uncertain).
    """

    __slots__ = ("nc", "flt", "cpx", "loads", "stores", "ovh")

    def __init__(self) -> None:
        self.nc = _ZERO
        self.flt = _ZERO
        self.cpx = _ZERO
        self.loads = _ZERO
        self.stores = _ZERO
        self.ovh = _ZERO

    def add(self, other: "_Acc") -> None:
        self.nc = self.nc + other.nc
        self.flt = self.flt + other.flt
        self.cpx = self.cpx + other.cpx
        self.loads = self.loads + other.loads
        self.stores = self.stores + other.stores
        self.ovh = self.ovh + other.ovh

    def join(self, other: "_Acc") -> "_Acc":
        out = _Acc()
        out.nc = self.nc.join(other.nc)
        out.flt = self.flt.join(other.flt)
        out.cpx = self.cpx.join(other.cpx)
        out.loads = self.loads.join(other.loads)
        out.stores = self.stores.join(other.stores)
        out.ovh = self.ovh.join(other.ovh)
        return out

    # -- derived interpreter-facing intervals --------------------------
    @property
    def mem_ops(self) -> Interval:
        return self.loads + self.stores

    @property
    def int_ops(self) -> Interval:
        return Interval(max(self.nc.lo - self.flt.hi, 0.0),
                        max(self.nc.hi - self.flt.lo, 0.0))

    @property
    def float_ops(self) -> Interval:
        return self.flt

    @property
    def total_insts(self) -> Interval:
        return (self.nc + self.cpx + self.loads + self.stores + self.ovh)


#: static type lattice over expression results.
_INT, _FLT, _ANY = "i", "f", "e"


@dataclass
class SiteRec:
    """One textual load/store site with its execution-count interval."""

    obj: str
    index: Expr
    count: Interval
    definite: bool
    env: Env
    is_store: bool


@dataclass
class KernelCallCost:
    """Static cost of one kernel invocation with bound scalars."""

    kernel: Kernel
    scalars: Dict[str, Any]
    counts: _Acc
    sites: List[SiteRec]
    #: stable innermost-loop position -> (total iterations, invocations)
    trips: Dict[int, Tuple[Interval, Interval]]


class _Walker:
    """Single symbolic pass computing count intervals and access sites.

    Mirrors the golden interpreter's accounting exactly: loop bounds are
    evaluated once per invocation (their loads count), every iteration
    charges ``loop_overhead += 2``, a `Select` evaluates its condition,
    itself (one int op) and the taken branch only, and a `When` body
    executes iff its condition is truthy.
    """

    def __init__(self, kernel: Kernel, scalars: Mapping[str, Any]) -> None:
        self.kernel = kernel
        self.scalars = dict(scalars)
        self.acc = _Acc()
        self.sites: List[SiteRec] = []
        self.trips: Dict[int, List[Interval]] = {}
        self._inner_ids = kernel.innermost_loop_ids()
        self._tmp_types: Dict[str, str] = {}

    def run(self) -> KernelCallCost:
        env: Env = {}
        for loop in self.kernel.loops:
            self._loop(loop, _ONE, True, env)
        trips = {
            pos: (pair[0], pair[1]) for pos, pair in self.trips.items()
        }
        return KernelCallCost(self.kernel, self.scalars, self.acc,
                              self.sites, trips)

    # -- statements ----------------------------------------------------
    def _stmts(self, body: Sequence[Stmt], mult: Interval, definite: bool,
               env: Env) -> None:
        for stmt in body:
            if isinstance(stmt, Loop):
                self._loop(stmt, mult, definite, env)
            elif isinstance(stmt, When):
                self._when(stmt, mult, definite, env)
            elif isinstance(stmt, Store):
                self._expr(stmt.index, mult, definite, env)
                self._expr(stmt.value, mult, definite, env)
                self.acc.stores = self.acc.stores + mult
                self.sites.append(SiteRec(stmt.obj, stmt.index, mult,
                                          definite, dict(env), True))
            elif isinstance(stmt, Assign):
                t = self._expr(stmt.value, mult, definite, env)
                v = value_interval(stmt.value, env, self.scalars)
                env[stmt.name] = VarDesc(v.lo, v.hi)
                self._tmp_types[stmt.name] = t
            else:  # pragma: no cover - the IR has no other statements
                raise TypeError(f"unknown statement {type(stmt).__name__}")

    def _when(self, stmt: When, mult: Interval, definite: bool,
              env: Env) -> None:
        self._expr(stmt.cond, mult, definite, env)
        cv = value_interval(stmt.cond, env, self.scalars)
        if cv.lo > 0 or cv.hi < 0:
            self._stmts(stmt.body, mult, definite, env)
            return
        if cv.lo == cv.hi == 0:
            return
        # the body may or may not run: walk it on copies and join any
        # temp (re)definitions back so later reads see both outcomes
        body_env = dict(env)
        saved_types = dict(self._tmp_types)
        self._stmts(stmt.body, mult.times(Interval(0.0, 1.0)), False,
                    body_env)
        for name, desc in body_env.items():
            prior = env.get(name)
            if prior is desc:
                continue
            if prior is None:
                env[name] = VarDesc(-INF, INF)
            else:
                env[name] = VarDesc(min(prior.lo, desc.lo),
                                    max(prior.hi, desc.hi))
        for name, t in self._tmp_types.items():
            if saved_types.get(name) not in (t,):
                self._tmp_types[name] = _ANY
        for name in saved_types:
            self._tmp_types.setdefault(name, saved_types[name])

    def _loop(self, loop: Loop, mult: Interval, definite: bool,
              env: Env) -> None:
        # bound expressions are evaluated once per invocation
        self._expr(loop.lower, mult, definite, env)
        self._expr(loop.upper, mult, definite, env)
        lv = value_interval(loop.lower, env, self.scalars)
        uv = value_interval(loop.upper, env, self.scalars)
        step = loop.step
        if step > 0:
            t_lo = max(0.0, _ceil_div(uv.lo - lv.hi, step))
            t_hi = max(0.0, _ceil_div(uv.hi - lv.lo, step))
            v_lo, v_hi = lv.lo, uv.hi - 1
        else:
            t_lo = max(0.0, _ceil_div(lv.lo - uv.hi, -step))
            t_hi = max(0.0, _ceil_div(lv.hi - uv.lo, -step))
            v_lo, v_hi = uv.lo + 1, lv.hi
        if not math.isfinite(t_hi):
            t_hi = INF
        trip = Interval(t_lo if math.isfinite(t_lo) else 0.0, t_hi)
        total = mult.times(trip)

        pos = self._inner_ids.get(id(loop))
        if pos is not None:
            pair = self.trips.setdefault(pos, [_ZERO, _ZERO])
            pair[0] = pair[0] + total
            pair[1] = pair[1] + mult

        self.acc.ovh = self.acc.ovh + total.scale(2)
        if total.hi == 0:
            return
        grid_exact = lv.exact and uv.exact
        body_env = dict(env)
        body_env[loop.var] = VarDesc(
            v_lo, v_hi, n_values=trip, step_mag=abs(step),
            grid_exact=grid_exact,
        )
        saved_types = dict(self._tmp_types)
        self._stmts(loop.body, total, definite and trip.exact, body_env)
        self._tmp_types = saved_types

    # -- expressions ---------------------------------------------------
    def _expr(self, expr: Expr, mult: Interval, definite: bool,
              env: Env) -> str:
        if isinstance(expr, Const):
            return _FLT if isinstance(expr.value, float) else _INT
        if isinstance(expr, LoopVar):
            return _INT
        if isinstance(expr, Scalar):
            value = self.scalars.get(expr.name)
            if value is None:
                return _ANY
            return _FLT if isinstance(value, float) else _INT
        if isinstance(expr, Temp):
            return self._tmp_types.get(expr.name, _ANY)
        if isinstance(expr, Load):
            self._expr(expr.index, mult, definite, env)
            self.acc.loads = self.acc.loads + mult
            self.sites.append(SiteRec(expr.obj, expr.index, mult, definite,
                                      dict(env), False))
            obj = self.kernel.objects.get(expr.obj)
            if obj is None:
                return _ANY
            return _FLT if obj.dtype.is_float else _INT
        if isinstance(expr, UnaryOp):
            t = self._expr(expr.operand, mult, definite, env)
            return self._count_op(expr.op, (t,), mult)
        if isinstance(expr, BinOp):
            tl = self._expr(expr.lhs, mult, definite, env)
            tr = self._expr(expr.rhs, mult, definite, env)
            return self._count_op(expr.op, (tl, tr), mult)
        if isinstance(expr, Select):
            self._expr(expr.cond, mult, definite, env)
            self.acc.nc = self.acc.nc + mult  # the select itself, int
            cv = value_interval(expr.cond, env, self.scalars)
            if cv.lo > 0 or cv.hi < 0:
                return self._expr(expr.if_true, mult, definite, env)
            if cv.lo == cv.hi == 0:
                return self._expr(expr.if_false, mult, definite, env)
            t_true, acc_true = self._branch(expr.if_true, mult, env)
            t_false, acc_false = self._branch(expr.if_false, mult, env)
            self.acc.add(acc_true.join(acc_false))
            return t_true if t_true == t_false else _ANY
        raise TypeError(f"unknown expression {type(expr).__name__}")

    def _branch(self, expr: Expr, mult: Interval,
                env: Env) -> Tuple[str, _Acc]:
        """Walk one `Select` arm into a private accumulator.

        The arm may or may not execute: its site counts are widened to
        ``[0, hi]`` and marked indefinite before they reach the global
        site list.
        """
        saved = self.acc
        self.acc = _Acc()
        first_site = len(self.sites)
        t = self._expr(expr, mult, False, env)
        for i in range(first_site, len(self.sites)):
            site = self.sites[i]
            site.count = Interval(0.0, site.count.hi)
            site.definite = False
        sub = self.acc
        sub.nc = Interval(0.0, sub.nc.hi)
        sub.flt = Interval(0.0, sub.flt.hi)
        sub.cpx = Interval(0.0, sub.cpx.hi)
        sub.loads = Interval(0.0, sub.loads.hi)
        sub.stores = Interval(0.0, sub.stores.hi)
        self.acc = saved
        return t, sub

    def _count_op(self, op: str, operand_types: Tuple[str, ...],
                  mult: Interval) -> str:
        if op in COMPLEX_OPS:
            self.acc.cpx = self.acc.cpx + mult
        else:
            self.acc.nc = self.acc.nc + mult
            if _FLT in operand_types:
                self.acc.flt = self.acc.flt + mult
            elif _ANY in operand_types:
                self.acc.flt = self.acc.flt + Interval(0.0, mult.hi)
        return _result_type(op, operand_types)


def _result_type(op: str, operand_types: Tuple[str, ...]) -> str:
    if op in _CMP_OPS or op in ("&", "|", "^", "<<", ">>", "not", "floor"):
        return _INT
    if op in ("sqrt", "exp", "log", "rsqrt"):
        return _FLT
    if op in ("/", "%"):
        # int/int stays int (truncating); a float operand makes it float
        if all(t == _INT for t in operand_types):
            return _INT
        if _FLT in operand_types:
            return _FLT
        return _ANY
    # + - * min max abs unary-minus: join of the operand types
    if all(t == _INT for t in operand_types):
        return _INT
    if _FLT in operand_types and _ANY not in operand_types:
        return _FLT
    return _ANY


def analyze_kernel_call(kernel: Kernel,
                        scalars: Mapping[str, Any]) -> KernelCallCost:
    """Static counts/sites/trip intervals for one kernel invocation."""
    return _Walker(kernel, scalars).run()


# ---------------------------------------------------------------------------
# distinct-line (compulsory miss) lower bound
# ---------------------------------------------------------------------------

def _subst_scalars(expr: Expr, scalars: Mapping[str, Any]) -> Expr:
    """Rewrite integer `Scalar` refs to `Const` so affine_form applies."""
    if isinstance(expr, Scalar):
        value = scalars.get(expr.name)
        if isinstance(value, int) and not isinstance(value, bool):
            return Const(value)
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _subst_scalars(expr.lhs, scalars),
                     _subst_scalars(expr.rhs, scalars))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _subst_scalars(expr.operand, scalars))
    if isinstance(expr, Select):
        return Select(_subst_scalars(expr.cond, scalars),
                      _subst_scalars(expr.if_true, scalars),
                      _subst_scalars(expr.if_false, scalars))
    if isinstance(expr, Load):
        return Load(expr.obj, _subst_scalars(expr.index, scalars))
    return expr


def _site_distinct_lines(site: SiteRec, elem_bytes: int,
                         scalars: Mapping[str, Any]) -> int:
    """Lower bound on distinct cache lines one site must touch.

    Requires the site to execute over its full iteration grid (exact,
    definite count): then for any affine index the values taken while
    one induction variable sweeps (others held fixed) form an arithmetic
    progression of ``n`` elements with byte gap ``g``, touching at least
    ``(n-1)*g // LINE + 1`` distinct lines.
    """
    if not (site.definite and site.count.exact and site.count.lo >= 1):
        return 0
    form = affine_form(_subst_scalars(site.index, scalars))
    if form is None:
        return 0
    _const, coeffs = form
    best = 1  # the site executes at least once: one line minimum
    for var, coeff in coeffs.items():
        if coeff == 0:
            continue
        desc = site.env.get(var)
        if desc is None or not desc.grid_exact or desc.step_mag == 0:
            continue
        if not desc.n_values.exact or desc.n_values.lo < 1:
            continue
        n = int(desc.n_values.lo)
        gap = abs(coeff) * desc.step_mag * elem_bytes
        if gap >= CACHE_LINE_BYTES:
            # consecutive points land in different lines: exactly n
            # distinct lines (the span formula would count skipped lines)
            lines = n
        else:
            # no line is skipped, so the points cover every line in the
            # span: at least span // line_bytes + 1 distinct lines
            lines = (n - 1) * gap // CACHE_LINE_BYTES + 1
        best = max(best, lines)
    return best


def distinct_line_bound(calls: Sequence[KernelCallCost],
                        objects: Mapping[str, MemObject]) -> int:
    """Compulsory-miss lower bound: distinct lines the run must touch.

    Caches persist across calls, so per object the bound is the *max*
    over calls/sites (revisits may hit); objects live in disjoint slabs,
    so the run total is the sum over objects.
    """
    per_object: Dict[str, int] = {}
    for call in calls:
        for site in call.sites:
            obj = call.kernel.objects.get(site.obj)
            if obj is None:
                continue
            lines = _site_distinct_lines(site, obj.dtype.size_bytes,
                                         call.scalars)
            if lines:
                cap = -(-obj.size_bytes // CACHE_LINE_BYTES)
                per_object[site.obj] = max(per_object.get(site.obj, 0),
                                           min(lines, cap))
    del objects  # reserved for cross-kernel aliasing policies
    return sum(per_object.values())


# ---------------------------------------------------------------------------
# workload-level drivers
# ---------------------------------------------------------------------------

def enumerate_calls(instance: Any) -> List[Tuple[Kernel, Dict[str, Any]]]:
    """Materialize a workload instance's call schedule.

    Data-dependent schedules (e.g. BFS frontiers) advance on array
    state, so each call is executed through the golden interpreter on
    the instance's arrays — the exact discipline the runner's
    functional-interpretation pass uses, yielding the same schedule the
    simulator will see.
    """
    from ..ir.interp import Interpreter

    interp = Interpreter(record_trace=False)
    out: List[Tuple[Kernel, Dict[str, Any]]] = []
    for call in instance.calls():
        out.append((call.kernel, dict(call.scalars)))
        interp.run(call.kernel, instance.arrays, dict(call.scalars))
    return out


def derived_machine(spec: Any, base: MachineParams) -> MachineParams:
    """The exact machine derivation `SystemSimulator.__init__` applies."""
    from ..params import mono_da_cgra_machine

    machine = base
    if spec.big_fabric:
        machine = mono_da_cgra_machine(machine)
    if spec.accel_freq is not None:
        machine = machine.with_accel_freq(spec.accel_freq)
    if spec.io_issue_width is not None:
        machine = dc_replace(
            machine, inorder=dc_replace(
                machine.inorder, issue_width=spec.io_issue_width
            )
        )
    return machine


@dataclass
class CostReport:
    """Per-config metric intervals for one workload at one machine."""

    workload: str
    ncalls: int
    footprint_bytes: int
    #: config name -> metric name -> interval
    metrics: Dict[str, Dict[str, Interval]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def interval(self, config: str, metric: str) -> Interval:
        return self.metrics[config][metric]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "ncalls": self.ncalls,
            "footprint_bytes": self.footprint_bytes,
            "metrics": {
                config: {m: list(iv.as_pair()) for m, iv in per.items()}
                for config, per in self.metrics.items()
            },
            "notes": list(self.notes),
        }


class CostModel:
    """Derives metric intervals for a fixed call schedule and machine."""

    def __init__(self, calls: Sequence[Tuple[Kernel, Dict[str, Any]]],
                 machine: MachineParams,
                 host_insts_per_call: int,
                 serial_fraction: float,
                 objects: Optional[Mapping[str, MemObject]] = None) -> None:
        self.machine = machine
        self.host_insts_per_call = host_insts_per_call
        self.serial_fraction = serial_fraction
        self.calls = [analyze_kernel_call(k, s) for k, s in calls]
        self.objects: Dict[str, MemObject] = dict(objects or {})
        for kernel, _ in calls:
            for name, obj in kernel.objects.items():
                self.objects.setdefault(name, obj)
        self.distinct_lines = distinct_line_bound(self.calls, self.objects)
        self._compiled: Dict[Tuple[str, Any, bool], Any] = {}

    # -- shared --------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.objects.values())

    def predict(self, config: str) -> Dict[str, Interval]:
        from ..sim.system import config_spec

        spec = config_spec(config)
        machine = derived_machine(spec, self.machine)
        if spec.mode is None:
            return self._predict_ooo(machine)
        return self._predict_accel(spec, machine)

    # -- host baseline -------------------------------------------------
    def _predict_ooo(self, machine: MachineParams) -> Dict[str, Interval]:
        from ..events import cycles_to_ps

        core = machine.core
        mlp = min(core.mem_level_parallelism, machine.l1.mshrs)
        overlap = self.serial_fraction + (1.0 - self.serial_fraction) / mlp
        hipc = self.host_insts_per_call

        insts = _ZERO
        mem = _ZERO
        time_lo = 0.0
        time_hi = 0.0
        acc_total = _Acc()
        for call in self.calls:
            counts = call.counts
            acc_total.add(counts)
            call_insts = counts.total_insts + Interval.point(hipc)
            insts = insts + call_insts
            n = counts.mem_ops
            mem = mem + n
            c = call_insts.scale(1.0 / core.issue_width)
            port = _imax(counts.loads.scale(0.5), counts.stores)
            stall_hi = _mul0(n.hi, (LATM_OOO_ACCESS - machine.l1
                                    .latency_cycles)) * overlap
            cyc_lo = max(c.lo, port.lo)
            cyc_hi = c.hi + stall_hi + port.hi
            time_lo += cycles_to_ps(cyc_lo, core.freq_ghz)
            time_hi += (cycles_to_ps(cyc_hi, core.freq_ghz)
                        if math.isfinite(cyc_hi) else INF)

        d_lines = float(self.distinct_lines)
        out: Dict[str, Interval] = {
            "insts": insts,
            "mem_ops": mem,
            "l1": mem,
            "l2": Interval(d_lines, _mul0(mem.hi, L2_HI_PER_ACCESS)),
            "l3": Interval(d_lines, _mul0(mem.hi, L3_HI_PER_ACCESS)),
            "dram": Interval(d_lines, _mul0(mem.hi, DRAM_HI_PER_ACCESS)),
            "prefetches": Interval(0.0,
                                   _mul0(mem.hi, PREFETCH_HI_PER_ACCESS)),
            "acp": _ZERO,
            "accel_iterations": _ZERO,
            "movement_bytes": Interval(
                3 * CACHE_LINE_BYTES * d_lines,
                _mul0(mem.hi, MOVE_HI_PER_HOST_ACCESS)),
            "time_ps": Interval(time_lo, time_hi).widen(
                rel=1e-9, abs_=SLACK_PS_PER_CALL * len(self.calls)),
        }
        out["energy_pj"] = self._ooo_energy(machine, acc_total, insts,
                                            out, d_lines)
        return out

    def _ooo_energy(self, machine: MachineParams, acc: _Acc,
                    insts: Interval, out: Dict[str, Interval],
                    d_lines: float) -> Interval:
        t = machine.energy
        core_lo = (t.ooo_inst_overhead * insts.lo
                   + t.reg_access * 2.0 * insts.lo
                   + t.int_op * (acc.int_ops.lo + acc.ovh.lo)
                   + t.float_op * acc.float_ops.lo
                   + t.complex_op * acc.cpx.lo)
        core_hi = (_mul0(insts.hi, t.ooo_inst_overhead + 2.0 * t.reg_access)
                   + _mul0(acc.int_ops.hi + acc.ovh.hi, t.int_op)
                   + _mul0(acc.float_ops.hi, t.float_op)
                   + _mul0(acc.cpx.hi, t.complex_op))
        mem_lo = (t.l1_access * acc.mem_ops.lo
                  + (t.l2_access + t.l3_access + t.dram_line_access)
                  * d_lines)
        mem_hi = (_mul0(acc.mem_ops.hi, t.l1_access)
                  + _mul0(out["l2"].hi, t.l2_access)
                  + _mul0(out["l3"].hi, t.l3_access)
                  + _mul0(out["dram"].hi, t.dram_line_access)
                  + _mul0(out["movement_bytes"].hi,
                          2.0 * t.noc_byte_hop))
        return Interval(core_lo + mem_lo, core_hi + mem_hi).widen(
            rel=1e-9, abs_=1.0)

    # -- accelerator configs -------------------------------------------
    def _compile(self, kernel: Kernel, spec: Any,
                 call: KernelCallCost) -> Any:
        from ..compiler.pipeline import compile_kernel

        key = (kernel.fingerprint(), spec.mode, spec.no_stream_spec)
        cached = self._compiled.get(key)
        if cached is not None:
            return cached
        hint = 1
        for iters, _inv in call.trips.values():
            if math.isfinite(iters.hi) and iters.hi > hint:
                hint = int(iters.hi)
            elif iters.lo > hint:
                hint = int(iters.lo)
        compiled = compile_kernel(
            kernel, spec.mode, trip_count_hint=max(hint, 1),
            disable_stream_spec=spec.no_stream_spec,
        )
        self._compiled[key] = compiled
        return compiled

    def _predict_accel(self, spec: Any,
                       machine: MachineParams) -> Dict[str, Interval]:
        from ..accel.base import PartitionProfile
        from ..accel.inorder import InOrderBackend
        from ..events import cycles_to_ps
        from ..interface.config import AccessKind

        if spec.backend == "io":
            backend = InOrderBackend(machine.inorder)
        else:
            from ..accel.cgra.backend import CgraBackend
            backend = CgraBackend(machine.cgra)
        hipc = self.host_insts_per_call
        host_freq = machine.core.freq_ghz
        mem_freq = 2.0  # engine MEM_FREQ_GHZ

        insts = _ZERO
        mem = _ZERO
        accel_iters = _ZERO
        time_lo = 0.0
        time_hi = 0.0
        lines_tot = _ZERO       # stream lines fetched/drained
        elems_tot = _ZERO       # indirect/random element accesses
        fsm_elems = _ZERO       # per-access FSM element steps
        chan_iters = _ZERO      # per-channel operand sends
        intra_ops = _ZERO       # buffer reads+writes across partitions
        per_iter_pj_lo = 0.0
        per_iter_pj_hi = 0.0
        resid = _ZERO
        configured: set = set()
        config_calls_n = 0
        setup_pj = 0.0
        relaunches = _ZERO

        for call in self.calls:
            counts = call.counts
            mem = mem + counts.mem_ops
            compiled = self._compile(call.kernel, spec, call)
            loop_ids = call.kernel.innermost_loop_ids()
            total = counts.total_insts
            offloaded = _ZERO
            call_time_hi = 0.0
            for off in compiled.offloads:
                pos = loop_ids.get(id(off.loop))
                if pos is None or pos not in call.trips:
                    continue
                trips, invocations = call.trips[pos]
                per_iter = max(off.dfg.num_insts() + 2, 1)
                offloaded = offloaded + trips.scale(per_iter)
                accel_iters = accel_iters + trips
                profiles = [PartitionProfile.from_config(p)
                            for p in off.config.partitions]
                timings = [backend.timing(p) for p in profiles]
                # lower bound: a partition cannot beat its initiation
                # interval; offloads execute sequentially per call.
                if trips.lo > 0 and timings:
                    time_lo += max(t.ii_ps for t in timings) * trips.lo
                # energy: the per-iteration backend charge is exact
                for profile in profiles:
                    pj = _iteration_pj(backend, profile, machine.energy)
                    per_iter_pj_lo += pj * trips.lo
                    per_iter_pj_hi += _mul0(trips.hi, pj)
                    intra_ops = intra_ops + trips.scale(
                        profile.buffer_reads + profile.buffer_writes)
                th = trips.hi
                nchunks = (min(th, 129.0) if math.isfinite(th) else 129.0)
                n_channels = sum(len(p.produces) for p in
                                 off.config.partitions)
                chan_iters = chan_iters + trips.scale(max(n_channels, 0))
                off_lines = _ZERO
                off_elems = _ZERO
                for part in off.config.partitions:
                    for acc in part.accesses:
                        if acc.kind in (AccessKind.STREAM_READ,
                                        AccessKind.STREAM_WRITE):
                            stride = abs(acc.stride_elems) * acc.elem_bytes
                            if stride == 0 and not acc.is_write:
                                acc_lines = Interval(0.0, 1.0)
                            else:
                                span_hi = _mul0(th, stride)
                                acc_lines = Interval(
                                    0.0,
                                    span_hi / CACHE_LINE_BYTES + nchunks + 1
                                    if math.isfinite(span_hi) else INF)
                            off_lines = off_lines + acc_lines
                            fsm_elems = fsm_elems + Interval(0.0, th)
                        elif acc.kind in (AccessKind.INDIRECT,
                                          AccessKind.RANDOM):
                            off_elems = off_elems + Interval(0.0, th)
                            fsm_elems = fsm_elems + Interval(0.0, th)
                lines_tot = lines_tot + off_lines
                elems_tot = elems_tot + off_elems
                # makespan <= sum of every process's delays
                if math.isfinite(th) and th > 0:
                    fill_cyc = (off_lines.hi * (LATM_LINE / 4.0 + 1.0)
                                + off_elems.hi * LATM_ELEM)
                    call_time_hi += cycles_to_ps(fill_cyc, mem_freq)
                    call_time_hi += sum(t.ii_ps for t in timings) * th
                    # channels: a pipelined buffer only delays once (the
                    # c == 0 operand fill in _partition_proc); a channel
                    # inside a fused dependence cycle pays the operand
                    # NoC round trip every iteration
                    noc = machine.noc
                    diam_cyc = (
                        (noc.mesh_rows - 1 + noc.mesh_cols - 1)
                        * noc.hop_latency_cycles
                    )
                    fused_ids = _fused_channel_ids(off.config)
                    for ch in off.config.channels:
                        flits = -(-ch.payload_bytes // noc.flit_bytes)
                        if ch.channel_id in fused_ids:
                            call_time_hi += th * cycles_to_ps(
                                diam_cyc + max(flits - 1, 0), mem_freq)
                        # one-time pipeline fill: head hops plus the
                        # serialized flits of the first chunk's payload
                        call_time_hi += CHAN_FILL_PS + cycles_to_ps(
                            th * ch.payload_bytes
                            / (TARGET_CHUNKS_BOUND * noc.flit_bytes)
                            + diam_cyc + 1, mem_freq)
                    call_time_hi += 2 * nchunks * len(timings) + nchunks
                elif th > 0:
                    call_time_hi = INF
                # one-time configure per offload object
                cfg_key = (id(compiled), id(off))
                if th > 0 and cfg_key not in configured:
                    configured.add(cfg_key)
                    config_calls_n += len(off.config.config_calls())
                    setup = max((backend.setup_cycles(p)
                                 for p in off.config.partitions), default=0)
                    call_time_hi += CONFIGURE_PS + cycles_to_ps(
                        setup, backend.freq_ghz)
                    setup_pj += _setup_pj(backend, off.config.partitions,
                                          machine.energy)
                # per-invocation relaunch sync (host HOST_SYNC_CYCLES)
                if (invocations.hi > 1 and not spec.localized_control
                        and _bounds_data_dependent(off)):
                    extra = (invocations - _ONE).clamp_nonneg()
                    relaunches = relaunches + extra
                    call_time_hi += (_mul0(extra.hi, RELAUNCH_PS)
                                     if math.isfinite(extra.hi) else INF)
                    if trips.lo > 0 and extra.lo > 0:
                        time_lo += extra.lo * RELAUNCH_PS

            call_insts = Interval(
                max(total.lo, offloaded.lo) + hipc,
                max(total.hi, offloaded.hi) + hipc)
            insts = insts + call_insts
            call_resid = Interval(
                max(total.lo - offloaded.hi, 0.0) + hipc,
                max(total.hi - offloaded.lo, 0.0) + hipc)
            resid = resid + call_resid
            time_lo += cycles_to_ps(
                call_resid.lo / machine.core.issue_width, host_freq)
            if math.isfinite(time_hi):
                if math.isfinite(call_time_hi) \
                        and math.isfinite(call_resid.hi):
                    time_hi += call_time_hi + cycles_to_ps(
                        call_resid.hi / machine.core.issue_width, host_freq)
                else:
                    time_hi = INF

        t = machine.energy
        lines_elems_hi = (lines_tot.hi + elems_tot.hi
                          if math.isfinite(lines_tot.hi)
                          and math.isfinite(elems_tot.hi) else INF)
        l3_hi = _mul0(lines_elems_hi, 3.0) + 16.0
        dram_hi = _mul0(lines_elems_hi, 2.0) + 16.0
        acp_hi = _mul0(lines_elems_hi, 2.0) + 16.0
        movement_hi = (_mul0(lines_tot.hi, MOVE_HI_PER_LINE)
                       + _mul0(elems_tot.hi, MOVE_HI_PER_ELEM)
                       + _mul0(chan_iters.hi, 128.0)
                       + 2048.0 * max(len(configured), 1)
                       + 4096.0)
        out: Dict[str, Interval] = {
            "insts": insts,
            "mem_ops": mem,
            "accel_iterations": accel_iters,
            "l1": _ZERO,
            "l2": (Interval(0.0, _mul0(lines_elems_hi, 2.0) + 16.0)
                   if spec.private_cache else _ZERO),
            "prefetches": _ZERO,
            "l3": Interval(0.0, l3_hi),
            "dram": Interval(0.0, dram_hi),
            "acp": Interval(0.0, acp_hi),
            "movement_bytes": Interval(0.0, movement_hi),
            "time_ps": Interval(time_lo, time_hi).widen(
                rel=1e-9,
                abs_=SLACK_PS_PER_CALL * max(len(self.calls), 1)),
        }
        energy_lo = (per_iter_pj_lo
                     + t.ooo_inst_overhead * resid.lo)
        event_sites = (lines_elems_hi + elems_tot.hi + fsm_elems.hi
                       + intra_ops.hi + chan_iters.hi
                       if math.isfinite(lines_elems_hi)
                       and math.isfinite(fsm_elems.hi)
                       and math.isfinite(intra_ops.hi) else INF)
        energy_hi = (per_iter_pj_hi
                     + _mul0(resid.hi, t.ooo_inst_overhead)
                     + setup_pj
                     + _mul0(event_sites, 16.0)
                     + _mul0(out["l3"].hi, t.l3_access)
                     + _mul0(out["dram"].hi, t.dram_line_access)
                     + _mul0(out["acp"].hi, 4.0)
                     + _mul0(out["l2"].hi, t.private_cache_access)
                     + _mul0(movement_hi, 2.0 * t.noc_byte_hop)
                     + _mul0(relaunches.hi, 2.0 * t.mmio_access)
                     + config_calls_n * (t.mmio_access
                                         + t.sched_table_access) * 64.0
                     + ENERGY_MARGIN_PJ_PER_CALL * max(len(self.calls), 1))
        out["energy_pj"] = Interval(energy_lo, energy_hi).widen(
            rel=1e-9, abs_=1.0)
        return out


def _iteration_pj(backend: Any, profile: Any,
                  table: EnergyTable) -> float:
    from ..energy import EnergyLedger

    ledger = EnergyLedger(table)
    backend.charge_iteration(profile, ledger, 1.0)
    return ledger.total_pj()


def _setup_pj(backend: Any, partitions: Sequence[Any],
              table: EnergyTable) -> float:
    from ..energy import EnergyLedger

    ledger = EnergyLedger(table)
    charge = getattr(backend, "charge_setup", None)
    if charge is not None:
        for part in partitions:
            charge(part, ledger)
    return ledger.total_pj()


def _fused_channel_ids(config: Any) -> set:
    """Channel ids inside a multi-partition SCC of the channel graph.

    Mirrors the runtime engine's ``_serial_groups``: those channels are
    executed as a per-iteration dependence cycle (the operand round
    trip is paid every iteration); every other channel is a pipelined
    buffer whose only timing cost is a one-time fill delay.
    """
    n = config.num_partitions
    succ: Dict[int, List[int]] = {p: [] for p in range(n)}
    for ch in config.channels:
        succ[ch.producer_partition].append(ch.consumer_partition)
    # iterative Tarjan (partition counts are tiny, but avoid recursion)
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    comp: Dict[int, int] = {}
    counter = [0]
    ncomp = [0]

    def strongconnect(root: int) -> None:
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for i in range(pi, len(succ[v])):
                w = succ[v][i]
                if w not in index:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack.get(w):
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = ncomp[0]
                    if w == v:
                        break
                ncomp[0] += 1
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])

    for p in range(n):
        if p not in index:
            strongconnect(p)
    sizes: Dict[int, int] = {}
    for c in comp.values():
        sizes[c] = sizes.get(c, 0) + 1
    fused = set()
    for ch in config.channels:
        same = comp[ch.producer_partition] == comp[ch.consumer_partition]
        if same and (sizes[comp[ch.producer_partition]] > 1
                     or ch.producer_partition == ch.consumer_partition):
            fused.add(ch.channel_id)
    return fused


def _bounds_data_dependent(offload: Any) -> bool:
    for expr in (offload.loop.lower, offload.loop.upper):
        if any(isinstance(node, Load) for node in expr.walk()):
            return True
    return False


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def cost_model_for_instance(instance: Any,
                            machine: MachineParams) -> CostModel:
    """Build a :class:`CostModel` from a fresh workload instance."""
    calls = enumerate_calls(instance)
    objects: Dict[str, MemObject] = {}
    for kernel, _ in calls:
        objects.update(kernel.objects)
    return CostModel(
        calls, machine,
        host_insts_per_call=instance.host_insts_per_call,
        serial_fraction=instance.serial_fraction,
        objects=objects,
    )


def workload_cost_report(instance: Any, machine: MachineParams,
                         configs: Optional[Sequence[str]] = None,
                         name: Optional[str] = None) -> CostReport:
    """Cost intervals for one workload instance across ``configs``
    (default: the six validated paper configurations)."""
    if configs is None:
        configs = VALIDATED_CONFIGS
    model = cost_model_for_instance(instance, machine)
    report = CostReport(
        workload=name or getattr(instance, "name", "workload"),
        ncalls=len(model.calls),
        footprint_bytes=model.footprint_bytes,
    )
    for config in configs:
        report.metrics[config] = model.predict(config)
    if model.distinct_lines:
        report.notes.append(
            f"compulsory-miss bound: {model.distinct_lines} distinct lines")
    return report


def measured_metrics(run: Any) -> Dict[str, float]:
    """Project a :class:`RunResult` onto the AN-C metric keys."""
    stats = run.cache_stats
    return {
        "time_ps": float(run.time_ps),
        "energy_pj": float(run.energy.total_pj()),
        "insts": float(run.insts),
        "mem_ops": float(run.mem_ops),
        "movement_bytes": float(run.movement_bytes),
        "l1": float(stats.l1),
        "l2": float(stats.l2),
        "l3": float(stats.l3),
        "dram": float(stats.dram),
        "prefetches": float(stats.prefetches),
        "acp": float(stats.acp),
        "accel_iterations": float(run.accel_iterations),
    }


@dataclass(frozen=True)
class BoundViolation:
    """One measured metric escaping its static interval."""

    config: str
    metric: str
    measured: float
    lo: float
    hi: float

    def format(self) -> str:
        return (f"{self.config}.{self.metric}: measured {self.measured!r} "
                f"outside static interval [{self.lo!r}, {self.hi!r}]")


def check_bounds(predicted: Mapping[str, Interval],
                 run: Any, config: str) -> List[BoundViolation]:
    """Soundness check: every measured metric inside its interval."""
    measured = measured_metrics(run)
    out: List[BoundViolation] = []
    for metric in METRICS:
        interval = predicted.get(metric)
        if interval is None:
            continue
        value = measured[metric]
        if not interval.contains(value):
            out.append(BoundViolation(config, metric, value,
                                      interval.lo, interval.hi))
    return out

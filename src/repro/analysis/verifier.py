"""Structural + range verification of kernel IR (rules AN-V01..AN-V15).

The static counterpart of LLVM's module verifier for our kernel IR
(paper §V leans on LLVM's SSA verifier before deciding offload
legality). Where :meth:`repro.ir.program.Kernel.validate` raises on the
first constructor-time violation, this pass checks *everything* —
including properties only establishable with value-range analysis —
and reports each violation as a :class:`~repro.analysis.findings.Finding`
with a rule id and a path-qualified location.

Rules
-----
==========  ========  =====================================================
AN-V01      error     loop variable used out of scope
AN-V02      error     shadowed loop variable
AN-V03      error     temp read before assignment
AN-V04      warning   conditionally-assigned temp read under a different
                      (or no) predicate
AN-V05      error     load/store on an undeclared memory object
AN-V06      error     undeclared scalar parameter
AN-V07      error     malformed When (loop in body, empty body)
AN-V08      warning   float-valued expression stored to an integer object
AN-V09      warning   bitwise/shift operator applied to a float operand
AN-V10      error*    static out-of-bounds affine access (*warning when
                      the access is predicated or the range is inexact)
AN-V11      warning   statically dead loop (zero trip count)
AN-V12      error     unknown output object
AN-V13      warning   declared output object is never stored to
AN-V14      error     malformed loop (empty body, zero step)
AN-V15      error     kernel has no loops
==========  ========  =====================================================

``assert_kernel_verified`` is the default-on guard wired into
``compile_kernel`` and the golden interpreter; set ``REPRO_NO_VERIFY=1``
to opt out (e.g. to reproduce a dynamic failure the verifier would
reject statically).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import envcfg
from ..errors import AnalysisError
from ..ir.expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from ..ir.program import Kernel
from ..ir.stmt import Assign, Loop, Stmt, Store, When
from .findings import Finding, Location, Severity, errors_of
from .ranges import (
    Env,
    affine_form,
    affine_range,
    expr_interval,
    loop_var_range,
)

#: cache attribute set on kernels that passed the guard once
_VERIFIED_ATTR = "_analysis_verified"
#: environment variable disabling the default-on guard (declared in
#: :mod:`repro.envcfg`, the authoritative ``REPRO_*`` registry)
OPT_OUT_ENV = envcfg.REPRO_NO_VERIFY.name


def verification_enabled() -> bool:
    return envcfg.verification_enabled()


def verify_kernel(kernel: Kernel) -> List[Finding]:
    """Run every verifier rule; returns all findings (possibly empty)."""
    return _Verifier(kernel).run()


def assert_kernel_verified(kernel: Kernel, context: str = "") -> None:
    """Guard entry point: raise :class:`AnalysisError` on ERROR findings.

    Results are cached per kernel object, so per-call users (the
    interpreter runs once per kernel invocation) pay the analysis once.
    """
    if not verification_enabled():
        return
    if kernel.__dict__.get(_VERIFIED_ATTR):
        return
    findings = verify_kernel(kernel)
    errors = errors_of(findings)
    if errors:
        where = f" (at {context})" if context else ""
        lines = "\n".join(f.format() for f in errors)
        raise AnalysisError(
            f"kernel {kernel.name!r} failed static verification{where}:\n"
            f"{lines}",
            findings=errors,
        )
    kernel.__dict__[_VERIFIED_ATTR] = True


# ---------------------------------------------------------------------------
#: tri-state float inference: True / False / None (unknown)
_TriState = Optional[bool]

#: per-temp state: (predicate repr it was assigned under or None, dtype)
_TempInfo = Tuple[Optional[str], _TriState]


class _Verifier:
    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.findings: List[Finding] = []
        self.loc = Location(kernel.name)
        self.stored_objects: set = set()

    # -- helpers -----------------------------------------------------------
    def emit(self, rule: str, severity: Severity, message: str,
             obj: Optional[str] = None) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, location=self.loc.path(),
            message=message, kernel=self.kernel.name, obj=obj,
        ))

    # -- entry -------------------------------------------------------------
    def run(self) -> List[Finding]:
        kernel = self.kernel
        if not kernel.loops:
            self.emit("AN-V15", Severity.ERROR, "kernel has no loops")
        for out in kernel.outputs:
            if out not in kernel.objects:
                self.emit("AN-V12", Severity.ERROR,
                          f"unknown output object {out!r}", obj=out)
        for loop in kernel.loops:
            self._check_loop(loop, scope=[], env={}, temps={},
                             when_stack=[])
        for out in kernel.outputs:
            if out in kernel.objects and out not in self.stored_objects:
                self.emit("AN-V13", Severity.WARNING,
                          f"output object {out!r} is never stored to",
                          obj=out)
        return self.findings

    # -- loops -------------------------------------------------------------
    def _check_loop(self, loop: Loop, scope: List[str], env: Env,
                    temps: Dict[str, _TempInfo],
                    when_stack: List[str]) -> None:
        self.loc.push(f"loop[{loop.var}]")
        try:
            if loop.step == 0:
                self.emit("AN-V14", Severity.ERROR, "loop step is zero")
            if not loop.body:
                self.emit("AN-V14", Severity.ERROR, "loop body is empty")
            if loop.var in scope:
                self.emit("AN-V02", Severity.ERROR,
                          f"loop variable {loop.var!r} shadows an "
                          f"enclosing loop")
            # bound expressions evaluate in the *enclosing* scope
            for bound in (loop.lower, loop.upper):
                self._check_expr(bound, scope, env, temps, when_stack)
            var_range = (loop_var_range(loop, env)
                         if loop.step != 0 else None)
            if var_range is not None and var_range.empty:
                self.emit("AN-V11", Severity.WARNING,
                          f"loop over {loop.var!r} statically executes "
                          f"zero iterations")
            inner_scope = scope + [loop.var]
            inner_env = dict(env)
            if var_range is not None and not var_range.empty:
                inner_env[loop.var] = var_range
            # temps defined before a nested loop stay visible inside it;
            # definitions inside don't leak back (fresh env per iteration)
            inner_temps = dict(temps)
            for idx, stmt in enumerate(loop.body):
                if isinstance(stmt, Loop):
                    self._check_loop(stmt, inner_scope, inner_env,
                                     dict(inner_temps), when_stack)
                else:
                    self.loc.push(f"stmt[{idx}]")
                    try:
                        self._check_stmt(stmt, inner_scope, inner_env,
                                         inner_temps, when_stack)
                    finally:
                        self.loc.pop()
        finally:
            self.loc.pop()

    # -- statements ---------------------------------------------------------
    def _check_stmt(self, stmt: Stmt, scope: List[str], env: Env,
                    temps: Dict[str, _TempInfo],
                    when_stack: List[str]) -> None:
        if isinstance(stmt, When):
            self._check_when(stmt, scope, env, temps, when_stack)
            return
        if isinstance(stmt, Assign):
            self._check_expr(stmt.value, scope, env, temps, when_stack)
            cond = when_stack[-1] if when_stack else None
            temps[stmt.name] = (cond, self._float_of(stmt.value, temps))
            return
        if isinstance(stmt, Store):
            self._check_expr(stmt.index, scope, env, temps, when_stack)
            self._check_expr(stmt.value, scope, env, temps, when_stack)
            self.stored_objects.add(stmt.obj)
            obj = self.kernel.objects.get(stmt.obj)
            if obj is None:
                self.emit("AN-V05", Severity.ERROR,
                          f"store to undeclared object {stmt.obj!r}",
                          obj=stmt.obj)
            else:
                self._check_bounds(stmt.obj, stmt.index, env,
                                   guarded=bool(when_stack),
                                   is_write=True)
                if (not obj.dtype.is_float
                        and self._float_of(stmt.value, temps) is True):
                    self.emit(
                        "AN-V08", Severity.WARNING,
                        f"float-valued expression stored to integer "
                        f"object {stmt.obj!r} ({obj.dtype!r}); the value "
                        f"is silently truncated", obj=stmt.obj,
                    )
            return
        self.emit("AN-V14", Severity.ERROR,
                  f"unknown statement kind {type(stmt).__name__}")

    def _check_when(self, stmt: When, scope: List[str], env: Env,
                    temps: Dict[str, _TempInfo],
                    when_stack: List[str]) -> None:
        self.loc.push("when")
        try:
            if not stmt.body:
                self.emit("AN-V07", Severity.ERROR, "When body is empty")
            self._check_expr(stmt.cond, scope, env, temps, when_stack)
            inner_stack = when_stack + [repr(stmt.cond)]
            for idx, inner in enumerate(stmt.body):
                if isinstance(inner, Loop):
                    self.emit("AN-V07", Severity.ERROR,
                              "When bodies may not contain loops")
                    continue
                self.loc.push(f"stmt[{idx}]")
                try:
                    self._check_stmt(inner, scope, env, temps, inner_stack)
                finally:
                    self.loc.pop()
        finally:
            self.loc.pop()

    # -- expressions ---------------------------------------------------------
    def _check_expr(self, expr: Expr, scope: List[str], env: Env,
                    temps: Dict[str, _TempInfo],
                    when_stack: List[str]) -> None:
        for node in expr.walk():
            if isinstance(node, LoopVar):
                if node.name not in scope:
                    self.emit("AN-V01", Severity.ERROR,
                              f"loop variable {node.name!r} used out of "
                              f"scope (live: {scope or 'none'})")
            elif isinstance(node, Scalar):
                if node.name not in self.kernel.scalars:
                    self.emit("AN-V06", Severity.ERROR,
                              f"undeclared scalar {node.name!r}")
            elif isinstance(node, Temp):
                self._check_temp_read(node, temps, when_stack)
            elif isinstance(node, Load):
                if node.obj not in self.kernel.objects:
                    self.emit("AN-V05", Severity.ERROR,
                              f"load from undeclared object "
                              f"{node.obj!r}", obj=node.obj)
                else:
                    self._check_bounds(node.obj, node.index, env,
                                       guarded=bool(when_stack),
                                       is_write=False)
            elif isinstance(node, BinOp):
                if node.op in ("&", "|", "^", "<<", ">>"):
                    for side in (node.lhs, node.rhs):
                        if self._float_of(side, temps) is True:
                            self.emit(
                                "AN-V09", Severity.WARNING,
                                f"bitwise op {node.op!r} applied to a "
                                f"float-valued operand {side!r}; the "
                                f"operand is silently truncated to int",
                            )

    def _check_temp_read(self, node: Temp, temps: Dict[str, _TempInfo],
                         when_stack: List[str]) -> None:
        info = temps.get(node.name)
        if info is None:
            self.emit("AN-V03", Severity.ERROR,
                      f"temp %{node.name} read before assignment")
            return
        assigned_under, _ = info
        if assigned_under is not None and assigned_under not in when_stack:
            self.emit(
                "AN-V04", Severity.WARNING,
                f"temp %{node.name} was assigned under predicate "
                f"{assigned_under} but is read under "
                f"{when_stack[-1] if when_stack else 'no predicate'}; "
                f"the read faults whenever the predicate was false",
            )

    # -- bounds --------------------------------------------------------------
    def _check_bounds(self, obj_name: str, index: Expr, env: Env,
                      guarded: bool, is_write: bool) -> None:
        obj = self.kernel.objects[obj_name]
        size = obj.num_elements
        rng: Optional[Tuple[int, int]] = None
        exact = False
        form = affine_form(index)
        if form is not None:
            res = affine_range(form[0], form[1], env)
            if res is not None:
                rng = (res[0], res[1])
                exact = res[2]
        if rng is None:
            # clamp idioms (min/max) are handled by interval arithmetic;
            # anything involving loads/scalars/temps stays unknown
            if any(isinstance(n, (Load, Scalar, Temp))
                   for n in index.walk()):
                return
            rng = expr_interval(index, env)
            if rng is None:
                return
        lo, hi = rng
        if lo >= 0 and hi < size:
            return
        kind = "store" if is_write else "load"
        definite = exact and not guarded
        self.emit(
            "AN-V10",
            Severity.ERROR if definite else Severity.WARNING,
            f"{kind} {obj_name}[{index!r}] has static index range "
            f"[{lo}, {hi}] outside object bounds [0, {size - 1}]"
            + ("" if definite else " (may be unreachable)"),
            obj=obj_name,
        )

    # -- dtype inference -----------------------------------------------------
    def _float_of(self, expr: Expr, temps: Dict[str, _TempInfo]) -> _TriState:
        """True = definitely float-valued, False = definitely integer,
        None = statically unknown."""
        kind = expr.__class__
        if kind is Const:
            return isinstance(expr.value, float)
        if kind is LoopVar:
            return False
        if kind is Scalar:
            return None  # runtime value; ints and floats both occur
        if kind is Temp:
            info = temps.get(expr.name)
            return info[1] if info is not None else None
        if kind is Load:
            obj = self.kernel.objects.get(expr.obj)
            return obj.dtype.is_float if obj is not None else None
        if kind is UnaryOp:
            if expr.op in ("sqrt", "exp", "log"):
                return True
            if expr.op in ("floor", "not"):
                return False
            return self._float_of(expr.operand, temps)
        if kind is Select:
            t = self._float_of(expr.if_true, temps)
            f = self._float_of(expr.if_false, temps)
            if t is True or f is True:
                return True
            if t is False and f is False:
                return False
            return None
        if kind is BinOp:
            if expr.op in ("==", "!=", "<", "<=", ">", ">=",
                           "&", "|", "^", "<<", ">>"):
                return False
            lhs = self._float_of(expr.lhs, temps)
            rhs = self._float_of(expr.rhs, temps)
            if lhs is True or rhs is True:
                return True
            if lhs is False and rhs is False:
                return False
            return None
        return None

"""Simulation-as-a-service: a persistent sweep server over the DSE engine.

Batch sweeps (``python -m repro.dse``) pay full startup per query. This
package keeps the engine resident: a long-running server
(``python -m repro.serve``) accepts sweep specs and single-cell queries
over HTTP (TCP or a unix socket), dedups identical in-flight points,
shards dataset groups over a worker pool exactly the way
:mod:`repro.dse.scheduler` does — so service rows are byte-identical to
batch rows — and answers repeated queries from an indexed sqlite result
store (:class:`repro.dse.store.SqliteResultStore`) in milliseconds.
Most interactive design-space traffic is a cache hit; the service
measures that (hit ratio, queue depth/latency, points/sec via
``repro.obs``) and ``benchmarks/perf/bench_serve.py`` pins it under a
synthetic request storm.

Operator guide (endpoints, job lifecycle, store migration, failure
modes): docs/SERVICE.md. Entry points::

    python -m repro.serve --port 8177 --store serve-store.sqlite

    from repro.serve import ServeClient
    client = ServeClient(port=8177)
    job = client.submit_sweep("smoke")
    client.wait_job(job["id"])
    rows = client.job_rows(job["id"])
"""

from .client import ServeClient, ServiceError
from .config import ServeConfig
from .jobs import Job, JobManager
from .protocol import API_VERSION, ENDPOINTS, JOB_STATES
from .server import SweepServer
from .workers import WorkerPool

__all__ = [
    "API_VERSION", "ENDPOINTS", "JOB_STATES", "Job", "JobManager",
    "ServeClient", "ServeConfig", "ServiceError", "SweepServer",
    "WorkerPool",
]

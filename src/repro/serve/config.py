"""Service configuration: one dataclass, env defaults, CLI overrides.

Defaults come from the ``REPRO_SERVE_*`` environment variables declared
in :mod:`repro.envcfg` (see the README table); ``python -m repro.serve``
flags override them per invocation. The precedence is therefore
flag > environment > built-in default, the same contract ``--jobs`` /
``REPRO_JOBS`` already follows elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import envcfg
from ..errors import ConfigError


@dataclass
class ServeConfig:
    """Everything a :class:`~repro.serve.server.SweepServer` needs."""

    #: TCP bind address; loopback by default — the service ships with
    #: no authentication, so exposing it wider is an operator decision
    host: str = "127.0.0.1"
    port: int = 8177
    #: unix-domain socket path; set, it replaces TCP entirely
    socket_path: Optional[str] = None
    store_path: str = "serve-store.sqlite"
    workers: int = 2
    #: per-dataset-group execution timeout; 0 disables
    timeout_s: float = 0.0
    #: extra pool-level attempts after a group times out or crashes
    retries: int = 1
    #: base backoff between pool-level attempts (doubles per attempt)
    backoff_s: float = 0.05
    #: age-based row TTL in the sqlite store; 0 disables
    ttl_s: float = 0.0
    #: sqlite store row cap (oldest-first eviction); 0 means unbounded
    max_rows: int = 0
    #: run dataset groups on the consumer threads instead of a process
    #: pool (deterministic and fork-free; used by tests and the bench)
    inline: bool = False
    #: seconds between housekeeping passes (TTL eviction)
    housekeeping_s: float = 60.0

    @classmethod
    def from_env(cls) -> "ServeConfig":
        """Defaults with every ``REPRO_SERVE_*`` variable applied."""
        return cls(
            port=envcfg.serve_port(),
            store_path=envcfg.serve_store_path(),
            workers=envcfg.serve_workers(),
            ttl_s=float(envcfg.serve_ttl_s()),
            max_rows=envcfg.serve_max_rows(),
            timeout_s=float(envcfg.serve_timeout_s()),
        )

    def validate(self) -> None:
        if self.workers < 1:
            raise ConfigError("serve: workers must be >= 1")
        if self.port < 0 or self.port > 65535:
            raise ConfigError(f"serve: bad port {self.port}")
        if self.retries < 0:
            raise ConfigError("serve: retries must be >= 0")
        for name in ("timeout_s", "backoff_s", "ttl_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"serve: {name} must be >= 0")
        if self.max_rows < 0:
            raise ConfigError("serve: max_rows must be >= 0")


__all__ = ["ServeConfig"]

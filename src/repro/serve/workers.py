"""The service's worker pool: dataset-group execution with retries.

The unit of work is the same one ``repro.dse.scheduler`` shards over
its process pool: a *dataset group* — every pending point that shares a
functional trace key — so the golden interpretation runs once per
dataset and every machine point in the group replays it. Work items
flow through a FIFO consumed by ``workers`` daemon threads; each thread
executes its group either on a shared :class:`ProcessPoolExecutor`
(default — real parallelism, crash isolation) or inline on the consumer
thread (``processes=False`` — deterministic, fork-free; tests and the
storm bench use it).

Failure containment, in escalating order:

* a point that raises is retried once *inside* the runner and recorded
  as a ``failed`` row (``dse.scheduler._run_point`` semantics — the
  common case, and invisible to the pool);
* a group whose runner call itself fails — worker-process crash
  (``BrokenProcessPool``, after which the executor is rebuilt), pickle
  error, or ``timeout_s`` exceeded — is retried up to ``retries`` more
  times with exponential backoff;
* a group still failing after that synthesizes a ``failed`` row per
  point, so the job completes with recorded errors instead of wedging
  the service.

A timed-out group's worker process may keep computing (there is no
preemption inside a point); its eventual result is discarded and the
pool slot frees when it finishes. ``timeout_s`` therefore bounds how
long a *job* can stall, not peak pool occupancy.

Observability (``repro.obs``): ``serve.queue_depth`` (max),
``serve.groups_submitted`` / ``serve.groups_retried`` /
``serve.groups_timeout`` / ``serve.groups_gave_up`` counters and the
``serve.queue_latency`` / ``serve.group_exec`` timers.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import OBS
from ..params import MachineParams, machine_digest
from ..sim.tracecache import TraceCache
from ..dse.scheduler import _run_group, _sweep_worker
from ..dse.spec import STORE_VERSION, SweepPoint

#: one pending (hash, point) pair, as the scheduler shards them
Group = List[Tuple[str, SweepPoint]]

#: a runner maps ``(group, base)`` to ``(rows_with_walls, obs_snapshot)``
#: — the :func:`repro.dse.scheduler._sweep_worker` contract
Runner = Callable[[tuple], Tuple[List[Tuple[Dict[str, object], float]],
                                 Optional[dict]]]


def inline_group_runner(args) -> Tuple[
        List[Tuple[Dict[str, object], float]], Optional[dict]]:
    """Run one dataset group on the calling thread (no subprocess).

    Matches ``_sweep_worker`` semantics — a fresh single-entry trace
    cache per group — but reports straight into the process-global OBS
    registry, so no snapshot needs merging.
    """
    group, base = args
    cache = TraceCache(max_entries=1)
    return _run_group(group, base, cache), None


def failed_rows_for_group(group: Group, base: MachineParams, error: str,
                          attempts: int) -> List[Dict[str, object]]:
    """Synthesize the ``failed`` row every point of a group gets when
    the pool gives up on the group as a whole."""
    return [{
        "hash": hash_,
        "version": STORE_VERSION,
        "status": "failed",
        "point": point.as_dict(),
        "machine_digest": machine_digest(point.machine(base)),
        "metrics": None,
        "error": error,
        "attempts": attempts,
    } for hash_, point in group]


@dataclass
class GroupWork:
    """One queued dataset group plus its completion callbacks."""

    group: Group
    base: MachineParams
    #: receives the finished plain rows (wall clocks stripped)
    on_rows: Callable[[List[Dict[str, object]]], None]
    #: fires when the group is dequeued (jobs flip queued -> running)
    on_start: Optional[Callable[[Group], None]] = None
    enqueued_at: float = field(default_factory=perf_counter)


_STOP = object()


class WorkerPool:
    """FIFO of dataset groups drained by ``workers`` consumer threads."""

    def __init__(self, workers: int = 2, processes: bool = True,
                 timeout_s: float = 0.0, retries: int = 1,
                 backoff_s: float = 0.05,
                 runner: Optional[Runner] = None):
        self.workers = max(1, int(workers))
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self._queue: "queue.Queue" = queue.Queue()
        self._depth = 0
        self._lock = threading.Lock()
        self._closed = False
        self._processes = processes
        self._pool: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=self.workers)
            if processes else None
        )
        self._runner: Runner = runner or (
            _sweep_worker if processes else inline_group_runner)
        self._threads = [
            threading.Thread(target=self._loop, daemon=True,
                             name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ----------------------------------------------------
    def submit(self, group: Group, base: MachineParams,
               on_rows: Callable[[List[Dict[str, object]]], None],
               on_start: Optional[Callable[[Group], None]] = None
               ) -> None:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        with self._lock:
            self._depth += 1
            OBS.observe_max("serve.queue_depth", self._depth)
        OBS.inc("serve.groups_submitted")
        self._queue.put(GroupWork(group, base, on_rows, on_start))

    @property
    def depth(self) -> int:
        """Groups submitted but not yet finished."""
        return self._depth

    # -- execution -----------------------------------------------------
    def _execute_once(self, work: GroupWork) -> List[Dict[str, object]]:
        args = (work.group, work.base)
        if self._pool is not None:
            future = self._pool.submit(self._runner, args)
            try:
                rows_walls, snapshot = future.result(
                    self.timeout_s or None)
            except FutureTimeout:
                future.cancel()
                OBS.inc("serve.groups_timeout")
                raise TimeoutError(
                    f"group exceeded timeout_s={self.timeout_s:g}")
            except BrokenProcessPool:
                # the whole executor dies with its worker; rebuild it so
                # the next attempt (and the next group) can run
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                raise
        else:
            rows_walls, snapshot = self._runner(args)
        if snapshot:
            OBS.merge(snapshot)
        return [row for row, _wall in rows_walls]

    def _run_with_retries(self, work: GroupWork) -> List[Dict[str, object]]:
        attempts = 0
        while True:
            attempts += 1
            try:
                with OBS.time("serve.group_exec"):
                    return self._execute_once(work)
            except Exception as exc:  # noqa: BLE001 — contained below
                if attempts > self.retries:
                    OBS.inc("serve.groups_gave_up")
                    return failed_rows_for_group(
                        work.group, work.base,
                        f"{type(exc).__name__}: {exc}", attempts)
                OBS.inc("serve.groups_retried")
                time.sleep(self.backoff_s * (2 ** (attempts - 1)))

    def _loop(self) -> None:
        while True:
            work = self._queue.get()
            if work is _STOP:
                break
            OBS.add_time("serve.queue_latency",
                         perf_counter() - work.enqueued_at)
            try:
                if work.on_start is not None:
                    work.on_start(work.group)
                rows = self._run_with_retries(work)
                work.on_rows(rows)
            finally:
                with self._lock:
                    self._depth -= 1

    # -- lifecycle -----------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop the consumers; optionally wait for queued work first."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for t in self._threads:
                t.join(timeout=60.0)
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)


__all__ = ["Group", "GroupWork", "Runner", "WorkerPool",
           "failed_rows_for_group", "inline_group_runner"]

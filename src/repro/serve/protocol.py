"""Wire protocol of the sweep service: endpoints, job states, schemas.

Everything operator-visible about the API is declared here as data —
the endpoint registry (:data:`ENDPOINTS`), the job lifecycle states
(:data:`JOB_STATES`) — so ``tools/check_docs.py`` can require each of
them to be documented in ``docs/SERVICE.md`` and the server/handler
dispatch can be driven by the same table the docs are checked against.

All request and response bodies are JSON. Errors are
``{"error": "<message>"}`` with a 4xx/5xx status. Success envelopes are
documented per endpoint in ``docs/SERVICE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: bump when a request/response schema changes incompatibly
API_VERSION = 1

#: job lifecycle, in order: a job is ``queued`` from submission until
#: its first dataset group starts executing, ``running`` while any of
#: its points are in flight, and ends ``done`` (every point has an
#: ``ok`` row) or ``failed`` (at least one point's row is ``failed``).
#: A job whose every point is already stored ``ok`` is born ``done``.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class Endpoint:
    """One operator-visible HTTP route."""

    method: str
    path: str
    summary: str


ENDPOINTS: Tuple[Endpoint, ...] = (
    Endpoint("GET", "/v1/healthz",
             "liveness probe: uptime, store row count, API version"),
    Endpoint("GET", "/v1/stats",
             "service counters: hit ratio, queue depth, queue latency, "
             "points/sec"),
    Endpoint("POST", "/v1/sweeps",
             "submit a sweep spec (shipped name or inline JSON spec); "
             "returns the job"),
    Endpoint("GET", "/v1/jobs",
             "list known jobs, newest last"),
    Endpoint("GET", "/v1/jobs/{id}",
             "one job's lifecycle state and point counts"),
    Endpoint("GET", "/v1/jobs/{id}/rows",
             "the result rows a job's points have produced so far"),
    Endpoint("POST", "/v1/query",
             "single-cell query: one sweep point; answers from the "
             "store when cached, else enqueues (optionally waits)"),
    Endpoint("GET", "/v1/results/{hash}",
             "indexed lookup of one stored row by content hash"),
    Endpoint("POST", "/v1/shutdown",
             "clean shutdown: stop accepting work, close the pool and "
             "store, exit"),
)


__all__ = ["API_VERSION", "ENDPOINTS", "Endpoint", "JOB_STATES"]

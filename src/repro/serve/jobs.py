"""Job lifecycle and point bookkeeping for the sweep service.

A *job* is one submitted request — a whole sweep spec or a single-cell
query — expanded to content-hashed sweep points. The manager resolves
every point one of three ways, counted per job:

* **cached** — the store already holds an ``ok`` row for the hash; the
  point contributes no work (``serve.cache_hits``);
* **deduplicated** — another job is already computing the identical
  hash; this job subscribes to the in-flight point instead of enqueueing
  a duplicate (``serve.dedup_inflight``);
* **scheduled** — genuinely new; grouped by functional trace key and
  submitted to the :class:`~repro.serve.workers.WorkerPool`
  (``serve.cache_misses`` counts both this and the dedup case — a miss
  is "the store did not answer").

Job states follow :data:`repro.serve.protocol.JOB_STATES`:
``queued`` -> ``running`` (first group dequeued) -> ``done`` /
``failed`` (any point row ``failed``). Completed rows are appended to
the store *before* subscribers are notified, so a job observed ``done``
always has every row durably stored. The service keeps metadata for the
last :data:`MAX_JOBS` finished jobs; rows live in the store, which is
the durable artifact.

Every row the service stores is produced by the same
``dse.scheduler._run_point`` code path a batch ``run_sweep`` uses, so
service rows are byte-identical to batch rows for the same spec (pinned
by ``tests/serve/test_server.py`` and the CI smoke).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigError
from ..obs import OBS
from ..dse.spec import SweepPoint, SweepSpec
from ..dse.store import AnyResultStore
from .workers import Group, WorkerPool

#: finished-job metadata kept before the oldest is dropped
MAX_JOBS = 1000


@dataclass
class Job:
    """Metadata for one submitted request (not the rows themselves)."""

    id: str
    #: "sweep" | "query"
    kind: str
    name: str
    state: str = "queued"
    #: every point hash the job covers, in expansion order
    hashes: List[str] = field(default_factory=list)
    #: hashes still without a row
    pending: Set[str] = field(default_factory=set)
    cached: int = 0
    deduped: int = 0
    failed_points: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.hashes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "state": self.state,
            "points": {
                "total": self.total,
                "cached": self.cached,
                "deduped": self.deduped,
                "pending": len(self.pending),
                "failed": len(self.failed_points),
            },
            "failed_hashes": list(self.failed_points),
        }


class JobManager:
    """Owns jobs, the in-flight point index, and the result store."""

    def __init__(self, store: AnyResultStore, pool: WorkerPool):
        self._store = store
        self._pool = pool
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: point hash -> job ids subscribed to its completion
        self._inflight: Dict[str, Set[str]] = {}
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._started_at = monotonic()

    # -- submission ----------------------------------------------------
    def submit_spec(self, spec: SweepSpec) -> Job:
        """Expand, dedup and enqueue a sweep; returns the new job."""
        base = spec.base_machine()
        points = spec.points()
        hashed = [(p.content_hash(base), p) for p in points]
        return self._admit("sweep", spec.name, hashed, base)

    def submit_point(self, point: SweepPoint, base_name: str) -> Tuple[
            Job, Optional[Dict[str, object]]]:
        """Single-cell query. Returns ``(job, row)``; ``row`` is the
        stored answer when it was a pure cache hit (job born done)."""
        from ..params import base_machine

        base = base_machine(base_name)
        hash_ = point.content_hash(base)
        job = self._admit("query", f"{point.workload}/{point.config}",
                          [(hash_, point)], base)
        row = self._store_get(hash_) if job.cached else None
        return job, row

    def _admit(self, kind: str, name: str,
               hashed: List[Tuple[str, SweepPoint]], base) -> Job:
        groups: Dict[Tuple[str, str], Group] = {}
        order: List[Tuple[str, str]] = []
        with self._lock:
            job = Job(id=f"job-{next(self._ids)}", kind=kind, name=name)
            for hash_, point in hashed:
                job.hashes.append(hash_)
                row = self._store_get(hash_)
                if row is not None and row.get("status") == "ok":
                    job.cached += 1
                    OBS.inc("serve.cache_hits")
                    continue
                OBS.inc("serve.cache_misses")
                job.pending.add(hash_)
                if hash_ in self._inflight:
                    self._inflight[hash_].add(job.id)
                    job.deduped += 1
                    OBS.inc("serve.dedup_inflight")
                    continue
                self._inflight[hash_] = {job.id}
                key = point.trace_key()
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append((hash_, point))
            if not job.pending:
                job.state = "done"
            self._jobs[job.id] = job
            self._trim_jobs_locked()
        # enqueue outside the lock: the pool's callbacks take it back
        for key in order:
            self._pool.submit(groups[key], base,
                              on_rows=self._on_rows,
                              on_start=self._on_start)
        return job

    # -- pool callbacks ------------------------------------------------
    def _on_start(self, group: Group) -> None:
        with self._lock:
            for hash_, _point in group:
                for job_id in self._inflight.get(hash_, ()):
                    job = self._jobs.get(job_id)
                    if job is not None and job.state == "queued":
                        job.state = "running"

    def _on_rows(self, rows: List[Dict[str, object]]) -> None:
        with self._cond:
            for row in rows:
                self._store.append(row)
                failed = row.get("status") == "failed"
                OBS.inc("serve.points_failed" if failed
                        else "serve.points_done")
                hash_ = row["hash"]
                for job_id in self._inflight.pop(hash_, ()):
                    job = self._jobs.get(job_id)
                    if job is None:
                        continue
                    job.pending.discard(hash_)
                    if failed:
                        job.failed_points.append(hash_)
                    if not job.pending:
                        job.state = ("failed" if job.failed_points
                                     else "done")
            self._cond.notify_all()

    # -- queries -------------------------------------------------------
    def _store_get(self, hash_: str):
        return self._store.get(hash_)

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def job_rows(self, job_id: str) -> List[Dict[str, object]]:
        """Rows the job's points have produced so far, expansion order."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ConfigError(f"unknown job {job_id!r}")
            hashes = list(job.hashes)
        rows = []
        for hash_ in hashes:
            row = self._store_get(hash_)
            if row is not None:
                rows.append(row)
        return rows

    def result(self, hash_: str) -> Optional[Dict[str, object]]:
        return self._store_get(hash_)

    def wait_for_hash(self, hash_: str,
                      timeout_s: float) -> Optional[Dict[str, object]]:
        """Block until ``hash_`` has a row and is no longer in flight
        (or the timeout passes); returns the freshest row, if any."""
        deadline = monotonic() + timeout_s
        with self._cond:
            while True:
                if hash_ not in self._inflight:
                    return self._store_get(hash_)
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return self._store_get(hash_)
                self._cond.wait(remaining)

    def wait_for_job(self, job_id: str, timeout_s: float) -> Optional[Job]:
        deadline = monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.state in ("done", "failed"):
                    return job
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return job
                self._cond.wait(remaining)

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            inflight = len(self._inflight)
        hits = OBS.counter("serve.cache_hits")
        misses = OBS.counter("serve.cache_misses")
        done = OBS.counter("serve.points_done")
        uptime = monotonic() - self._started_at
        latency = OBS.timers.get("serve.queue_latency", [0.0, 0])
        return {
            "uptime_s": uptime,
            "jobs": by_state,
            "inflight_points": inflight,
            "queue_depth": self._pool.depth,
            "queue_depth_max": int(
                OBS.maxima.get("serve.queue_depth", 0)),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "hit_ratio": (hits / (hits + misses)
                          if hits + misses else None),
            "dedup_inflight": int(OBS.counter("serve.dedup_inflight")),
            "points_done": int(done),
            "points_failed": int(OBS.counter("serve.points_failed")),
            "points_per_s": (done / uptime) if uptime > 0 else 0.0,
            "queue_latency_mean_ms": (
                1e3 * latency[0] / latency[1] if latency[1] else None),
            "store_rows": self._store.count(),
        }

    # -- internals -----------------------------------------------------
    def _trim_jobs_locked(self) -> None:
        if len(self._jobs) <= MAX_JOBS:
            return
        for job_id in list(self._jobs):
            job = self._jobs[job_id]
            if job.state in ("done", "failed"):
                del self._jobs[job_id]
            if len(self._jobs) <= MAX_JOBS:
                return


__all__ = ["Job", "JobManager", "MAX_JOBS"]

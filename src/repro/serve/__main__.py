"""Sweep-service CLI.

Usage::

    python -m repro.serve                          # env-default config
    python -m repro.serve --port 9000 --workers 4
    python -m repro.serve --socket /tmp/repro-serve.sock
    python -m repro.serve --store dse-wss.sqlite \\
        --migrate-from dse-wss.jsonl               # migrate, then serve
    python -m repro.serve --migrate-from dse-wss.jsonl --migrate-only

Flag defaults come from the ``REPRO_SERVE_*`` environment variables
(see the README table); every flag is documented in docs/SERVICE.md,
which ``tools/check_docs.py`` enforces. The process serves until
``POST /v1/shutdown`` or SIGINT, both of which close the pool and the
store cleanly. Exit status: 0 on clean shutdown, 2 on bad arguments or
a failed migration.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ConfigError
from ..dse.store import migrate_jsonl_to_sqlite
from .config import ServeConfig
from .server import SweepServer


def build_parser() -> argparse.ArgumentParser:
    env = ServeConfig.from_env()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent sweep server: submit sweep specs and "
                    "single-cell queries over HTTP, backed by an "
                    "indexed result store.",
    )
    parser.add_argument("--host", default=env.host,
                        help="TCP bind address (default: %(default)s; "
                             "the service has no auth — think before "
                             "leaving loopback)")
    parser.add_argument("--port", type=int, default=env.port,
                        help="TCP port; 0 picks a free one "
                             "(default: $REPRO_SERVE_PORT or 8177)")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="serve on a unix-domain socket at PATH "
                             "instead of TCP")
    parser.add_argument("--store", default=env.store_path,
                        help="result store path; .sqlite/.db selects "
                             "the indexed v2 store (default: "
                             "$REPRO_SERVE_STORE or serve-store.sqlite)")
    parser.add_argument("--workers", type=int, default=env.workers,
                        help="dataset-group worker processes "
                             "(default: $REPRO_SERVE_WORKERS or 2)")
    parser.add_argument("--timeout-s", type=float, default=env.timeout_s,
                        help="per-group execution timeout in seconds; "
                             "0 disables (default: $REPRO_SERVE_TIMEOUT_S "
                             "or 0)")
    parser.add_argument("--retries", type=int, default=env.retries,
                        help="pool-level retries per group after a "
                             "crash/timeout (default: %(default)s)")
    parser.add_argument("--backoff-ms", type=float, default=50.0,
                        help="base backoff between group retries, "
                             "doubling per attempt (default: "
                             "%(default)s)")
    parser.add_argument("--ttl-s", type=float, default=env.ttl_s,
                        help="age-based TTL for stored rows; 0 disables "
                             "(default: $REPRO_SERVE_TTL_S or 0)")
    parser.add_argument("--max-rows", type=int, default=env.max_rows,
                        help="store row cap, oldest evicted first; 0 "
                             "means unbounded (default: "
                             "$REPRO_SERVE_MAX_ROWS or 0)")
    parser.add_argument("--inline", action="store_true",
                        help="run dataset groups on the server's own "
                             "threads instead of a process pool "
                             "(single-machine debugging)")
    parser.add_argument("--migrate-from", default=None, metavar="JSONL",
                        help="before serving, migrate this v1 JSONL "
                             "store into --store (which must be a "
                             "sqlite path)")
    parser.add_argument("--migrate-only", action="store_true",
                        help="with --migrate-from: exit after the "
                             "migration instead of serving")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per HTTP request to stderr")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.migrate_only and not args.migrate_from:
        parser.error("--migrate-only requires --migrate-from")

    if args.migrate_from:
        try:
            report = migrate_jsonl_to_sqlite(args.migrate_from,
                                             args.store)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.line())
        if args.migrate_only:
            return 0

    config = ServeConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        store_path=args.store, workers=args.workers,
        timeout_s=args.timeout_s, retries=args.retries,
        backoff_s=args.backoff_ms / 1e3, ttl_s=args.ttl_s,
        max_rows=args.max_rows, inline=args.inline,
    )
    try:
        server = SweepServer(config, verbose=args.verbose)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if server.store.quarantined:  # type: ignore[union-attr]
        print(f"warning: corrupt store quarantined to "
              f"{server.store.quarantined}",  # type: ignore[union-attr]
              file=sys.stderr)
    print(f"serving on {server.endpoint} "
          f"(store {config.store_path}, {config.workers} workers)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Python client for the sweep service (stdlib ``http.client`` only).

One class, one method per endpoint, JSON in/out. Non-2xx responses
raise :class:`ServiceError` carrying the HTTP status and the server's
``error`` message. The client speaks both transports the server binds:

>>> client = ServeClient(port=8177)                   # TCP
>>> client = ServeClient(socket_path="/tmp/serve.sock")  # unix socket

``submit_sweep`` + ``wait_job`` is the batch pattern; ``query`` with
``wait=True`` is the interactive one (a cache hit answers in
milliseconds without touching the queue).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Tuple, Union


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class _UnixHTTPConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """Thin JSON-over-HTTP client; one connection per request."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8177,
                 socket_path: Optional[str] = None,
                 timeout_s: float = 120.0):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, self.timeout_s)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def request(self, method: str, path: str,
                body: Optional[Dict[str, object]] = None
                ) -> Tuple[int, Dict[str, object]]:
        """One round trip; returns ``(status, parsed_json)``."""
        conn = self._connection()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            parsed = json.loads(raw) if raw else {}
            return resp.status, parsed
        finally:
            conn.close()

    def _ok(self, method: str, path: str,
            body: Optional[Dict[str, object]] = None,
            accept: Tuple[int, ...] = (200, 202)) -> Dict[str, object]:
        status, parsed = self.request(method, path, body)
        if status not in accept:
            raise ServiceError(status,
                               str(parsed.get("error", parsed)))
        return parsed

    # -- endpoints -----------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._ok("GET", "/v1/healthz")

    def stats(self) -> Dict[str, object]:
        return self._ok("GET", "/v1/stats")

    def submit_sweep(self, spec: Union[str, Dict[str, object]]
                     ) -> Dict[str, object]:
        """Submit a shipped spec name or an inline spec; returns the job."""
        return self._ok("POST", "/v1/sweeps", {"spec": spec})["job"]

    def jobs(self) -> List[Dict[str, object]]:
        return self._ok("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._ok("GET", f"/v1/jobs/{job_id}")["job"]

    def job_rows(self, job_id: str) -> List[Dict[str, object]]:
        return self._ok("GET", f"/v1/jobs/{job_id}/rows")["rows"]

    def query(self, point: Dict[str, object], base: str = "experiment",
              wait: bool = False, timeout_s: Optional[float] = None
              ) -> Dict[str, object]:
        """Single-cell query; returns the response envelope
        (``cached``, ``row``, ``job``)."""
        body: Dict[str, object] = {"point": point, "base": base,
                                   "wait": wait}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._ok("POST", "/v1/query", body)

    def result(self, hash_: str) -> Dict[str, object]:
        return self._ok("GET", f"/v1/results/{hash_}")["row"]

    def shutdown(self) -> Dict[str, object]:
        return self._ok("POST", "/v1/shutdown")

    # -- conveniences --------------------------------------------------
    def wait_job(self, job_id: str, timeout_s: float = 600.0,
                 poll_s: float = 0.05) -> Dict[str, object]:
        """Poll a job to a terminal state (``done``/``failed``)."""
        deadline = time.monotonic() + timeout_s
        delay = poll_s
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout_s:g}s")
            time.sleep(delay)
            delay = min(delay * 1.5, 1.0)

    def wait_until_up(self, timeout_s: float = 30.0) -> Dict[str, object]:
        """Poll ``/v1/healthz`` until the service answers."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except (ConnectionError, OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)


__all__ = ["ServeClient", "ServiceError"]

"""The persistent sweep server: stdlib HTTP front end over the queue.

``SweepServer`` wires the pieces together: an indexed result store
(:func:`repro.dse.store.open_result_store`), the
:class:`~repro.serve.workers.WorkerPool`, the
:class:`~repro.serve.jobs.JobManager`, a housekeeping thread (TTL
eviction every ``housekeeping_s``), and a threaded stdlib HTTP server —
one handler thread per connection, so a ``wait=true`` query may block
its own thread without stalling the service. No third-party web
framework: the surface is nine JSON routes
(:data:`repro.serve.protocol.ENDPOINTS`), and the stdlib keeps the
simulator's no-new-dependencies rule intact.

Transport is TCP (loopback by default) or a unix-domain socket
(``socket_path``), the natural fit for a same-host sidecar service.
There is no authentication — binding beyond loopback is an explicit
operator decision (see docs/SERVICE.md, "Failure modes and limits").

Requests that name an unknown route get 404; malformed JSON or invalid
specs/points get 400 with ``{"error": ...}``; unexpected handler
exceptions get 500 and increment ``serve.http_errors`` — a request can
fail, the service must not.
"""

from __future__ import annotations

import json
import os
import re
import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from ..obs import OBS
from ..dse.spec import SweepPoint, SweepSpec, shipped_specs
from ..dse.store import open_result_store
from .config import ServeConfig
from .jobs import JobManager
from .protocol import API_VERSION
from .workers import WorkerPool

#: default wait bound for ``POST /v1/query`` with ``wait=true``
DEFAULT_QUERY_WAIT_S = 30.0


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "SweepServer"


class _UnixHTTPServer(_HTTPServer):
    address_family = socket.AF_UNIX

    def server_bind(self):
        path = self.server_address
        if isinstance(path, str) and os.path.exists(path):
            os.unlink(path)
        # skip HTTPServer.server_bind: it unpacks (host, port), which a
        # unix path does not have
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{API_VERSION}"

    # -- plumbing ------------------------------------------------------
    def address_string(self) -> str:  # unix sockets have no peer tuple
        if isinstance(self.client_address, (str, bytes)):
            return "local"
        try:
            return super().address_string()
        except (TypeError, IndexError):
            return "local"

    def log_message(self, format: str, *args) -> None:
        if self.app.verbose:
            super().log_message(format, *args)

    @property
    def app(self) -> "SweepServer":
        return self.server.app  # type: ignore[attr-defined]

    def _send(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"request body is not JSON: {exc}") from None
        if not isinstance(parsed, dict):
            raise ConfigError("request body must be a JSON object")
        return parsed

    def _dispatch(self, method: str) -> None:
        OBS.inc("serve.http_requests")
        try:
            handled = self.app.route(self, method, self.path)
        except ConfigError as exc:
            OBS.inc("serve.http_errors")
            self._send(400, {"error": str(exc)})
            return
        except BrokenPipeError:
            raise
        except Exception as exc:  # noqa: BLE001 — 500, never a crash
            OBS.inc("serve.http_errors")
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if not handled:
            OBS.inc("serve.http_errors")
            self._send(404, {"error": f"no route {method} {self.path}"})

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


_JOB_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_JOB_ROWS_RE = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/rows$")
_RESULT_RE = re.compile(r"^/v1/results/([0-9a-f]+)$")


class SweepServer:
    """One service instance: store + pool + jobs + HTTP front end."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 verbose: bool = False):
        self.config = config or ServeConfig.from_env()
        self.config.validate()
        self.verbose = verbose
        self.store = open_result_store(
            self.config.store_path, ttl_s=self.config.ttl_s,
            max_rows=self.config.max_rows)
        assert self.store is not None
        if getattr(self.store, "quarantined", None):
            OBS.inc("serve.store_quarantined")
        self.pool = WorkerPool(
            workers=self.config.workers,
            processes=not self.config.inline,
            timeout_s=self.config.timeout_s,
            retries=self.config.retries,
            backoff_s=self.config.backoff_s,
        )
        self.manager = JobManager(self.store, self.pool)
        self._stop_evt = threading.Event()
        self._housekeeper: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None
        if self.config.socket_path:
            self._httpd = _UnixHTTPServer(
                self.config.socket_path, _Handler)  # type: ignore[arg-type]
        else:
            self._httpd = _HTTPServer(
                (self.config.host, self.config.port), _Handler)
        self._httpd.app = self

    # -- addresses -----------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0``); 0 on unix sockets."""
        if self.config.socket_path:
            return 0
        return self._httpd.server_address[1]

    @property
    def endpoint(self) -> str:
        if self.config.socket_path:
            return f"unix:{self.config.socket_path}"
        return f"http://{self.config.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------
    def _housekeeping(self) -> None:
        while not self._stop_evt.wait(self.config.housekeeping_s):
            evicted = self.store.evict_expired() if hasattr(
                self.store, "evict_expired") else 0
            if evicted:
                OBS.inc("serve.store_evicted_ttl", evicted)

    def start(self) -> None:
        """Serve on a background thread (tests / the storm bench)."""
        self._start_housekeeper()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="serve-http")
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI)."""
        self._start_housekeeper()
        try:
            self._httpd.serve_forever()
        finally:
            self._teardown()

    def _start_housekeeper(self) -> None:
        if self._housekeeper is None:
            self._housekeeper = threading.Thread(
                target=self._housekeeping, daemon=True,
                name="serve-housekeeping")
            self._housekeeper.start()

    def stop(self) -> None:
        """Clean shutdown: stop the listener, pool and store."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=30.0)
            self._teardown()

    def _teardown(self) -> None:
        if self._stop_evt.is_set():
            return
        self._stop_evt.set()
        self.pool.close(wait=False)
        self.store.close()
        if self.config.socket_path and os.path.exists(
                self.config.socket_path):
            os.unlink(self.config.socket_path)

    # -- routing -------------------------------------------------------
    def route(self, h: _Handler, method: str, path: str) -> bool:
        """Dispatch one request; False means no such route."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/v1/healthz":
            h._send(200, {
                "ok": True,
                "api_version": API_VERSION,
                "store_rows": self.store.count(),
                "endpoint": self.endpoint,
            })
            return True
        if method == "GET" and path == "/v1/stats":
            h._send(200, {
                "stats": self.manager.stats(),
                "counters": {k: v for k, v in OBS.counters.items()
                             if k.startswith("serve.")},
            })
            return True
        if method == "POST" and path == "/v1/sweeps":
            return self._post_sweeps(h)
        if method == "GET" and path == "/v1/jobs":
            h._send(200, {
                "jobs": [j.as_dict() for j in self.manager.jobs()]})
            return True
        m = _JOB_RE.match(path)
        if method == "GET" and m:
            job = self.manager.job(m.group(1))
            if job is None:
                h._send(404, {"error": f"unknown job {m.group(1)!r}"})
            else:
                h._send(200, {"job": job.as_dict()})
            return True
        m = _JOB_ROWS_RE.match(path)
        if method == "GET" and m:
            try:
                rows = self.manager.job_rows(m.group(1))
            except ConfigError as exc:
                h._send(404, {"error": str(exc)})
                return True
            job = self.manager.job(m.group(1))
            assert job is not None
            h._send(200, {"job": job.as_dict(), "rows": rows})
            return True
        if method == "POST" and path == "/v1/query":
            return self._post_query(h)
        m = _RESULT_RE.match(path)
        if method == "GET" and m:
            row = self.manager.result(m.group(1))
            if row is None:
                h._send(404, {"error": f"no row for hash {m.group(1)}"})
            else:
                h._send(200, {"row": row})
            return True
        if method == "POST" and path == "/v1/shutdown":
            h._send(200, {"ok": True,
                          "pending_groups": self.pool.depth})
            # shut down from another thread: shutdown() deadlocks when
            # called from a handler running inside serve_forever
            threading.Thread(target=self.stop, daemon=True,
                             name="serve-shutdown").start()
            return True
        return False

    # -- handlers ------------------------------------------------------
    def _post_sweeps(self, h: _Handler) -> bool:
        body = h._body()
        if "spec" not in body:
            raise ConfigError('POST /v1/sweeps body needs a "spec" key '
                              "(shipped spec name or inline spec object)")
        raw = body["spec"]
        if isinstance(raw, str):
            shipped = shipped_specs()
            if raw not in shipped:
                raise ConfigError(
                    f"unknown shipped spec {raw!r} (shipped: "
                    f"{sorted(shipped)}); POST the spec object inline "
                    f"to run an ad-hoc sweep")
            spec = SweepSpec.from_file(shipped[raw])
        elif isinstance(raw, dict):
            spec = SweepSpec.from_dict(raw)
        else:
            raise ConfigError('"spec" must be a name or an object')
        job = self.manager.submit_spec(spec)
        h._send(202, {"job": job.as_dict()})
        return True

    def _post_query(self, h: _Handler) -> bool:
        body = h._body()
        if "point" not in body:
            raise ConfigError('POST /v1/query body needs a "point" key')
        if not isinstance(body["point"], dict):
            raise ConfigError('"point" must be an object')
        point = SweepPoint.from_dict(body["point"])
        base_name = str(body.get("base", "experiment"))
        wait = bool(body.get("wait", False))
        timeout_s = float(body.get("timeout_s", DEFAULT_QUERY_WAIT_S))
        job, row = self.manager.submit_point(point, base_name)
        if row is not None:
            h._send(200, {"cached": True, "row": row,
                          "job": job.as_dict()})
            return True
        if wait:
            done = self.manager.wait_for_job(job.id, timeout_s)
            row = self.manager.result(job.hashes[0])
            status = 200 if (done is not None and row is not None) else 202
            job = done or job
            h._send(status, {"cached": False, "row": row,
                             "job": job.as_dict()})
            return True
        h._send(202, {"cached": False, "row": None,
                      "job": job.as_dict()})
        return True


__all__ = ["DEFAULT_QUERY_WAIT_S", "SweepServer"]

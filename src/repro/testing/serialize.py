"""JSON wire format for kernels and generated conformance cases.

The shrinker minimizes failing cases by mutating this representation and
the regression corpus under ``tests/corpus/`` stores it, so the format
must round-trip *exactly*: a deserialized case rebuilds the same kernel
structure (equal :meth:`~repro.ir.program.Kernel.fingerprint`) and
bit-identical initial arrays. Array payloads are stored as explicit
element lists — corpus entries are tiny by construction (the shrinker
has already minimized them) and a human diffing a corpus file should be
able to read the data that triggered the bug.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..errors import ConfigError
from ..ir.expr import (
    BinOp,
    Const,
    Expr,
    Load,
    LoopVar,
    Scalar,
    Select,
    Temp,
    UnaryOp,
)
from ..ir.program import Kernel, MemObject
from ..ir.stmt import Assign, Loop, Stmt, Store, When
from ..ir.types import DType

#: bump when the wire format changes incompatibly
FORMAT_VERSION = 1

_DTYPES: Dict[str, DType] = {d.short: d for d in DType}


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
def expr_to_json(expr: Expr) -> Dict[str, Any]:
    kind = expr.__class__
    if kind is Const:
        return {"k": "const", "v": expr.value}
    if kind is LoopVar:
        return {"k": "var", "name": expr.name}
    if kind is Scalar:
        return {"k": "scalar", "name": expr.name}
    if kind is Temp:
        return {"k": "temp", "name": expr.name}
    if kind is Load:
        return {"k": "load", "obj": expr.obj,
                "index": expr_to_json(expr.index)}
    if kind is BinOp:
        return {"k": "bin", "op": expr.op,
                "lhs": expr_to_json(expr.lhs), "rhs": expr_to_json(expr.rhs)}
    if kind is UnaryOp:
        return {"k": "un", "op": expr.op,
                "operand": expr_to_json(expr.operand)}
    if kind is Select:
        return {"k": "select", "cond": expr_to_json(expr.cond),
                "t": expr_to_json(expr.if_true),
                "f": expr_to_json(expr.if_false)}
    raise ConfigError(f"unserializable expression {expr!r}")


def expr_from_json(data: Dict[str, Any]) -> Expr:
    k = data["k"]
    if k == "const":
        return Const(data["v"])
    if k == "var":
        return LoopVar(data["name"])
    if k == "scalar":
        return Scalar(data["name"])
    if k == "temp":
        return Temp(data["name"])
    if k == "load":
        return Load(data["obj"], expr_from_json(data["index"]))
    if k == "bin":
        return BinOp(data["op"], expr_from_json(data["lhs"]),
                     expr_from_json(data["rhs"]))
    if k == "un":
        return UnaryOp(data["op"], expr_from_json(data["operand"]))
    if k == "select":
        return Select(expr_from_json(data["cond"]),
                      expr_from_json(data["t"]), expr_from_json(data["f"]))
    raise ConfigError(f"unknown expression kind {k!r}")


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
def stmt_to_json(stmt: Stmt) -> Dict[str, Any]:
    if isinstance(stmt, Assign):
        return {"k": "assign", "name": stmt.name,
                "value": expr_to_json(stmt.value)}
    if isinstance(stmt, Store):
        return {"k": "store", "obj": stmt.obj,
                "index": expr_to_json(stmt.index),
                "value": expr_to_json(stmt.value)}
    if isinstance(stmt, When):
        return {"k": "when", "cond": expr_to_json(stmt.cond),
                "body": [stmt_to_json(s) for s in stmt.body]}
    if isinstance(stmt, Loop):
        return {"k": "loop", "var": stmt.var,
                "lower": expr_to_json(stmt.lower),
                "upper": expr_to_json(stmt.upper),
                "step": stmt.step, "parallel": stmt.parallel,
                "body": [stmt_to_json(s) for s in stmt.body]}
    raise ConfigError(f"unserializable statement {stmt!r}")


def stmt_from_json(data: Dict[str, Any]) -> Stmt:
    k = data["k"]
    if k == "assign":
        return Assign(data["name"], expr_from_json(data["value"]))
    if k == "store":
        return Store(data["obj"], expr_from_json(data["index"]),
                     expr_from_json(data["value"]))
    if k == "when":
        return When(expr_from_json(data["cond"]),
                    [stmt_from_json(s) for s in data["body"]])
    if k == "loop":
        return Loop(data["var"], expr_from_json(data["lower"]),
                    expr_from_json(data["upper"]),
                    [stmt_from_json(s) for s in data["body"]],
                    step=data.get("step", 1),
                    parallel=data.get("parallel", False))
    raise ConfigError(f"unknown statement kind {k!r}")


# ---------------------------------------------------------------------------
# kernels and cases
# ---------------------------------------------------------------------------
def kernel_to_json(kernel: Kernel) -> Dict[str, Any]:
    return {
        "name": kernel.name,
        "objects": {
            name: {"shape": list(obj.shape), "dtype": obj.dtype.short}
            for name, obj in sorted(kernel.objects.items())
        },
        "scalars": dict(sorted(kernel.scalars.items())),
        "outputs": list(kernel.outputs),
        "loops": [stmt_to_json(loop) for loop in kernel.loops],
    }


def kernel_from_json(data: Dict[str, Any]) -> Kernel:
    objects = {
        name: MemObject(name, tuple(spec["shape"]), _DTYPES[spec["dtype"]])
        for name, spec in data["objects"].items()
    }
    loops = [stmt_from_json(l) for l in data["loops"]]
    for loop in loops:
        if not isinstance(loop, Loop):
            raise ConfigError("top-level kernel statements must be loops")
    return Kernel(
        data["name"], objects, loops,
        scalars=dict(data.get("scalars", {})),
        outputs=list(data.get("outputs", [])),
    )


def array_to_json(arr: np.ndarray) -> Dict[str, Any]:
    return {"dtype": arr.dtype.name, "data": arr.tolist()}


def array_from_json(data: Dict[str, Any]) -> np.ndarray:
    return np.asarray(data["data"], dtype=np.dtype(data["dtype"]))


def case_to_json(case) -> Dict[str, Any]:
    """Serialize a :class:`~repro.testing.genkernel.GeneratedCase`."""
    data = {
        "version": FORMAT_VERSION,
        "name": case.name,
        "shape": case.shape,
        "seed": case.seed,
        "kernels": [kernel_to_json(k) for k in case.kernels],
        "calls": [
            {"kernel": name, "scalars": dict(scalars)}
            for name, scalars in case.calls
        ],
        "arrays": {
            name: array_to_json(arr)
            for name, arr in sorted(case.arrays.items())
        },
        "outputs": list(case.outputs),
    }
    # only machine-bearing cases carry the key, so pre-existing corpus
    # entries keep their exact bytes under re-serialization
    if case.machine_doc is not None:
        data["machine"] = case.machine_doc
    return data


def case_from_json(data: Dict[str, Any]):
    from .genkernel import GeneratedCase

    version = data.get("version", 0)
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"corpus entry has format version {version}, "
            f"this tree reads {FORMAT_VERSION}"
        )
    kernels = [kernel_from_json(k) for k in data["kernels"]]
    return GeneratedCase(
        name=data["name"],
        shape=data["shape"],
        seed=data.get("seed", 0),
        kernels=kernels,
        calls=[
            (c["kernel"], dict(c.get("scalars", {})))
            for c in data["calls"]
        ],
        arrays={
            name: array_from_json(spec)
            for name, spec in data["arrays"].items()
        },
        outputs=list(data["outputs"]),
        machine_doc=data.get("machine"),
    )


def dumps_case(case) -> str:
    """Canonical (deterministic, diff-friendly) corpus text for a case."""
    return json.dumps(case_to_json(case), indent=1, sort_keys=True) + "\n"


def loads_case(text: str):
    return case_from_json(json.loads(text))


def save_case(case, path: str) -> None:
    with open(path, "w") as f:
        f.write(dumps_case(case))


def load_case(path: str):
    with open(path) as f:
        return loads_case(f.read())

"""Differential conformance fuzzing CLI.

Usage::

    python -m repro.testing.fuzz --seed 0 --cases 200
                                 [--machines]
                                 [--time-budget SECONDS]
                                 [--paths ooo,dist_da_f,...]
                                 [--shapes elementwise,guarded,...]
                                 [--json report.json]
                                 [--corpus-dir DIR]
                                 [--no-shrink]

Generates structured kernels/workloads (:mod:`repro.testing.genkernel`),
runs each through every requested execution path under both
``REPRO_FAST`` pipelines, and checks the differential oracles
(:mod:`repro.testing.oracle`). With ``--machines``, every case also
draws a seeded random machine document
(:mod:`repro.testing.genmachine`) and the whole oracle battery —
including the ``sched-vs-reference`` engine identity and the AN-C
``static-cost-bounds`` interval checks — runs on that machine instead
of the default, so random machines x random kernels are crossed in one
sweep. Failing cases are greedily minimized
(:mod:`repro.testing.shrink`) and written to ``--corpus-dir`` as JSON
for deterministic replay; the exit status is nonzero whenever any
oracle failed. A shape histogram is always reported so a run can prove
it exercised nested-loop / ``When`` / indirect / reduction kernels and
not just the easy elementwise ones, alongside the AN-C static-bound
tally (cases checked / violations) for the interval-soundness oracle.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import List, Optional, Sequence

from ..params import experiment_machine
from .genkernel import SHAPES, case_stream, shape_histogram
from .genmachine import generate_machine_doc, machine_histogram
from .oracle import DEFAULT_PATHS, DifferentialOracle, OracleReport
from .shrink import save_corpus_entry, shrink


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential conformance fuzzing over generated "
                    "kernels (interpreter vs. engine vs. batched replay).",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master RNG seed (default 0)")
    parser.add_argument("--cases", type=int, default=100,
                        help="number of generated cases (default 100)")
    parser.add_argument("--machines", action="store_true",
                        help="random-machine axis: attach a seeded random "
                             "machine document to every case so the "
                             "oracles run on that machine instead of the "
                             "default")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop generating after this many seconds")
    parser.add_argument("--paths", default=",".join(DEFAULT_PATHS),
                        help="comma-separated simulator configurations "
                             f"(default: {','.join(DEFAULT_PATHS)})")
    parser.add_argument("--shapes", default=",".join(SHAPES),
                        help="comma-separated kernel shapes to emit "
                             f"(default: {','.join(SHAPES)})")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write a machine-readable report to FILE")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write shrunk failing cases to DIR "
                             "(default: no corpus output)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimization of failing cases")
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    paths = tuple(p for p in args.paths.split(",") if p)
    shapes = tuple(s for s in args.shapes.split(",") if s)
    machine = experiment_machine()
    oracle = DifferentialOracle(paths, machine)

    start = time.monotonic()
    reports: List[OracleReport] = []
    cases = []
    corpus_paths: List[str] = []
    stopped_early = False
    # independent sub-stream so --machines never perturbs which kernels
    # a given --seed generates
    machine_rng = random.Random(args.seed ^ 0x6D61_6368)
    for case in case_stream(args.seed, args.cases, shapes=shapes):
        if (args.time_budget is not None
                and time.monotonic() - start > args.time_budget):
            stopped_early = True
            break
        if args.machines:
            case.machine_doc = generate_machine_doc(
                machine_rng.getrandbits(32))
        cases.append(case)
        report = oracle.check_case(case)
        reports.append(report)
        if report.ok:
            continue
        for failure in report.failures:
            print(f"FAIL {failure.format()}", file=sys.stderr, flush=True)
        if args.no_shrink:
            continue
        minimal = shrink(
            case, lambda c: not oracle.check_case(c).ok,
        )
        print(
            f"shrunk {case.name}: size {case.size()} -> {minimal.size()}",
            file=sys.stderr, flush=True,
        )
        if args.corpus_dir:
            path = save_corpus_entry(minimal, args.corpus_dir)
            corpus_paths.append(path)
            print(f"corpus entry written: {path}", file=sys.stderr,
                  flush=True)

    failures = [f for r in reports for f in r.failures]
    hist = shape_histogram(cases)
    elapsed = time.monotonic() - start
    by_check: dict = {}
    for f in failures:
        by_check[f.check] = by_check.get(f.check, 0) + 1
    static_bound_fails = by_check.get("static-cost-bounds", 0)
    summary = {
        "seed": args.seed,
        "cases_requested": args.cases,
        "cases_run": len(reports),
        "stopped_early": stopped_early,
        "paths": list(paths),
        "elapsed_s": round(elapsed, 2),
        "shape_histogram": hist,
        "failures_by_check": dict(sorted(by_check.items())),
        "machines": {
            "enabled": bool(args.machines),
            "cluster_histogram": machine_histogram(
                [c.machine_doc for c in cases]),
        },
        "static_bounds": {
            "cases_checked": len(reports),
            "violations": static_bound_fails,
        },
        "failures": [
            {"case": f.case, "check": f.check, "config": f.config,
             "message": f.message}
            for f in failures
        ],
        "corpus_entries": corpus_paths,
        "ok": not failures,
    }
    if args.json:
        with open(args.json, "w") as f:
            json.dump(summary, f, indent=1, sort_keys=True)
            f.write("\n")
    hist_line = "  ".join(f"{k}={v}" for k, v in hist.items())
    print(f"[fuzz] {len(reports)} cases in {elapsed:.1f}s "
          f"across {len(paths)} paths x {len(oracle.modes)} replay x "
          f"{len(oracle.vec_modes)} interpreter modes x "
          f"{len(set(oracle.sched_modes))} scheduler engines")
    print(f"[fuzz] shapes: {hist_line}")
    if args.machines:
        mach_line = "  ".join(
            f"clusters={k}:{v}" for k, v in
            machine_histogram([c.machine_doc for c in cases]).items()
        )
        print(f"[fuzz] machines: {mach_line}")
    print(f"[fuzz] static cost bounds (AN-C): {len(reports)} cases "
          f"checked, {static_bound_fails} violation(s)")
    if failures:
        print(f"[fuzz] {len(failures)} oracle failure(s) in "
              f"{len({f.case for f in failures})} case(s)")
        return 1
    print("[fuzz] all oracles passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

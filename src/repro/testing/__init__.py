"""Differential conformance subsystem.

Structured kernel/workload generation (:mod:`repro.testing.genkernel`),
random machine-description generation (:mod:`repro.testing.genmachine`),
cross-path differential oracles (:mod:`repro.testing.oracle`), greedy
failure minimization (:mod:`repro.testing.shrink`), a JSON corpus wire
format (:mod:`repro.testing.serialize`), and the ``python -m
repro.testing.fuzz`` entry point that ties them together.
"""

from .genkernel import (
    SHAPES,
    GeneratedCase,
    case_stream,
    generate_case,
    shape_histogram,
)
from .genmachine import (
    generate_machine_doc,
    machine_doc_stream,
    machine_histogram,
)
from .oracle import (
    DEFAULT_PATHS,
    DifferentialOracle,
    OracleFailure,
    OracleReport,
    check_case,
)
from .serialize import (
    FORMAT_VERSION,
    case_from_json,
    case_to_json,
    dumps_case,
    load_case,
    loads_case,
    save_case,
)
from .shrink import save_corpus_entry, shrink

__all__ = [
    "SHAPES",
    "GeneratedCase",
    "case_stream",
    "generate_case",
    "shape_histogram",
    "generate_machine_doc",
    "machine_doc_stream",
    "machine_histogram",
    "DEFAULT_PATHS",
    "DifferentialOracle",
    "OracleFailure",
    "OracleReport",
    "check_case",
    "FORMAT_VERSION",
    "case_from_json",
    "case_to_json",
    "dumps_case",
    "load_case",
    "loads_case",
    "save_case",
    "save_corpus_entry",
    "shrink",
]

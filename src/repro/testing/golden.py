"""Golden snapshot of the experiment matrix's headline numbers.

Serializes every (workload, configuration) cell of a matrix run to a
deterministic JSON document — cycles, instructions, memory operations,
data movement, NoC flits, energy — and compares it against a snapshot
committed under ``tests/golden/``. Any change to the modeled numbers
shows up as a reviewable JSON diff instead of silently shifting the
paper's figures.

The same module pins the *machine* snapshot: every builtin machine
document under ``repro/machine/builtin/`` is constructed into its
derived :class:`~repro.params.MachineParams` and compared field for
field (plus digest) against ``tests/golden/machines.json`` — a change
to a shipped document, a schema default, or the construction path shows
up as a reviewable diff.

Usage::

    python -m repro.testing.golden                  # verify both snapshots
    python -m repro.testing.golden --update           # refresh the matrix
    python -m repro.testing.golden --update-machines  # refresh machines
    python -m repro.testing.golden --jobs 4      # verify a parallel run too

The document is byte-deterministic: no wall-clock fields, sorted keys,
and exact counter values (floats serialize through ``repr`` via the
``json`` module, which round-trips bit-exactly). That also makes it the
comparison format for the cross-process determinism test — a serial and
a ``jobs=N`` matrix must dump byte-identical snapshots.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from ..params import MachineParams
from ..sim.results import RunResult

#: ledger counter key for router flit traversals (the NoC headline)
_FLIT_KEY = ("noc", "noc_router_flit")

#: default committed snapshot location, resolved relative to this tree
GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "tests", "golden", "matrix_tiny.json",
)

#: committed machine snapshot: derived MachineParams of every builtin
MACHINES_GOLDEN_PATH = os.path.join(
    os.path.dirname(GOLDEN_PATH), "machines.json",
)


def cell_record(run: RunResult) -> Dict[str, object]:
    """The headline numbers of one matrix cell, all exact values."""
    return {
        "time_ps": run.time_ps,
        "insts": run.insts,
        "mem_ops": run.mem_ops,
        "movement_bytes": run.movement_bytes,
        "mmio_bytes": run.mmio_bytes,
        "accel_iterations": run.accel_iterations,
        "noc_flits": run.energy.count(*_FLIT_KEY),
        "energy_pj": run.energy.total_pj(),
        "l1": run.cache_stats.l1,
        "l2": run.cache_stats.l2,
        "l3": run.cache_stats.l3,
        "dram": run.cache_stats.dram,
        "validated": run.validated,
    }


def matrix_snapshot(scale: str = "tiny",
                    machine: Optional[MachineParams] = None,
                    workloads: Optional[Sequence[str]] = None,
                    configs: Optional[Sequence[str]] = None,
                    jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the matrix and collect every cell's headline record."""
    from ..experiments.runner import BASELINE, PAPER_CONFIGS, run_matrix
    from ..workloads import PAPER_ORDER

    workloads = tuple(workloads or PAPER_ORDER)
    configs = tuple(configs or (BASELINE,) + PAPER_CONFIGS)
    matrix = run_matrix(scale=scale, machine=machine,
                        workloads=workloads, configs=configs, jobs=jobs)
    return {
        "scale": scale,
        "workloads": list(workloads),
        "configs": list(configs),
        "cells": {
            w: {c: cell_record(matrix.results[(w, c)]) for c in configs}
            for w in workloads
        },
    }


def machines_snapshot() -> Dict[str, object]:
    """Digest + fully-derived parameters of every builtin machine."""
    from dataclasses import asdict

    from ..machine import builtin_documents, builtin_machine
    from ..params import machine_digest

    machines = {}
    for name in sorted(builtin_documents()):
        machine = builtin_machine(name)
        machines[name] = {
            "digest": machine_digest(machine),
            "params": asdict(machine),
        }
    return {"machines": machines}


def diff_machines(expected: Dict[str, object],
                  actual: Dict[str, object]) -> list:
    """Human-readable divergences between two machine snapshots."""
    lines = []
    exp = expected.get("machines", {})
    act = actual.get("machines", {})
    for name in sorted(set(exp) | set(act)):
        if name not in exp or name not in act:
            lines.append(f"{name}: present in only one snapshot")
            continue
        if exp[name].get("digest") != act[name].get("digest"):
            lines.append(
                f"{name}.digest: golden={exp[name].get('digest')!r} "
                f"actual={act[name].get('digest')!r}"
            )

        def walk(path, e, a):
            if isinstance(e, dict) and isinstance(a, dict):
                for key in sorted(set(e) | set(a)):
                    walk(f"{path}.{key}", e.get(key), a.get(key))
            elif e != a:
                lines.append(f"{path}: golden={e!r} actual={a!r}")

        walk(f"{name}.params", exp[name].get("params"),
             act[name].get("params"))
    return lines


def snapshot_text(snapshot: Dict[str, object]) -> str:
    """Canonical byte-deterministic serialization of a snapshot."""
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


def write_snapshot(snapshot: Dict[str, object], path: str) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        f.write(snapshot_text(snapshot))


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path) as f:
        return json.load(f)


def diff_snapshots(expected: Dict[str, object],
                   actual: Dict[str, object]) -> list:
    """Human-readable list of per-cell field divergences."""
    lines = []
    exp_cells = expected.get("cells", {})
    act_cells = actual.get("cells", {})
    for w in sorted(set(exp_cells) | set(act_cells)):
        if w not in exp_cells or w not in act_cells:
            lines.append(f"{w}: present in only one snapshot")
            continue
        for c in sorted(set(exp_cells[w]) | set(act_cells[w])):
            if c not in exp_cells[w] or c not in act_cells[w]:
                lines.append(f"{w}/{c}: present in only one snapshot")
                continue
            exp, act = exp_cells[w][c], act_cells[w][c]
            for field in sorted(set(exp) | set(act)):
                if exp.get(field) != act.get(field):
                    lines.append(
                        f"{w}/{c}.{field}: golden={exp.get(field)!r} "
                        f"actual={act.get(field)!r}"
                    )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.golden",
        description="Verify (or refresh) the committed golden snapshot "
                    "of the experiment matrix's headline numbers.",
    )
    parser.add_argument("--update", action="store_true",
                        help="rewrite the matrix snapshot instead of "
                             "verifying")
    parser.add_argument("--update-machines", action="store_true",
                        help="rewrite the builtin-machine snapshot "
                             "instead of verifying")
    parser.add_argument("--path", default=GOLDEN_PATH,
                        help=f"matrix snapshot file (default: "
                             f"{GOLDEN_PATH})")
    parser.add_argument("--machines-path", default=MACHINES_GOLDEN_PATH,
                        help=f"machine snapshot file (default: "
                             f"{MACHINES_GOLDEN_PATH})")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel matrix workers")
    args = parser.parse_args(argv)

    machines = machines_snapshot()
    if args.update_machines:
        write_snapshot(machines, args.machines_path)
        print(f"machine snapshot written to {args.machines_path} "
              f"({len(machines['machines'])} machines)")
        if not args.update:
            return 0

    snapshot = matrix_snapshot(scale=args.scale, jobs=args.jobs)
    if args.update:
        write_snapshot(snapshot, args.path)
        ncells = sum(len(v) for v in snapshot["cells"].values())
        print(f"golden snapshot written to {args.path} ({ncells} cells)")
        return 0
    if not os.path.exists(args.path):
        print(f"no golden snapshot at {args.path}; run with --update",
              file=sys.stderr)
        return 2
    lines = diff_snapshots(load_snapshot(args.path), snapshot)
    if not args.update_machines:
        if not os.path.exists(args.machines_path):
            print(f"no machine snapshot at {args.machines_path}; run "
                  f"with --update-machines", file=sys.stderr)
            return 2
        lines += diff_machines(load_snapshot(args.machines_path), machines)
    if lines:
        for line in lines:
            print(f"GOLDEN DIFF {line}", file=sys.stderr)
        print(f"{len(lines)} divergence(s); rerun with --update / "
              f"--update-machines if the change is intended",
              file=sys.stderr)
        return 1
    print(f"matrix matches golden snapshot {args.path}; "
          f"{len(machines['machines'])} builtin machines match "
          f"{args.machines_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Golden snapshot of the experiment matrix's headline numbers.

Serializes every (workload, configuration) cell of a matrix run to a
deterministic JSON document — cycles, instructions, memory operations,
data movement, NoC flits, energy — and compares it against a snapshot
committed under ``tests/golden/``. Any change to the modeled numbers
shows up as a reviewable JSON diff instead of silently shifting the
paper's figures.

Usage::

    python -m repro.testing.golden             # verify against the snapshot
    python -m repro.testing.golden --update    # refresh the snapshot
    python -m repro.testing.golden --jobs 4    # verify a parallel run too

The document is byte-deterministic: no wall-clock fields, sorted keys,
and exact counter values (floats serialize through ``repr`` via the
``json`` module, which round-trips bit-exactly). That also makes it the
comparison format for the cross-process determinism test — a serial and
a ``jobs=N`` matrix must dump byte-identical snapshots.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from ..params import MachineParams
from ..sim.results import RunResult

#: ledger counter key for router flit traversals (the NoC headline)
_FLIT_KEY = ("noc", "noc_router_flit")

#: default committed snapshot location, resolved relative to this tree
GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "tests", "golden", "matrix_tiny.json",
)


def cell_record(run: RunResult) -> Dict[str, object]:
    """The headline numbers of one matrix cell, all exact values."""
    return {
        "time_ps": run.time_ps,
        "insts": run.insts,
        "mem_ops": run.mem_ops,
        "movement_bytes": run.movement_bytes,
        "mmio_bytes": run.mmio_bytes,
        "accel_iterations": run.accel_iterations,
        "noc_flits": run.energy.count(*_FLIT_KEY),
        "energy_pj": run.energy.total_pj(),
        "l1": run.cache_stats.l1,
        "l2": run.cache_stats.l2,
        "l3": run.cache_stats.l3,
        "dram": run.cache_stats.dram,
        "validated": run.validated,
    }


def matrix_snapshot(scale: str = "tiny",
                    machine: Optional[MachineParams] = None,
                    workloads: Optional[Sequence[str]] = None,
                    configs: Optional[Sequence[str]] = None,
                    jobs: Optional[int] = None) -> Dict[str, object]:
    """Run the matrix and collect every cell's headline record."""
    from ..experiments.runner import BASELINE, PAPER_CONFIGS, run_matrix
    from ..workloads import PAPER_ORDER

    workloads = tuple(workloads or PAPER_ORDER)
    configs = tuple(configs or (BASELINE,) + PAPER_CONFIGS)
    matrix = run_matrix(scale=scale, machine=machine,
                        workloads=workloads, configs=configs, jobs=jobs)
    return {
        "scale": scale,
        "workloads": list(workloads),
        "configs": list(configs),
        "cells": {
            w: {c: cell_record(matrix.results[(w, c)]) for c in configs}
            for w in workloads
        },
    }


def snapshot_text(snapshot: Dict[str, object]) -> str:
    """Canonical byte-deterministic serialization of a snapshot."""
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


def write_snapshot(snapshot: Dict[str, object], path: str) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        f.write(snapshot_text(snapshot))


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path) as f:
        return json.load(f)


def diff_snapshots(expected: Dict[str, object],
                   actual: Dict[str, object]) -> list:
    """Human-readable list of per-cell field divergences."""
    lines = []
    exp_cells = expected.get("cells", {})
    act_cells = actual.get("cells", {})
    for w in sorted(set(exp_cells) | set(act_cells)):
        if w not in exp_cells or w not in act_cells:
            lines.append(f"{w}: present in only one snapshot")
            continue
        for c in sorted(set(exp_cells[w]) | set(act_cells[w])):
            if c not in exp_cells[w] or c not in act_cells[w]:
                lines.append(f"{w}/{c}: present in only one snapshot")
                continue
            exp, act = exp_cells[w][c], act_cells[w][c]
            for field in sorted(set(exp) | set(act)):
                if exp.get(field) != act.get(field):
                    lines.append(
                        f"{w}/{c}.{field}: golden={exp.get(field)!r} "
                        f"actual={act.get(field)!r}"
                    )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.golden",
        description="Verify (or refresh) the committed golden snapshot "
                    "of the experiment matrix's headline numbers.",
    )
    parser.add_argument("--update", action="store_true",
                        help="rewrite the snapshot instead of verifying")
    parser.add_argument("--path", default=GOLDEN_PATH,
                        help=f"snapshot file (default: {GOLDEN_PATH})")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel matrix workers")
    args = parser.parse_args(argv)

    snapshot = matrix_snapshot(scale=args.scale, jobs=args.jobs)
    if args.update:
        write_snapshot(snapshot, args.path)
        ncells = sum(len(v) for v in snapshot["cells"].values())
        print(f"golden snapshot written to {args.path} ({ncells} cells)")
        return 0
    if not os.path.exists(args.path):
        print(f"no golden snapshot at {args.path}; run with --update",
              file=sys.stderr)
        return 2
    expected = load_snapshot(args.path)
    lines = diff_snapshots(expected, snapshot)
    if lines:
        for line in lines:
            print(f"GOLDEN DIFF {line}", file=sys.stderr)
        print(f"{len(lines)} divergence(s) from {args.path}; "
              f"rerun with --update if the change is intended",
              file=sys.stderr)
        return 1
    print(f"matrix matches golden snapshot {args.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

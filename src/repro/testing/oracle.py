"""Differential oracles over every execution path of a generated case.

One :class:`GeneratedCase` is pushed through the golden interpreter and
through :func:`~repro.sim.system.simulate_workload` for each requested
configuration under both replay pipelines (``REPRO_FAST=1`` batched and
``REPRO_FAST=0`` scalar reference) and both interpreter modes
(``REPRO_VEC=1`` vectorized whole-loop evaluation and ``REPRO_VEC=0``
tree-walking), and the paths must agree on

* **analysis consistency** — the static verifier accepts exactly the
  kernels the interpreter executes without a fault, and the affine
  dependence analysis (:mod:`repro.analysis.deps`) never contradicts
  the DFG offload classifier (rule AN-D03);
* **numerical outputs** — every path's final output arrays equal the
  golden interpreter's bit for bit (all paths execute the functional
  program through the same interpreter semantics, so exact equality is
  the contract, not an allclose);
* **cross-path accounting** — for each configuration, the batched and
  scalar pipelines produce the same time, instruction, memory-op,
  cache-access, NoC and energy-ledger numbers, counter for counter;
* **engine identity** — the two-level replay scheduler with macro-chunk
  coalescing (``REPRO_SCHED=1``) reproduces the tuple-heap reference
  engine's every counter exactly (the scheduler changes how events are
  dispatched, never the timed behavior);
* **conservation** — functional quantities that are configuration-
  independent stay put: ``mem_ops`` equals the golden dynamic
  load+store count in every cell, the OoO baseline's instruction count
  equals the golden dynamic instruction count plus the per-call host
  work, the OoO L1 access count equals the access-trace length, and
  every ledger's float totals agree with their per-component and
  per-event breakdowns;
* **static cost bounds** — every measured traffic/time/energy metric
  of every cell falls inside the closed-form interval the AN-C cost
  model (:mod:`repro.analysis.cost`) derives for that configuration;
  an escape means the model's soundness claim is false for a kernel
  shape the generator found.

Any disagreement is reported as an :class:`OracleFailure`; the fuzz CLI
hands failing cases to the shrinker.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.deps import dependence_findings
from ..analysis.verifier import verify_kernel
from ..analysis.findings import errors_of
from ..errors import ReproError
from ..fastpath import ENV_VAR as FAST_ENV
from ..params import MachineParams, experiment_machine
from ..schedpath import ENV_VAR as SCHED_ENV
from ..vecpath import ENV_VAR as VEC_ENV
from ..sim.results import RunResult
from ..sim.system import simulate_workload
from ..sim.tracecache import TraceCache
from .genkernel import HOST_INSTS_PER_CALL, GeneratedCase

#: the experiment configurations a case is checked across (§VI-A six)
DEFAULT_PATHS = (
    "ooo", "mono_ca", "mono_da_io", "mono_da_f", "dist_da_io", "dist_da_f",
)


@dataclass(frozen=True)
class OracleFailure:
    """One disagreement between execution paths of one case."""

    case: str
    check: str
    config: str          # "" for path-independent checks
    message: str

    def format(self) -> str:
        where = f" [{self.config}]" if self.config else ""
        return f"{self.case}{where} {self.check}: {self.message}"


@dataclass
class OracleReport:
    """Everything one oracle evaluation produced."""

    case: str
    shape: str
    failures: List[OracleFailure]
    paths: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@contextmanager
def _env_mode(var: str, on: bool):
    prior = os.environ.get(var)
    os.environ[var] = "1" if on else "0"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = prior


def _fast_mode(fast: bool):
    return _env_mode(FAST_ENV, fast)


def _vec_mode(vec: bool):
    return _env_mode(VEC_ENV, vec)


def _sched_mode(sched: bool):
    return _env_mode(SCHED_ENV, sched)


def _metric_signature(r: RunResult) -> Dict[str, object]:
    """Every figure-visible metric plus the raw ledger counters."""
    return {
        "time_ps": r.time_ps,
        "insts": r.insts,
        "mem_ops": r.mem_ops,
        "movement_bytes": r.movement_bytes,
        "mmio_bytes": r.mmio_bytes,
        "accel_iterations": r.accel_iterations,
        "validated": r.validated,
        "cache_stats": r.cache_stats.as_dict(),
        "traffic_breakdown": r.traffic_breakdown,
        "energy_counts": dict(sorted(r.energy.counts().items())),
    }


class DifferentialOracle:
    """Runs one case through every path and collects disagreements."""

    def __init__(self, paths: Sequence[str] = DEFAULT_PATHS,
                 machine: Optional[MachineParams] = None,
                 modes: Tuple[bool, ...] = (True, False),
                 vec_modes: Tuple[bool, ...] = (True, False),
                 sched_modes: Tuple[bool, ...] = (True, False)):
        self.paths = tuple(paths)
        self.machine = machine or experiment_machine()
        #: REPRO_FAST replay modes to cross (batched vs scalar replay)
        self.modes = modes
        #: REPRO_VEC interpreter modes to cross (vectorized vs scalar
        #: tree-walking interpretation)
        self.vec_modes = vec_modes
        #: REPRO_SCHED engine modes to cross (two-level scheduler +
        #: macro-chunk coalescing vs the tuple-heap reference engine);
        #: the reference engine is checked once per config at the
        #: primary (fast, vec) mode rather than fully crossed — the
        #: scheduler core is orthogonal to the replay/interpreter axes
        self.sched_modes = sched_modes

    # ------------------------------------------------------------------
    def _machine_for(self, case: GeneratedCase) -> MachineParams:
        """The machine a case is checked on.

        A machine-bearing case (``case.machine_doc`` set, the
        random-machine conformance axis) overrides the oracle's
        constructor machine; the document is validated on every call, so
        a shrinker candidate that corrupted it fails loudly here.
        """
        if case.machine_doc is None:
            return self.machine
        from ..machine import machine_from_document

        return machine_from_document(case.machine_doc)

    # ------------------------------------------------------------------
    def check_case(self, case: GeneratedCase) -> OracleReport:
        failures: List[OracleFailure] = []
        self._check_analysis(case, failures)
        golden, counts = self._golden(case, failures)
        if golden is None:
            return OracleReport(case.name, case.shape, failures, self.paths)
        runs = self._simulate_all(case, failures)
        self._check_outputs(case, golden, runs, failures)
        self._check_cross_path(case, runs, failures)
        self._check_sched_identity(case, runs, failures)
        self._check_conservation(case, counts, runs, failures)
        self._check_static_bounds(case, runs, failures)
        return OracleReport(case.name, case.shape, failures, self.paths)

    # ------------------------------------------------------------------
    def _check_analysis(self, case: GeneratedCase,
                        failures: List[OracleFailure]) -> None:
        for kernel in case.kernels:
            errors = errors_of(verify_kernel(kernel))
            if errors:
                lines = "; ".join(f.format() for f in errors)
                failures.append(OracleFailure(
                    case.name, "verifier-accepts", "",
                    f"kernel {kernel.name!r} rejected by the static "
                    f"verifier: {lines}",
                ))
            # AN-D03 = deps classification contradicts the DFG offload
            # classifier; a generated kernel must never expose one
            contradictions = [
                f for f in dependence_findings(kernel) if f.rule == "AN-D03"
            ]
            for finding in contradictions:
                failures.append(OracleFailure(
                    case.name, "deps-vs-classifier", "", finding.format(),
                ))

    def _golden(self, case: GeneratedCase,
                failures: List[OracleFailure]):
        """The interpreter must execute every verifier-accepted case."""
        try:
            return case.golden_run()
        except ReproError as exc:
            failures.append(OracleFailure(
                case.name, "interpreter-succeeds", "",
                f"golden interpretation failed: {exc}",
            ))
            return None, None

    # ------------------------------------------------------------------
    def _simulate_all(self, case: GeneratedCase,
                      failures: List[OracleFailure]
                      ) -> Dict[Tuple[str, bool, bool], RunResult]:
        """Simulate every (config, fast-mode, vec-mode) cell of the case.

        One shared trace cache per case: the functional interpretation is
        path-independent, so each cell after the first replays it — the
        exact sharing discipline the experiment matrix uses. The trace
        key carries the interpreter mode (mirroring
        ``tracecache.functional_key``) so each ``REPRO_VEC`` mode
        records its own interpretation instead of replaying the other
        mode's — the cross-mode comparison stays evidentiary.
        """
        runs: Dict[Tuple[str, bool, bool], RunResult] = {}
        machine = self._machine_for(case)
        cache = TraceCache(max_entries=1)
        for vec in self.vec_modes:
            variant = "fuzz" if vec else "fuzz+scalar"
            with _vec_mode(vec), _sched_mode(self.sched_modes[0]):
                for fast in self.modes:
                    with _fast_mode(fast):
                        for config in self.paths:
                            try:
                                runs[(config, fast, vec)] = simulate_workload(
                                    case.instance(), config,
                                    machine=machine,
                                    trace_cache=cache,
                                    trace_key=(case.name, variant),
                                )
                            except Exception as exc:  # crashes are findings
                                failures.append(OracleFailure(
                                    case.name, "simulates", config,
                                    f"fast={int(fast)},vec={int(vec)}: "
                                    f"{type(exc).__name__}: {exc}",
                                ))
        return runs

    # ------------------------------------------------------------------
    def _check_outputs(self, case: GeneratedCase,
                       golden: Dict[str, np.ndarray],
                       runs: Dict[Tuple[str, bool, bool], RunResult],
                       failures: List[OracleFailure]) -> None:
        for (config, fast, vec), run in runs.items():
            if not run.validated:
                failures.append(OracleFailure(
                    case.name, "outputs-validate", config,
                    f"fast={int(fast)},vec={int(vec)}: run failed "
                    f"output validation",
                ))

    def _check_cross_path(self, case: GeneratedCase,
                          runs: Dict[Tuple[str, bool, bool], RunResult],
                          failures: List[OracleFailure]) -> None:
        """Counter-for-counter agreement across replay and interpreter
        modes.

        Pairwise along each axis: batched vs scalar replay within every
        interpreter mode (``fast-vs-scalar``) and vectorized vs
        tree-walking interpretation within every replay mode
        (``vec-vs-scalar``). Together the comparisons connect every
        simulated cell of a config, so any single-cell divergence is
        caught and attributed to the axis it appeared on.
        """
        def compare(check: str, config: str, a: RunResult, b: RunResult,
                    a_tag: str, b_tag: str) -> None:
            sig_a = _metric_signature(a)
            sig_b = _metric_signature(b)
            for field in sig_a:
                if sig_a[field] != sig_b[field]:
                    failures.append(OracleFailure(
                        case.name, check, config,
                        f"{field} diverged: {a_tag}={sig_a[field]!r} "
                        f"{b_tag}={sig_b[field]!r}",
                    ))

        for config in self.paths:
            if set(self.modes) == {True, False}:
                for vec in self.vec_modes:
                    fast = runs.get((config, True, vec))
                    scalar = runs.get((config, False, vec))
                    if fast is not None and scalar is not None:
                        compare("fast-vs-scalar", config, fast, scalar,
                                "fast", "scalar")
            if set(self.vec_modes) == {True, False}:
                for fast in self.modes:
                    vec = runs.get((config, fast, True))
                    scalar = runs.get((config, fast, False))
                    if vec is not None and scalar is not None:
                        compare("vec-vs-scalar", config, vec, scalar,
                                "vec", "scalar")

    # ------------------------------------------------------------------
    def _check_sched_identity(self, case: GeneratedCase,
                              runs: Dict[Tuple[str, bool, bool], RunResult],
                              failures: List[OracleFailure]) -> None:
        """Two-level engine vs the tuple-heap reference, counter for
        counter.

        Every cell in ``runs`` was simulated under the primary
        ``REPRO_SCHED`` mode (the two-level scheduler with macro-chunk
        coalescing, by default). Here each config is re-simulated once
        under the secondary mode (the reference engine) at the primary
        (fast, vec) point and compared field by field — the scheduler
        core only changes *how* events are dispatched, never the timed
        behavior, so exact equality is the contract.
        """
        distinct = set(self.sched_modes)
        if len(distinct) < 2:
            return
        fast, vec = self.modes[0], self.vec_modes[0]
        variant = "fuzz" if vec else "fuzz+scalar"
        other = self.sched_modes[1]
        machine = self._machine_for(case)
        cache = TraceCache(max_entries=1)
        with _vec_mode(vec), _fast_mode(fast), _sched_mode(other):
            for config in self.paths:
                base = runs.get((config, fast, vec))
                if base is None:
                    continue
                try:
                    ref = simulate_workload(
                        case.instance(), config,
                        machine=machine,
                        trace_cache=cache,
                        trace_key=(case.name, variant),
                    )
                except Exception as exc:  # crashes are findings
                    failures.append(OracleFailure(
                        case.name, "sched-simulates", config,
                        f"sched={int(other)}: {type(exc).__name__}: {exc}",
                    ))
                    continue
                sig_a = _metric_signature(base)
                sig_b = _metric_signature(ref)
                for field in sig_a:
                    if sig_a[field] != sig_b[field]:
                        failures.append(OracleFailure(
                            case.name, "sched-vs-reference", config,
                            f"{field} diverged: "
                            f"sched={int(self.sched_modes[0])}="
                            f"{sig_a[field]!r} "
                            f"sched={int(other)}={sig_b[field]!r}",
                        ))

    # ------------------------------------------------------------------
    def _check_conservation(self, case: GeneratedCase, counts,
                            runs: Dict[Tuple[str, bool, bool], RunResult],
                            failures: List[OracleFailure]) -> None:
        golden_mem_ops = counts.loads + counts.stores
        ncalls = len(case.calls)
        expected_ooo_insts = (
            counts.total_insts + ncalls * HOST_INSTS_PER_CALL
        )
        for (config, fast, vec), run in runs.items():
            tag = f"fast={int(fast)},vec={int(vec)}"
            # functional load/store volume is configuration-independent
            if run.mem_ops != golden_mem_ops:
                failures.append(OracleFailure(
                    case.name, "mem-ops-conserved", config,
                    f"{tag}: mem_ops={run.mem_ops}, golden interpreter "
                    f"counted {golden_mem_ops}",
                ))
            if config == "ooo":
                if run.insts != expected_ooo_insts:
                    failures.append(OracleFailure(
                        case.name, "host-inst-accounting", config,
                        f"{tag}: insts={run.insts}, golden counts + host "
                        f"work = {expected_ooo_insts}",
                    ))
                # one L1 access per traced element access, no more
                l1 = run.cache_stats.l1
                if l1 != golden_mem_ops:
                    failures.append(OracleFailure(
                        case.name, "cache-access-sum", config,
                        f"{tag}: l1 accesses={l1}, trace has "
                        f"{golden_mem_ops} element accesses",
                    ))
            self._check_ledger(case, config, tag, run, failures)

    def _check_static_bounds(self, case: GeneratedCase,
                             runs: Dict[Tuple[str, bool, bool], RunResult],
                             failures: List[OracleFailure]) -> None:
        """Measured metrics must fall inside their AN-C intervals.

        The cost model claims soundness for the six validated
        configurations; the fuzzer's job is to find a kernel shape
        where a measured run escapes its interval (``AN-C05``
        territory). A model *crash* on a verifier-accepted case is a
        finding too — the model must be total over the kernel space the
        generator covers.
        """
        from ..analysis.cost import (
            VALIDATED_CONFIGS, check_bounds, cost_model_for_instance,
        )

        try:
            model = cost_model_for_instance(case.instance(),
                                            self._machine_for(case))
            predictions = {
                config: model.predict(config)
                for config in self.paths if config in VALIDATED_CONFIGS
            }
        except Exception as exc:  # noqa: BLE001 — crashes are findings
            failures.append(OracleFailure(
                case.name, "static-cost-bounds", "",
                f"cost model failed: {type(exc).__name__}: {exc}",
            ))
            return
        for (config, fast, vec), run in runs.items():
            predicted = predictions.get(config)
            if predicted is None:
                continue
            for violation in check_bounds(predicted, run, config):
                failures.append(OracleFailure(
                    case.name, "static-cost-bounds", config,
                    f"fast={int(fast)},vec={int(vec)}: "
                    f"{violation.format()}",
                ))

    def _check_ledger(self, case: GeneratedCase, config: str, tag: str,
                      run: RunResult,
                      failures: List[OracleFailure]) -> None:
        ledger = run.energy
        total = ledger.total_pj()
        by_comp = sum(ledger.by_component().values())
        by_event = sum(ledger.by_event().values())
        for label, partial in (("component", by_comp), ("event", by_event)):
            if not math.isclose(total, partial, rel_tol=1e-9, abs_tol=1e-6):
                failures.append(OracleFailure(
                    case.name, "energy-breakdown-sums", config,
                    f"{tag}: total_pj={total!r} but per-{label} "
                    f"breakdown sums to {partial!r}",
                ))
        negative = [
            (key, n) for key, n in ledger.counts().items() if n < 0
        ]
        if negative:
            failures.append(OracleFailure(
                case.name, "ledger-nonnegative", config,
                f"{tag}: negative event counts {negative}",
            ))


def check_case(case: GeneratedCase,
               paths: Sequence[str] = DEFAULT_PATHS,
               machine: Optional[MachineParams] = None) -> OracleReport:
    """Convenience one-shot: run every oracle over ``case``."""
    return DifferentialOracle(paths, machine).check_case(case)

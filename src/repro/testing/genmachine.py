"""Seeded random machine-description generator for conformance fuzzing.

One seed in, one *valid* machine document out: cluster counts from
{1, 2, 4, 8, 16}, every mesh shape large enough to host them (with a
random host tile and memory-controller attachment), randomized per-level
cache geometry (power-of-two set counts by construction), bank counts,
clock ratios and access-unit sizing. Capacities stay experiment-scale
small so a fuzz case simulates in milliseconds. Energy/area charge
sheets keep their calibrated defaults — the AN-C static cost bounds are
part of the oracle, and their fixed margins are calibrated against the
default tables.

Documents are sparse (deltas against Table III), which keeps the
shrinker's job simple: dropping a key moves the machine *toward* the
reference configuration.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..machine import validate_document

#: cluster counts the generator draws from (ISSUE-mandated set)
CLUSTER_COUNTS = (1, 2, 4, 8, 16)

#: candidate mesh shapes (cols, rows); a draw only considers shapes with
#: at least one node per L3 cluster
MESH_SHAPES = ((1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (8, 2),
               (8, 4))

#: accelerator clock ratios relative to the 2 GHz host (paper §VI-E)
ACCEL_FREQS = (0.5, 1.0, 2.0)

_LINE = 64


def generate_machine_doc(seed: int) -> Dict[str, object]:
    """Deterministically draw one valid machine document from ``seed``."""
    rng = random.Random(seed)
    clusters = rng.choice(CLUSTER_COUNTS)
    cols, rows = rng.choice(
        [s for s in MESH_SHAPES if s[0] * s[1] >= clusters]
    )
    nodes = cols * rows

    l1_ways = rng.choice((2, 4, 8))
    l2_ways = rng.choice((4, 8, 16))
    l3_ways = rng.choice((4, 8, 16))
    slice_sets = rng.choice((2, 4, 8))
    accel_freq = rng.choice(ACCEL_FREQS)

    doc: Dict[str, object] = {
        "schema_version": 1,
        "name": f"fuzz-machine-{seed}",
        "l1": {
            "size_bytes": rng.choice((2, 4)) * l1_ways * _LINE,
            "ways": l1_ways,
        },
        "l2": {
            "size_bytes": rng.choice((4, 8)) * l2_ways * _LINE,
            "ways": l2_ways,
        },
        "l3": {
            "size_bytes": slice_sets * l3_ways * _LINE * clusters,
            "ways": l3_ways,
            "latency_cycles": rng.randint(6, 12),
        },
        "l3_clusters": clusters,
        "l3_banks_per_cluster": rng.choice((1, 2, 4, 8)),
        "l3_bank_latency": rng.randint(1, 4),
        "noc": {
            "mesh_cols": cols,
            "mesh_rows": rows,
            "hop_latency_cycles": rng.choice((1, 2, 3)),
            "host_node": rng.randrange(clusters),
            "mc_node": rng.randrange(nodes),
        },
        "dram": {
            "bandwidth_bytes_per_cycle": rng.choice((6.4, 12.8, 25.6)),
        },
        "inorder": {"freq_ghz": accel_freq},
        "cgra": {"freq_ghz": accel_freq},
        "access_unit": {
            "buffer_bytes": rng.choice((512, 1024, 2048)),
            "acp_bytes": rng.choice((128, 256, 512)),
        },
        "mono_private_bytes": 4 * _LINE * rng.choice((1, 2, 4, 8)),
    }
    # a generator bug must fail loudly here, not as a confusing oracle
    # failure downstream
    validate_document(doc)
    return doc


def machine_doc_stream(seed: int, count: int
                       ) -> Iterator[Dict[str, object]]:
    """Yield ``count`` documents with per-doc sub-seeds from ``seed``."""
    rng = random.Random(seed)
    for _ in range(count):
        yield generate_machine_doc(rng.getrandbits(32))


def machine_histogram(docs: Sequence[Optional[Dict[str, object]]]
                      ) -> Dict[str, int]:
    """Cluster-count histogram of the machine axis (fuzz report)."""
    hist: Dict[str, int] = {}
    for doc in docs:
        if doc is None:
            continue
        key = str(doc.get("l3_clusters", "default"))
        hist[key] = hist.get(key, 0) + 1
    return dict(sorted(hist.items(), key=lambda kv: int(kv[0])))

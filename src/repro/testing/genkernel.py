"""Structured kernel/workload generator for the conformance suite.

One seeded RNG in, one well-formed :class:`GeneratedCase` out. The
generator is the single source of kernel-generation truth for every
fuzzing surface in the tree — the hypothesis strategies in
``tests/test_fuzz_pipeline.py`` draw a seed and call into this module —
and it emits the kernel shapes that historically drove real bugs, far
beyond 1-D elementwise: nested loops with affine multi-dimensional
indexing, ``When``-guarded stores over data-dependent predicates,
indirect gather/scatter accesses, loop-carried reductions,
multi-kernel workloads chained through a shared intermediate object,
large-magnitude INT64 division (operands beyond float64's exact-integer
range), and degenerate loop bounds (zero-trip and statically-dead
nests).

Every emitted case is *well-formed by construction*: it passes the
static verifier with no ERROR findings and interprets without dynamic
faults (index arrays are populated with in-bounds values, affine
offsets respect the declared margins). The differential oracle
(:mod:`repro.testing.oracle`) then checks that every execution path
agrees on what the case computes and costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..ir import (
    FLOAT32,
    INT32,
    INT64,
    Interpreter,
    Kernel,
    Loop,
    LoopVar,
    MemObject,
    OpCounts,
    Scalar,
    When,
)
from ..ir.expr import BinOp, Expr
from ..ir.stmt import Assign
from ..ir.expr import Temp
from ..workloads.base import KernelCall, WorkloadInstance

#: every shape the generator emits (the fuzz CLI's histogram keys)
SHAPES = (
    "elementwise",
    "nested",
    "guarded",
    "reduction",
    "gather",
    "scatter",
    "multi",
    "intdiv",
    "degenerate",
)

#: value-combining ops safe on arbitrary float data (no div-by-zero,
#: no domain errors)
SAFE_OPS = ("+", "-", "*", "min", "max")

#: per-call host-side work constant used by every generated instance
HOST_INSTS_PER_CALL = 50


@dataclass
class GeneratedCase:
    """A self-contained conformance workload: kernels + initial data.

    The case itself is immutable test *data*; :meth:`instance` builds a
    fresh single-use :class:`~repro.workloads.base.WorkloadInstance` per
    simulation run, always starting from the same initial arrays.
    """

    name: str
    shape: str
    seed: int
    kernels: List[Kernel]
    #: execution order: (kernel name, scalar overrides) per dynamic call
    calls: List[Tuple[str, Dict[str, float]]]
    #: initial array contents, keyed by object name
    arrays: Dict[str, np.ndarray]
    outputs: List[str]
    #: optional machine document (sparse deltas against Table III); when
    #: set, the oracle simulates the case on this machine instead of its
    #: default (the random-machine conformance axis)
    machine_doc: Optional[Dict[str, object]] = None
    _golden: Optional[Dict[str, np.ndarray]] = field(
        default=None, repr=False, compare=False)
    _golden_counts: Optional[OpCounts] = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise ConfigError(f"case {self.name!r} has no kernel {name!r}")

    def objects(self) -> Dict[str, MemObject]:
        merged: Dict[str, MemObject] = {}
        for k in self.kernels:
            merged.update(k.objects)
        return merged

    def size(self) -> int:
        """Shrink metric: statements + array elements (smaller = simpler)."""
        def stmts_of(loop: Loop) -> int:
            total = 1
            for s in loop.body:
                if isinstance(s, Loop):
                    total += stmts_of(s)
                elif isinstance(s, When):
                    total += 1 + len(s.body)
                else:
                    total += 1
            return total

        def leaves(value) -> int:
            if isinstance(value, dict):
                return sum(leaves(v) for v in value.values())
            return 1

        stmt_total = sum(
            stmts_of(l) for k in self.kernels for l in k.loops
        )
        elems = sum(a.size for a in self.arrays.values())
        # a machine doc counts per leaf so shrink steps that drop keys
        # (moving toward the reference machine) strictly reduce size
        machine = 0
        if self.machine_doc is not None:
            machine = 100 + 10 * leaves(self.machine_doc)
        return stmt_total * 1000 + elems + len(self.calls) + machine

    # ------------------------------------------------------------------
    def golden_run(self) -> Tuple[Dict[str, np.ndarray], OpCounts]:
        """Golden interpreter execution from the initial arrays.

        Cached: outputs and merged dynamic op counts are reused by every
        oracle path and by the per-instance reference closure.
        """
        if self._golden is None:
            arrays = {k: v.copy() for k, v in self.arrays.items()}
            interp = Interpreter()
            counts = OpCounts()
            for kname, scalars in self.calls:
                res = interp.run(self.kernel(kname), arrays, scalars)
                counts = counts.merged(res.counts)
            self._golden = {name: arrays[name] for name in self.outputs}
            self._golden_counts = counts
        return self._golden, self._golden_counts

    def golden_outputs(self) -> Dict[str, np.ndarray]:
        return self.golden_run()[0]

    # ------------------------------------------------------------------
    def instance(self) -> WorkloadInstance:
        """Build a fresh runnable instance (instances are single-use)."""
        kernels = {k.name: k for k in self.kernels}
        calls = [
            KernelCall(kernels[name], dict(scalars))
            for name, scalars in self.calls
        ]
        golden = {k: v.copy() for k, v in self.golden_outputs().items()}

        def reference(_inputs):
            return {k: v.copy() for k, v in golden.items()}

        return WorkloadInstance(
            name=self.name, short=self.shape[:3],
            objects=self.objects(),
            arrays={k: v.copy() for k, v in self.arrays.items()},
            outputs=list(self.outputs),
            schedule=lambda inst: iter(calls),
            reference=reference,
            host_insts_per_call=HOST_INSTS_PER_CALL,
            atol=1e-4,
        )


# ---------------------------------------------------------------------------
# expression helpers
# ---------------------------------------------------------------------------
def _combine(rng: random.Random, terms: Sequence[Expr]) -> Expr:
    """Fold load terms with random safe ops, optionally scaling one."""
    expr = terms[0]
    for term in terms[1:]:
        expr = BinOp(rng.choice(SAFE_OPS), expr, term)
    if rng.random() < 0.5:
        expr = expr * round(rng.uniform(-2.0, 2.0), 3)
    return expr


def _input_data(rng: random.Random, n: int) -> np.ndarray:
    data = np.random.default_rng(rng.getrandbits(31)).random(n)
    return data.astype(np.float32)


def _index_data(rng: random.Random, n: int, bound: int) -> np.ndarray:
    gen = np.random.default_rng(rng.getrandbits(31))
    return gen.integers(0, bound, size=n).astype(np.int32)


# ---------------------------------------------------------------------------
# shape emitters
# ---------------------------------------------------------------------------
I = LoopVar("i")
J = LoopVar("j")


def _elementwise(rng: random.Random, seed: int) -> GeneratedCase:
    """1-D affine: ``out[i] = f(in0[i+o0], in1[i+o1], ...)``.

    The port of the historical ``tests/test_fuzz_pipeline.py`` strategy:
    always offloadable in every compile mode, one object per partition.
    """
    n = rng.randint(8, 48)
    num_inputs = rng.randint(1, 3)
    margin = 4
    objects = {
        f"in{k}": MemObject(f"in{k}", n + 2 * margin, FLOAT32)
        for k in range(num_inputs)
    }
    out = MemObject("out", n + 2 * margin, FLOAT32)
    objects["out"] = out
    terms = [
        objects[f"in{k}"][I + (margin + rng.randint(-margin, margin))]
        for k in range(num_inputs)
    ]
    scalars: Dict[str, float] = {}
    expr = _combine(rng, terms)
    if rng.random() < 0.3:
        scalars["alpha"] = round(rng.uniform(-1.5, 1.5), 3)
        expr = expr * Scalar("alpha")
    loop = Loop("i", 0, n, [out.store(I + margin, expr)])
    kernel = Kernel("fz_elem", objects, [loop], scalars=scalars,
                    outputs=["out"])
    arrays = {
        name: _input_data(rng, obj.num_elements)
        for name, obj in objects.items()
    }
    return GeneratedCase(
        name=f"elementwise-{seed}", shape="elementwise", seed=seed,
        kernels=[kernel], calls=[("fz_elem", {})], arrays=arrays,
        outputs=["out"],
    )


def _nested(rng: random.Random, seed: int) -> GeneratedCase:
    """2-D loop nest with affine multi-dim indexing (stencil-like)."""
    h = rng.randint(4, 9)
    w = rng.randint(4, 9)
    margin = 2
    h2, w2 = h + 2 * margin, w + 2 * margin
    num_inputs = rng.randint(1, 2)
    objects = {
        f"in{k}": MemObject(f"in{k}", (h2, w2), FLOAT32)
        for k in range(num_inputs)
    }
    out = MemObject("out", (h2, w2), FLOAT32)
    objects["out"] = out
    terms = []
    for k in range(num_inputs):
        taps = rng.randint(1, 3)
        for _ in range(taps):
            dy = rng.randint(-margin, margin)
            dx = rng.randint(-margin, margin)
            terms.append(objects[f"in{k}"][I + (margin + dy),
                                           J + (margin + dx)])
    body: List = []
    expr = _combine(rng, terms)
    if rng.random() < 0.4:
        body.append(Assign("t", expr))
        expr = Temp("t") + round(rng.uniform(-1.0, 1.0), 3)
    body.append(out.store((I + margin, J + margin), expr))
    nest = Loop("i", 0, h, [Loop("j", 0, w, body)])
    kernel = Kernel("fz_nest", objects, [nest], outputs=["out"])
    arrays = {
        name: _input_data(rng, obj.num_elements)
        for name, obj in objects.items()
    }
    return GeneratedCase(
        name=f"nested-{seed}", shape="nested", seed=seed,
        kernels=[kernel], calls=[("fz_nest", {})], arrays=arrays,
        outputs=["out"],
    )


def _guarded(rng: random.Random, seed: int) -> GeneratedCase:
    """``When``-guarded stores: predicate on data or the loop variable."""
    n = rng.randint(8, 40)
    margin = 2
    objects = {
        "in0": MemObject("in0", n + 2 * margin, FLOAT32),
        "out": MemObject("out", n + 2 * margin, FLOAT32),
    }
    in0, out = objects["in0"], objects["out"]
    load = in0[I + margin]
    if rng.random() < 0.5:
        cond = load.gt(round(rng.uniform(0.2, 0.8), 3))
    else:
        cond = I.lt(rng.randint(1, n))
    value = _combine(rng, [load, in0[I + margin + rng.randint(-margin,
                                                             margin)]])
    guarded = [out.store(I + margin, value)]
    if rng.random() < 0.3:
        # nested When: the shape that exposed _stores_of missing stores
        inner_cond = load.lt(round(rng.uniform(0.5, 1.0), 3))
        guarded = [When(inner_cond, guarded)]
    body: List = [When(cond, guarded)]
    if rng.random() < 0.4:
        body.append(out.store(I + margin, value.min(1.0)))
    loop = Loop("i", 0, n, body)
    kernel = Kernel("fz_guard", objects, [loop], outputs=["out"])
    arrays = {
        name: _input_data(rng, obj.num_elements)
        for name, obj in objects.items()
    }
    return GeneratedCase(
        name=f"guarded-{seed}", shape="guarded", seed=seed,
        kernels=[kernel], calls=[("fz_guard", {})], arrays=arrays,
        outputs=["out"],
    )


def _reduction(rng: random.Random, seed: int) -> GeneratedCase:
    """Loop-carried accumulator: ``acc[0] = acc[0] op in[i]``."""
    n = rng.randint(8, 48)
    objects = {
        "in0": MemObject("in0", n, FLOAT32),
        "acc": MemObject("acc", 1, FLOAT32),
    }
    in0, acc = objects["in0"], objects["acc"]
    op = rng.choice(("+", "min", "max"))
    update = BinOp(op, acc[0], in0[I])
    body: List = [acc.store(0, update)]
    outputs = ["acc"]
    if rng.random() < 0.4:
        out = MemObject("out", n, FLOAT32)
        objects["out"] = out
        body.append(out.store(I, in0[I] * round(rng.uniform(0.5, 2.0), 3)))
        outputs.append("out")
    loop = Loop("i", 0, n, body)
    kernel = Kernel("fz_red", objects, [loop], outputs=outputs)
    arrays = {
        name: _input_data(rng, obj.num_elements)
        for name, obj in objects.items()
    }
    return GeneratedCase(
        name=f"reduction-{seed}", shape="reduction", seed=seed,
        kernels=[kernel], calls=[("fz_red", {})], arrays=arrays,
        outputs=outputs,
    )


def _gather(rng: random.Random, seed: int) -> GeneratedCase:
    """Indirect loads: ``out[i] = f(data[idx[i]], ...)``."""
    n = rng.randint(8, 40)
    data_n = rng.randint(8, 64)
    objects = {
        "idx": MemObject("idx", n, INT32),
        "data": MemObject("data", data_n, FLOAT32),
        "out": MemObject("out", n, FLOAT32),
    }
    idx, data, out = objects["idx"], objects["data"], objects["out"]
    terms: List[Expr] = [data[idx[I]]]
    if data_n >= n and rng.random() < 0.5:
        terms.append(data[I])
    expr = _combine(rng, terms)
    loop = Loop("i", 0, n, [out.store(I, expr)])
    kernel = Kernel("fz_gather", objects, [loop], outputs=["out"])
    arrays = {
        "idx": _index_data(rng, n, data_n),
        "data": _input_data(rng, data_n),
        "out": _input_data(rng, n),
    }
    return GeneratedCase(
        name=f"gather-{seed}", shape="gather", seed=seed,
        kernels=[kernel], calls=[("fz_gather", {})], arrays=arrays,
        outputs=["out"],
    )


def _scatter(rng: random.Random, seed: int) -> GeneratedCase:
    """Indirect stores: ``out[idx[i]] = f(in[i])`` (program order decides
    collisions; the golden interpreter defines the winner)."""
    n = rng.randint(8, 40)
    out_n = rng.randint(8, 48)
    objects = {
        "idx": MemObject("idx", n, INT32),
        "in0": MemObject("in0", n, FLOAT32),
        "out": MemObject("out", out_n, FLOAT32),
    }
    idx, in0, out = objects["idx"], objects["in0"], objects["out"]
    value = in0[I] * round(rng.uniform(0.5, 2.0), 3)
    body: List = [out.store(idx[I], value)]
    if rng.random() < 0.3:
        body = [When(in0[I].gt(round(rng.uniform(0.2, 0.6), 3)), body)]
    loop = Loop("i", 0, n, body)
    kernel = Kernel("fz_scatter", objects, [loop], outputs=["out"])
    arrays = {
        "idx": _index_data(rng, n, out_n),
        "in0": _input_data(rng, n),
        "out": _input_data(rng, out_n),
    }
    return GeneratedCase(
        name=f"scatter-{seed}", shape="scatter", seed=seed,
        kernels=[kernel], calls=[("fz_scatter", {})], arrays=arrays,
        outputs=["out"],
    )


def _multi(rng: random.Random, seed: int) -> GeneratedCase:
    """Two kernels chained through a shared intermediate object."""
    n = rng.randint(8, 32)
    margin = 2
    size = n + 2 * margin
    in0 = MemObject("in0", size, FLOAT32)
    mid = MemObject("mid", size, FLOAT32)
    out = MemObject("out", size, FLOAT32)
    o1 = rng.randint(-margin, margin)
    k1 = Kernel(
        "fz_stage1", {"in0": in0, "mid": mid},
        [Loop("i", 0, n,
              [mid.store(I + margin,
                         _combine(rng, [in0[I + margin],
                                        in0[I + margin + o1]]))])],
        outputs=["mid"],
    )
    o2 = rng.randint(-margin, margin)
    k2 = Kernel(
        "fz_stage2", {"mid": mid, "out": out},
        [Loop("i", 0, n,
              [out.store(I + margin,
                         _combine(rng, [mid[I + margin],
                                        mid[I + margin + o2]]))])],
        outputs=["out"],
    )
    calls: List[Tuple[str, Dict[str, float]]] = [
        ("fz_stage1", {}), ("fz_stage2", {}),
    ]
    if rng.random() < 0.3:
        calls.append(("fz_stage2", {}))
    arrays = {
        "in0": _input_data(rng, size),
        "mid": _input_data(rng, size),
        "out": _input_data(rng, size),
    }
    return GeneratedCase(
        name=f"multi-{seed}", shape="multi", seed=seed,
        kernels=[k1, k2], calls=calls, arrays=arrays,
        outputs=["out", "mid"],
    )


def _intdiv(rng: random.Random, seed: int) -> GeneratedCase:
    """Large-magnitude INT64 division/modulo near and beyond 2^53.

    The shape that would have caught the truncating-division bug: the
    interpreter used to compute integer ``/`` as ``int(lhs / rhs)``,
    which round-trips through float64 and silently corrupts quotients
    once operands leave float64's exact-integer range. Numerators
    straddle 2^53 (and optionally reach 2^61) with mixed signs, so any
    path that evaluates division in floating point disagrees with the
    exact truncating reference.
    """
    n = rng.randint(8, 32)
    objects = {
        "num": MemObject("num", n, INT64),
        "den": MemObject("den", n, INT64),
        "quot": MemObject("quot", n, INT64),
    }
    num, den, quot = objects["num"], objects["den"], objects["quot"]
    outputs = ["quot"]
    body: List = [quot.store(I, num[I] / den[I])]
    if rng.random() < 0.6:
        rem = MemObject("rem", n, INT64)
        objects["rem"] = rem
        body.append(rem.store(I, num[I] % den[I]))
        outputs.append("rem")
    loop = Loop("i", 0, n, body)
    kernel = Kernel("fz_intdiv", objects, [loop], outputs=outputs)
    gen = np.random.default_rng(rng.getrandbits(31))
    base = 1 << rng.choice((53, 53, 57, 61))  # bias to the 2^53 boundary
    nums = (base + gen.integers(-(1 << 14), 1 << 14, size=n)
            ) * gen.choice((-1, 1), size=n)
    dens = gen.integers(1, 10, size=n) * gen.choice((-1, 1), size=n)
    arrays = {
        "num": nums.astype(np.int64),
        "den": dens.astype(np.int64),  # never zero by construction
        "quot": np.zeros(n, dtype=np.int64),
    }
    if "rem" in objects:
        arrays["rem"] = np.zeros(n, dtype=np.int64)
    return GeneratedCase(
        name=f"intdiv-{seed}", shape="intdiv", seed=seed,
        kernels=[kernel], calls=[("fz_intdiv", {})], arrays=arrays,
        outputs=outputs,
    )


def _degenerate(rng: random.Random, seed: int) -> GeneratedCase:
    """Zero-trip and degenerate-bound loops.

    A triangular inner bound (``for j in i .. m`` with ``m < n``) makes
    some inner-loop invocations empty, and an optional statically-dead
    nest (``lower == upper``) exercises loops that are *entered* by the
    accounting machinery but never run a body — the corner where
    per-loop iteration maps, offload cost models and the vectorized
    interpreter's closed-form trip counts historically disagree.
    """
    n = rng.randint(6, 12)
    m = rng.randint(1, n - 1)  # inner upper bound < n => empty tails
    objects = {
        "a": MemObject("a", n * n, FLOAT32),
        "out": MemObject("out", n * n, FLOAT32),
    }
    a, out = objects["a"], objects["out"]
    tri = Kernel(
        "fz_tri", objects,
        [Loop("i", 0, n, [Loop("j", I, m, [
            out.store(I * n + J,
                      _combine(rng, [a[I * n + J], a[J]]))
        ])])],
        outputs=["out"],
    )
    kernels = [tri]
    calls: List[Tuple[str, Dict[str, float]]] = [("fz_tri", {})]
    if rng.random() < 0.5:
        lo = rng.randint(0, n - 1)
        dead = Kernel(
            "fz_dead", dict(objects),
            [Loop("i", lo, lo, [out.store(I, a[I] * 2.0)])],
            outputs=["out"],
        )
        kernels.append(dead)
        calls.append(("fz_dead", {}))
    arrays = {
        name: _input_data(rng, obj.num_elements)
        for name, obj in objects.items()
    }
    return GeneratedCase(
        name=f"degenerate-{seed}", shape="degenerate", seed=seed,
        kernels=kernels, calls=calls, arrays=arrays,
        outputs=["out"],
    )


_EMITTERS = {
    "elementwise": _elementwise,
    "nested": _nested,
    "guarded": _guarded,
    "reduction": _reduction,
    "gather": _gather,
    "scatter": _scatter,
    "multi": _multi,
    "intdiv": _intdiv,
    "degenerate": _degenerate,
}


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------
def generate_case(seed: int, shape: Optional[str] = None) -> GeneratedCase:
    """Generate one case deterministically from ``(seed, shape)``.

    With ``shape=None`` the seed also picks the shape, uniformly over
    :data:`SHAPES`.
    """
    rng = random.Random(seed)
    if shape is None:
        shape = rng.choice(SHAPES)
    try:
        emit = _EMITTERS[shape]
    except KeyError:
        raise ConfigError(
            f"unknown kernel shape {shape!r}; known: {sorted(_EMITTERS)}"
        ) from None
    return emit(rng, seed)


def case_stream(seed: int, count: int,
                shapes: Sequence[str] = SHAPES) -> Iterator[GeneratedCase]:
    """Yield ``count`` cases; shapes round-robin so short runs still
    cover every shape, with per-case sub-seeds drawn from ``seed``."""
    rng = random.Random(seed)
    for i in range(count):
        shape = shapes[i % len(shapes)]
        yield generate_case(rng.getrandbits(32), shape=shape)


def shape_histogram(cases: Sequence[GeneratedCase]) -> Dict[str, int]:
    hist = {shape: 0 for shape in SHAPES}
    for case in cases:
        hist[case.shape] = hist.get(case.shape, 0) + 1
    return hist

"""Greedy structural shrinker for failing conformance cases.

Given a case and a predicate ("does it still fail?"), repeatedly tries
structure-removing transformations on the case's JSON form — drop a
kernel call, drop a statement, unwrap a ``When``, halve a constant loop
bound, drop an unreferenced object, drop machine-document keys (moving
a machine-bearing case toward the reference machine) — and keeps any
candidate that still
builds, still passes the static verifier-wellformedness the generator
guarantees, and still fails. The loop runs to a fixpoint, so the result
is 1-minimal with respect to the transformation set: removing any
single remaining element makes the failure disappear.

Minimized cases serialize to ``tests/corpus/`` for deterministic replay
(:func:`save_corpus_entry`); the corpus is collected as parametrized
pytest cases by ``tests/testing/test_corpus_replay.py``.
"""

from __future__ import annotations

import copy
import os
import re
from typing import Any, Callable, Dict, Iterator, List, Optional

from .genkernel import GeneratedCase
from .serialize import case_from_json, case_to_json, dumps_case

#: predicate: True while the candidate still reproduces the failure
FailPredicate = Callable[[GeneratedCase], bool]

#: hard cap on candidate evaluations per shrink (each runs the oracle)
DEFAULT_BUDGET = 400


# ---------------------------------------------------------------------------
# candidate enumeration (on the JSON form)
# ---------------------------------------------------------------------------
def _loops_of(spec: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Every loop dict in a kernel spec, outermost first."""
    stack = list(spec["loops"])
    while stack:
        node = stack.pop(0)
        if node["k"] == "loop":
            yield node
            stack.extend(s for s in node["body"] if s["k"] == "loop")


def _bodies_of(spec: Dict[str, Any]) -> Iterator[List[Dict[str, Any]]]:
    """Every statement list (loop bodies and When bodies) in a kernel."""
    for loop in _loops_of(spec):
        yield loop["body"]
        stack = [s for s in loop["body"] if s["k"] == "when"]
        while stack:
            when = stack.pop(0)
            yield when["body"]
            stack.extend(s for s in when["body"] if s["k"] == "when")


def _referenced_objects(data: Dict[str, Any]) -> set:
    """Object names appearing in any load/store of any kernel."""
    names: set = set()

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            if node.get("k") in ("load", "store") and "obj" in node:
                names.add(node["obj"])
            for v in node.values():
                walk(v)
        elif isinstance(node, list):
            for v in node:
                walk(v)

    for kernel in data["kernels"]:
        walk(kernel["loops"])
    return names


def _candidates(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Yield strictly-smaller mutations of the serialized case."""
    # 1. drop one dynamic call (and any kernel no call references)
    if len(data["calls"]) > 1:
        for i in range(len(data["calls"])):
            cand = copy.deepcopy(data)
            del cand["calls"][i]
            live = {c["kernel"] for c in cand["calls"]}
            cand["kernels"] = [
                k for k in cand["kernels"] if k["name"] in live
            ]
            yield cand
    # 2. drop one statement from any body (keeping bodies non-empty)
    for ki in range(len(data["kernels"])):
        bodies = list(_bodies_of(data["kernels"][ki]))
        for bi, body in enumerate(bodies):
            if len(body) < 2:
                continue
            for si in range(len(body)):
                cand = copy.deepcopy(data)
                cand_bodies = list(_bodies_of(cand["kernels"][ki]))
                del cand_bodies[bi][si]
                yield cand
    # 3. unwrap a When (replace the guard with its body)
    for ki in range(len(data["kernels"])):
        bodies = list(_bodies_of(data["kernels"][ki]))
        for bi, body in enumerate(bodies):
            for si, stmt in enumerate(body):
                if stmt["k"] != "when":
                    continue
                cand = copy.deepcopy(data)
                cand_bodies = list(_bodies_of(cand["kernels"][ki]))
                inner = cand_bodies[bi][si]["body"]
                cand_bodies[bi][si:si + 1] = inner
                yield cand
    # 4. halve a constant loop trip count (toward a 1-iteration loop)
    for ki in range(len(data["kernels"])):
        loops = list(_loops_of(data["kernels"][ki]))
        for li, loop in enumerate(loops):
            lower, upper = loop["lower"], loop["upper"]
            if lower["k"] != "const" or upper["k"] != "const":
                continue
            trips = upper["v"] - lower["v"]
            if trips <= 1:
                continue
            cand = copy.deepcopy(data)
            cand_loop = list(_loops_of(cand["kernels"][ki]))[li]
            cand_loop["upper"] = {
                "k": "const",
                "v": lower["v"] + max(1, trips // 2),
            }
            yield cand
    # 5. drop objects (and their arrays) nothing references any more
    referenced = _referenced_objects(data)
    dead = [
        name for name in data["arrays"]
        if name not in referenced
    ]
    if dead:
        cand = copy.deepcopy(data)
        for name in dead:
            cand["arrays"].pop(name, None)
        for kernel in cand["kernels"]:
            for name in dead:
                kernel["objects"].pop(name, None)
        cand["outputs"] = [o for o in cand["outputs"] if o not in dead]
        if cand["outputs"]:
            yield cand
    # 6. simplify the machine document toward the reference machine:
    # drop it entirely, one top-level key, or one group leaf. Candidates
    # are pre-validated — an invalid document would crash the oracle,
    # which the greedy loop would misread as "failure reproduced".
    machine = data.get("machine")
    if machine is not None:
        cand = copy.deepcopy(data)
        del cand["machine"]
        yield cand
        for key, value in machine.items():
            if key in ("schema_version", "name"):
                continue
            cand = copy.deepcopy(data)
            del cand["machine"][key]
            if _machine_valid(cand["machine"]):
                yield cand
            if isinstance(value, dict):
                for sub in value:
                    cand = copy.deepcopy(data)
                    del cand["machine"][key][sub]
                    if not cand["machine"][key]:
                        del cand["machine"][key]
                    if _machine_valid(cand["machine"]):
                        yield cand


def _machine_valid(doc: Dict[str, Any]) -> bool:
    from ..machine import validate_document

    try:
        validate_document(doc)
    except Exception:
        return False
    return True


def _rebuild(data: Dict[str, Any]) -> Optional[GeneratedCase]:
    """Deserialize a candidate; None when the mutation broke validity."""
    try:
        case = case_from_json(data)
    except Exception:
        return None
    try:
        for kernel in case.kernels:
            kernel.validate()
    except Exception:
        return None
    return case


# ---------------------------------------------------------------------------
# the greedy loop
# ---------------------------------------------------------------------------
def shrink(case: GeneratedCase, still_fails: FailPredicate,
           budget: int = DEFAULT_BUDGET) -> GeneratedCase:
    """Minimize ``case`` while ``still_fails`` holds.

    Greedy first-improvement descent: any accepted candidate restarts
    the transformation scan, so the result is minimal w.r.t. single
    transformations (within ``budget`` predicate evaluations).
    """
    best = case_from_json(case_to_json(case))  # private copy
    spent = 0
    improved = True
    while improved and spent < budget:
        improved = False
        best_json = case_to_json(best)
        for cand_json in _candidates(best_json):
            if spent >= budget:
                break
            candidate = _rebuild(cand_json)
            if candidate is None:
                continue
            spent += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = True  # predicate crash = failure reproduced
            if failing and candidate.size() < best.size():
                best = candidate
                improved = True
                break
    best.name = f"{case.name}-min"
    return best


# ---------------------------------------------------------------------------
# corpus persistence
# ---------------------------------------------------------------------------
def corpus_filename(case: GeneratedCase) -> str:
    slug = re.sub(r"[^a-zA-Z0-9_-]", "-", case.name)
    return f"{slug}.json"


def save_corpus_entry(case: GeneratedCase, corpus_dir: str) -> str:
    """Serialize ``case`` into ``corpus_dir`` and return the file path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, corpus_filename(case))
    with open(path, "w") as f:
        f.write(dumps_case(case))
    return path

"""Feature gate for the batched (columnar) replay fast path.

``REPRO_FAST=1`` (the default) lets the timing models drive the memory
system through the chunked batch entry points
(:meth:`~repro.mem.hierarchy.MemoryHierarchy.host_access_batch` and
friends); ``REPRO_FAST=0`` keeps the per-access scalar reference path.
Both produce bit-identical :class:`~repro.sim.results.RunResult`\\ s —
the batch paths only hoist lookups and aggregate commutative accounting
— and the equivalence is enforced by ``tests/sim/test_fastpath_equiv.py``.

The environment variable is consulted at every simulation entry (once
per kernel call / offload run, never per access), so a test can flip it
in-process with ``monkeypatch.setenv``. The variable itself is declared
in :mod:`repro.envcfg`, the authoritative ``REPRO_*`` registry.
"""

from __future__ import annotations

from . import envcfg
from .envcfg import fast_path_enabled

ENV_VAR = envcfg.REPRO_FAST.name

__all__ = ["ENV_VAR", "fast_path_enabled"]

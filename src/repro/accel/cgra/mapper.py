"""Modulo mapper for statically-mapped CGRAs (CGRA-Mapper substitute).

Maps a partition's compute DFG onto the heterogeneous PE grid:

* the initiation interval II starts at the resource minimum
  (``ceil(ops_of_class / units_of_class)`` per class) and grows until a
  feasible placement exists;
* placement walks the DFG in topological order, putting each op on a
  type-compatible PE with spare capacity (a PE hosts at most II ops)
  that minimizes Manhattan distance to its producers;
* nearest-neighbor routing contributes hop delay to the schedule depth.

The mapping is *static*: op-to-PE bindings are fixed for the offload's
lifetime, as in the paper's "statically-mapped CGRA architecture".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...dfg.graph import Dfg
from ...dfg.node import ComputeNode
from ...errors import MappingError
from .fabric import CgraFabric, PeType

MAX_II = 64


@dataclass
class CgraMapping:
    """A legal static mapping of one partition onto one fabric."""

    ii: int
    #: schedule depth in cycles including routing delays
    depth_cycles: int
    #: compute-node id -> (pe index, time slot)
    placement: Dict[int, Tuple[int, int]]
    routing_hops: int
    #: 64-bit configuration words to load at setup
    config_words: int


def map_dfg_partition(dfg: Dfg, fabric: CgraFabric,
                      node_ids: Optional[List[int]] = None) -> CgraMapping:
    """Map the compute nodes of ``dfg`` (or a partition subset) onto
    ``fabric``; raises :class:`MappingError` when no II <= MAX_II fits."""
    subset = set(node_ids) if node_ids is not None else set(dfg.nodes)
    compute = [
        n for n in dfg.nodes.values()
        if isinstance(n, ComputeNode) and n.id in subset
    ]
    if not compute:
        return CgraMapping(ii=1, depth_cycles=1, placement={},
                           routing_hops=0, config_words=1)
    counts = {ptype: 0 for ptype in PeType}
    for node in compute:
        counts[PeType.for_op_class(node.op_class)] += 1
    ii = 1
    for ptype, need in counts.items():
        have = fabric.count(ptype)
        if need and have == 0:
            raise MappingError(
                f"fabric has no {ptype.value} units but DFG needs {need}"
            )
        if need:
            ii = max(ii, math.ceil(need / have))
    while ii <= MAX_II:
        mapping = _try_place(dfg, fabric, compute, subset, ii)
        if mapping is not None:
            return mapping
        ii += 1
    raise MappingError(
        f"DFG {dfg.name!r}: no feasible mapping within II <= {MAX_II}"
    )


def _try_place(dfg: Dfg, fabric: CgraFabric, compute: List[ComputeNode],
               subset: set, ii: int) -> Optional[CgraMapping]:
    capacity: Dict[int, int] = {pe.index: 0 for pe in fabric.pes}
    budget_used = {ptype: 0 for ptype in PeType}
    placement: Dict[int, Tuple[int, int]] = {}
    levels = dfg.levels()
    routing_hops = 0
    depth = 0
    compute_ids = {n.id for n in compute}
    order = [nid for nid in dfg.topo_order() if nid in compute_ids]
    by_id = {n.id: n for n in compute}
    for nid in order:
        node = by_id[nid]
        ptype = PeType.for_op_class(node.op_class)
        if budget_used[ptype] >= fabric.count(ptype) * ii:
            return None
        candidates = [
            pe for pe in fabric.pes_of(ptype) if capacity[pe.index] < ii
        ]
        if not candidates:
            return None
        producer_pes = [
            placement[e.src][0] for e in dfg.predecessors(nid)
            if e.src in placement
        ]

        def route_cost(pe) -> int:
            if not producer_pes:
                return 0
            return sum(fabric.distance(src, pe.index) for src in producer_pes)

        best = min(candidates, key=lambda pe: (route_cost(pe), pe.index))
        slot = levels[nid]
        placement[nid] = (best.index, slot)
        capacity[best.index] += 1
        budget_used[ptype] += 1
        hops = route_cost(best)
        routing_hops += hops
        depth = max(depth, slot + 1 + (hops + 1) // 2)
    config_words = len(placement) + routing_hops
    return CgraMapping(
        ii=ii,
        depth_cycles=max(depth, 1),
        placement=placement,
        routing_hops=routing_hops,
        config_words=max(config_words, 1),
    )

"""CGRA compute backend: II-pipelined spatial execution @ 1 GHz.

A mapped partition initiates one iteration every II cycles in steady
state; spatially-mapped producer/consumer PEs exchange operands with
implicit access-ids (paper §IV-B), so per-op instruction overhead
disappears — that is the compute-specialization win quantified as the
1.23x (energy) / 1.43x (speedup) Dist-DA-F vs Dist-DA-IO gap.
"""

from __future__ import annotations

import math
from typing import Optional

from ...energy import EnergyLedger
from ...interface.config import PartitionConfig
from ...params import CgraParams
from ..base import IterationTiming, PartitionProfile
from .fabric import CgraFabric
from .mapper import CgraMapping


class CgraBackend:
    """Statically-mapped heterogeneous CGRA fabric backend."""

    def __init__(self, params: CgraParams):
        self.params = params
        self.fabric = CgraFabric(params)
        self.freq_ghz = params.freq_ghz

    def timing(self, profile: PartitionProfile,
               mapping: Optional[CgraMapping] = None) -> IterationTiming:
        if mapping is not None:
            ii = mapping.ii
            depth = mapping.depth_cycles
        else:
            ii = self._resource_ii(profile)
            depth = max(1, round(math.sqrt(max(profile.total_compute, 1))) + 1)
        # buffer interface ports: dual-ported access-unit buffers
        port_ii = math.ceil(
            max(profile.buffer_reads, profile.buffer_writes, 1) / 2
        )
        ii = max(ii, port_ii)
        return IterationTiming(
            latency_cycles=depth + ii - 1,
            ii_cycles=ii,
            freq_ghz=self.freq_ghz,
        )

    def _resource_ii(self, profile: PartitionProfile) -> int:
        p = self.params
        ii = 1
        int_ops = profile.compute_ops.get("int", 0) + profile.addr_ops
        pairs = (
            (int_ops, p.int_alus),
            (profile.compute_ops.get("float", 0), p.float_alus),
            (profile.compute_ops.get("complex", 0), p.complex_alus),
        )
        for need, have in pairs:
            if need:
                ii = max(ii, math.ceil(need / max(have, 1)))
        return ii

    def charge_iteration(self, profile: PartitionProfile,
                         energy: EnergyLedger, count: float = 1.0) -> None:
        ops = profile.total_compute + profile.addr_ops
        energy.charge("accel", "cgra_op", ops * count)
        # PE-port operand moves for buffer interfaces
        energy.charge(
            "accel", "reg_access",
            (profile.buffer_reads + profile.buffer_writes) * count,
        )

    def setup_cycles(self, config: PartitionConfig) -> int:
        """Static configuration load: one config word per cycle."""
        words = max(
            sum(config.compute_ops.values()) + config.addr_ops, 1
        )
        return words

    def charge_setup(self, config: PartitionConfig,
                     energy: EnergyLedger) -> None:
        energy.charge("accel", "cgra_config_word", self.setup_cycles(config))

"""Statically-mapped heterogeneous CGRA fabric (CGRA-Mapper substitute)."""

from .fabric import CgraFabric, PeType
from .mapper import CgraMapping, map_dfg_partition
from .backend import CgraBackend

__all__ = [
    "CgraFabric", "PeType",
    "CgraMapping", "map_dfg_partition",
    "CgraBackend",
]

"""CGRA fabric geometry: a grid of heterogeneous processing elements.

The paper provisions, per 5x5 tile: fifteen integer ALUs, four floating-
point ALUs and four complex (div/sqrt-class) units, distributed
heterogeneously for area efficiency. PEs are laid out so that float and
complex units interleave through the grid (distance to a specialized unit
stays small from anywhere).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ...errors import MappingError
from ...params import CgraParams


class PeType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    COMPLEX = "complex"

    @staticmethod
    def for_op_class(op_class: str) -> "PeType":
        try:
            return PeType(op_class)
        except ValueError:
            raise MappingError(f"unknown op class {op_class!r}") from None


@dataclass(frozen=True)
class Pe:
    index: int
    row: int
    col: int
    pe_type: PeType


class CgraFabric:
    """A rows x cols grid of typed PEs."""

    def __init__(self, params: CgraParams):
        total_alus = params.int_alus + params.float_alus + params.complex_alus
        if total_alus > params.num_pes:
            raise MappingError(
                f"ALU budget {total_alus} exceeds {params.num_pes} PEs"
            )
        self.params = params
        self.pes: List[Pe] = []
        types = self._interleaved_types(params)
        for idx in range(params.num_pes):
            row, col = divmod(idx, params.cols)
            self.pes.append(Pe(idx, row, col, types[idx]))

    @staticmethod
    def _interleaved_types(params: CgraParams) -> List[PeType]:
        """Spread specialized units evenly through the grid."""
        n = params.num_pes
        types = [PeType.INT] * n
        specials: List[PeType] = (
            [PeType.FLOAT] * params.float_alus
            + [PeType.COMPLEX] * params.complex_alus
        )
        if specials:
            stride = max(1, n // len(specials))
            pos = stride // 2
            for ptype in specials:
                while types[pos % n] is not PeType.INT:
                    pos += 1
                types[pos % n] = ptype
                pos += stride
        # remaining INT slots beyond the int_alu budget stay as routing
        # passthroughs; capacity accounting uses counts, not slots
        return types

    def count(self, pe_type: PeType) -> int:
        budget = {
            PeType.INT: self.params.int_alus,
            PeType.FLOAT: self.params.float_alus,
            PeType.COMPLEX: self.params.complex_alus,
        }
        return budget[pe_type]

    def pes_of(self, pe_type: PeType) -> List[Pe]:
        return [pe for pe in self.pes if pe.pe_type is pe_type]

    def distance(self, a: int, b: int) -> int:
        pa, pb = self.pes[a], self.pes[b]
        return abs(pa.row - pb.row) + abs(pa.col - pb.col)

    @property
    def size(self) -> Tuple[int, int]:
        return (self.params.rows, self.params.cols)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        r, c = self.size
        return f"<CgraFabric {r}x{c} @ {self.params.freq_ghz} GHz>"

"""Lightweight in-order accelerator core backend.

Models the gem5 simple-CPU-style single-issue core the paper uses for
Mono-DA-IO and Dist-DA-IO: one instruction per cycle (``issue_width``
configurable for the Dist-DA-IO+SW study), no speculation, blocking
buffer accesses. Memory stall time is added by the runtime; this backend
times issue only.
"""

from __future__ import annotations

from ..energy import EnergyLedger
from ..interface.config import PartitionConfig
from ..params import InOrderParams
from .base import IterationTiming, PartitionProfile


class InOrderBackend:
    """1-issue (default) in-order core @ 2 GHz."""

    def __init__(self, params: InOrderParams):
        self.params = params
        self.freq_ghz = params.freq_ghz

    def timing(self, profile: PartitionProfile) -> IterationTiming:
        insts = profile.total_insts
        # complex ops occupy the single pipe for several cycles
        extra = 3 * profile.compute_ops.get("complex", 0)
        cycles = (insts + extra) / self.params.issue_width
        cycles = max(cycles, 1.0)
        return IterationTiming(
            latency_cycles=cycles, ii_cycles=cycles, freq_ghz=self.freq_ghz
        )

    def charge_iteration(self, profile: PartitionProfile,
                         energy: EnergyLedger, count: float = 1.0) -> None:
        insts = profile.total_insts
        energy.charge("accel", "io_inst_overhead", insts * count)
        energy.charge(
            "accel", "int_op",
            (profile.compute_ops.get("int", 0) + profile.addr_ops) * count,
        )
        energy.charge("accel", "float_op",
                      profile.compute_ops.get("float", 0) * count)
        energy.charge("accel", "complex_op",
                      profile.compute_ops.get("complex", 0) * count)

    def setup_cycles(self, config: PartitionConfig) -> int:
        """Loading the microcode image over MMIO: one word per cycle."""
        return max(1, len(config.microcode) // 8)

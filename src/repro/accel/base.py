"""Common accelerator-backend abstractions.

A backend answers one question for the runtime: *how long does one
iteration of this partition take, and at what energy?* Memory stalls are
the runtime's business (they come from buffers and the hierarchy); the
backend models compute issue only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol

from ..energy import EnergyLedger
from ..interface.config import PartitionConfig


@dataclass(frozen=True)
class PartitionProfile:
    """Per-iteration workload of one partition, substrate-independent."""

    compute_ops: Dict[str, int]          # op_class -> count
    addr_ops: int = 0
    buffer_reads: int = 0                # stream/channel consumes
    buffer_writes: int = 0               # stream/channel produces
    indirect_accesses: int = 0           # cp_read/cp_write round trips

    @property
    def total_compute(self) -> int:
        return sum(self.compute_ops.values())

    @property
    def total_insts(self) -> int:
        """Issue slots per iteration (for 1-issue cores).

        Access-unit buffers are register-mapped: a consume/produce is an
        operand fetch of the instruction using it, not an instruction of
        its own (hence the paper's lean Table VI static counts, e.g. 11
        for cholesky). Indirect cp_read/cp_write remain real MMIO
        instructions, and the orchestrator's loop control costs one slot.
        """
        return (
            self.total_compute + self.addr_ops
            + self.indirect_accesses + 1  # loop control
        )

    @staticmethod
    def from_config(config: PartitionConfig) -> "PartitionProfile":
        # channel accesses are counted through consumes/produces, not here,
        # so an access never contributes twice
        reads = sum(
            1 for a in config.accesses if not a.is_write
            and a.kind.value not in ("indirect", "channel")
        )
        writes = sum(
            1 for a in config.accesses if a.is_write
            and a.kind.value not in ("indirect", "channel")
        )
        indirect = sum(
            1 for a in config.accesses if a.kind.value == "indirect"
        )
        return PartitionProfile(
            compute_ops=dict(config.compute_ops),
            addr_ops=config.addr_ops,
            buffer_reads=reads + len(config.consumes),
            buffer_writes=writes + len(config.produces),
            indirect_accesses=indirect,
        )


@dataclass(frozen=True)
class IterationTiming:
    """Steady-state timing of one partition iteration."""

    #: cycles from first input to last output of one iteration
    latency_cycles: float
    #: initiation interval: cycles between successive iteration starts
    ii_cycles: float
    freq_ghz: float

    @property
    def ii_ps(self) -> int:
        from ..events import cycles_to_ps

        return cycles_to_ps(self.ii_cycles, self.freq_ghz)

    @property
    def latency_ps(self) -> int:
        from ..events import cycles_to_ps

        return cycles_to_ps(self.latency_cycles, self.freq_ghz)


class ComputeBackend(Protocol):
    """What the runtime needs from a substrate."""

    freq_ghz: float

    def timing(self, profile: PartitionProfile) -> IterationTiming:
        """Steady-state iteration timing for a partition."""
        ...

    def charge_iteration(self, profile: PartitionProfile,
                         energy: EnergyLedger, count: float = 1.0) -> None:
        """Charge the dynamic energy of ``count`` iterations."""
        ...

    def setup_cycles(self, config: PartitionConfig) -> int:
        """One-time configuration cost (microcode / bitstream load)."""
        ...

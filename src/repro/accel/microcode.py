"""64-bit microcode for in-order accelerator cores.

The compiler emits "custom 64-bit microcodes" (paper §VI) for the gem5
simple-CPU-style in-order cores. Encoding, little-endian:

======  =====  =========================================
bytes   field  meaning
======  =====  =========================================
0       op     opcode
1       dst    destination register (0-255)
2       src1   first source register
3       src2   second source register
4-7     imm    32-bit immediate (access-id, offset, ...)
======  =====  =========================================

Table VI's ``insts(B)`` column is exactly ``8 * #insts``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import InterfaceError

INST_BYTES = 8
_FORMAT = "<BBBBi"


class Opcode(enum.Enum):
    NOP = 0x00
    # integer ALU
    IADD = 0x01
    ISUB = 0x02
    IMUL = 0x03
    IDIV = 0x04
    IMIN = 0x05
    IMAX = 0x06
    ICMP = 0x07
    IAND = 0x08
    IOR = 0x09
    IXOR = 0x0A
    ISHL = 0x0B
    ISHR = 0x0C
    # floating point
    FADD = 0x10
    FSUB = 0x11
    FMUL = 0x12
    FDIV = 0x13
    FMIN = 0x14
    FMAX = 0x15
    FCMP = 0x16
    FSQRT = 0x17
    FEXP = 0x18
    FLOG = 0x19
    FNEG = 0x1A
    FABS = 0x1B
    SELECT = 0x1C
    MOV = 0x1D
    # interface ops (imm carries the access-id / obj-id)
    CONSUME = 0x20   # dst <- cp_consume(imm)
    PRODUCE = 0x21   # cp_produce(imm, src1)
    STEP = 0x22      # cp_step(imm, src2-or-1)
    CP_READ = 0x23   # dst <- cp_read(imm, src1)
    CP_WRITE = 0x24  # cp_write(imm, src1, src2)
    LOAD_RF = 0x25
    SET_RF = 0x26
    # orchestrator control
    LOOP_BEGIN = 0x30
    LOOP_END = 0x31
    HALT = 0x3F


#: opcode -> functional-unit class for energy accounting
OP_CLASS = {
    **{op: "int" for op in (
        Opcode.IADD, Opcode.ISUB, Opcode.IMUL, Opcode.IMIN, Opcode.IMAX,
        Opcode.ICMP, Opcode.IAND, Opcode.IOR, Opcode.IXOR, Opcode.ISHL,
        Opcode.ISHR, Opcode.SELECT, Opcode.MOV, Opcode.NOP,
        Opcode.LOOP_BEGIN, Opcode.LOOP_END, Opcode.HALT,
    )},
    **{op: "float" for op in (
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMIN, Opcode.FMAX,
        Opcode.FCMP, Opcode.FNEG, Opcode.FABS,
    )},
    **{op: "complex" for op in (
        Opcode.IDIV, Opcode.FDIV, Opcode.FSQRT, Opcode.FEXP, Opcode.FLOG,
    )},
    **{op: "iface" for op in (
        Opcode.CONSUME, Opcode.PRODUCE, Opcode.STEP, Opcode.CP_READ,
        Opcode.CP_WRITE, Opcode.LOAD_RF, Opcode.SET_RF,
    )},
}


@dataclass(frozen=True)
class MicroInst:
    op: Opcode
    dst: int = 0
    src1: int = 0
    src2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("dst", "src1", "src2"):
            value = getattr(self, name)
            if not (0 <= value <= 255):
                raise InterfaceError(
                    f"{name}={value} out of register range 0..255"
                )
        if not (-(2**31) <= self.imm < 2**31):
            raise InterfaceError(f"imm={self.imm} out of 32-bit range")

    def encode(self) -> bytes:
        return struct.pack(
            _FORMAT, self.op.value, self.dst, self.src1, self.src2, self.imm
        )

    @property
    def op_class(self) -> str:
        return OP_CLASS[self.op]


def assemble(insts: Sequence[MicroInst]) -> bytes:
    """Encode an instruction sequence to a microcode image."""
    return b"".join(inst.encode() for inst in insts)


def disassemble(image: bytes) -> List[MicroInst]:
    """Decode a microcode image; strict round-trip with :func:`assemble`."""
    if len(image) % INST_BYTES != 0:
        raise InterfaceError(
            f"microcode image length {len(image)} not a multiple of 8"
        )
    out: List[MicroInst] = []
    for pos in range(0, len(image), INST_BYTES):
        op_val, dst, src1, src2, imm = struct.unpack(
            _FORMAT, image[pos:pos + INST_BYTES]
        )
        try:
            op = Opcode(op_val)
        except ValueError:
            raise InterfaceError(f"bad opcode {op_val:#x} at {pos}") from None
        out.append(MicroInst(op, dst, src1, src2, imm))
    return out


#: IR operation -> (int opcode, float opcode) for codegen
_BINOP_TABLE = {
    "+": (Opcode.IADD, Opcode.FADD),
    "-": (Opcode.ISUB, Opcode.FSUB),
    "*": (Opcode.IMUL, Opcode.FMUL),
    "/": (Opcode.IDIV, Opcode.FDIV),
    "%": (Opcode.IDIV, Opcode.FDIV),
    "min": (Opcode.IMIN, Opcode.FMIN),
    "max": (Opcode.IMAX, Opcode.FMAX),
    "&": (Opcode.IAND, Opcode.IAND),
    "|": (Opcode.IOR, Opcode.IOR),
    "^": (Opcode.IXOR, Opcode.IXOR),
    "<<": (Opcode.ISHL, Opcode.ISHL),
    ">>": (Opcode.ISHR, Opcode.ISHR),
    "==": (Opcode.ICMP, Opcode.FCMP),
    "!=": (Opcode.ICMP, Opcode.FCMP),
    "<": (Opcode.ICMP, Opcode.FCMP),
    "<=": (Opcode.ICMP, Opcode.FCMP),
    ">": (Opcode.ICMP, Opcode.FCMP),
    ">=": (Opcode.ICMP, Opcode.FCMP),
}
_UNOP_TABLE = {
    "-": Opcode.FNEG,
    "abs": Opcode.FABS,
    "sqrt": Opcode.FSQRT,
    "exp": Opcode.FEXP,
    "log": Opcode.FLOG,
    "floor": Opcode.MOV,
    "not": Opcode.ICMP,
}


def opcode_for(op: str, op_class: str) -> Opcode:
    """Pick the opcode for a DFG compute node."""
    if op == "select":
        return Opcode.SELECT
    if op == "mov":
        return Opcode.MOV
    if op in _BINOP_TABLE:
        int_op, float_op = _BINOP_TABLE[op]
        return int_op if op_class == "int" else float_op
    if op in _UNOP_TABLE:
        return _UNOP_TABLE[op]
    raise InterfaceError(f"no opcode for DFG op {op!r}")

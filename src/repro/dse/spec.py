"""Sweep specifications: declarative descriptions of a design space.

A spec is a plain dict (or JSON file) with the shape::

    {
      "name": "clocking",
      "scale": "small",
      "base": "experiment",              # repro.params.BASE_MACHINES name
      "workloads": ["fdt", "sei"],
      "configs": ["dist_da_io"],
      "machine_axes": {                  # dotted MachineParams paths or
        "accel_freq_ghz": [1.0, 2.0, 3.0]    # OVERRIDE_ALIASES keys
      },
      "workload_axes": {                 # Workload.build(**kwargs) axes
        "n": [48, 88]
      }
    }

Expansion is the full cartesian product
``workloads x workload_axes x machine_axes x configs``, emitted in that
deterministic nesting order so consecutive points share a functional
trace (same workload + dataset). Each point carries a content hash over
everything that determines its result — workload, dataset kwargs,
configuration, scale, and a digest of every derived machine parameter —
plus a store schema version, so a result store row is invalidated
exactly when something that could change the numbers does.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ConfigError
from ..params import (
    MachineParams,
    base_machine,
    derive_machine,
    machine_digest,
)
from ..sim.tracecache import functional_key

#: bump when row/metric semantics change: stored rows stop matching
STORE_VERSION = 1

#: directory of sweep specs shipped with the package
SHIPPED_SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")

_SPEC_KEYS = {
    "name", "scale", "base", "workloads", "configs",
    "machine_axes", "workload_axes", "prune",
}

_SCALES = ("tiny", "small", "large")


def _axis_items(axes: Mapping[str, Sequence]) -> List[Tuple[str, Tuple]]:
    """Sorted, tuple-ified axes; rejects empty value lists."""
    items = []
    for key in sorted(axes):
        values = tuple(axes[key])
        if not values:
            raise ConfigError(f"sweep axis {key!r} has no values")
        items.append((key, values))
    return items


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified run of the sweep matrix."""

    workload: str
    config: str
    scale: str
    #: sorted (dotted-path-or-alias, value) machine overrides
    machine_overrides: Tuple[Tuple[str, object], ...] = ()
    #: sorted (kwarg, value) workload dataset parameters
    workload_kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "SweepPoint":
        """Build and validate one point from its wire/storage dict (the
        inverse of :meth:`as_dict`; the serve layer's single-cell query
        body). Unknown keys, unknown workloads/configs/scales fail with
        :class:`~repro.errors.ConfigError`."""
        from ..sim.system import CONFIGS
        from ..workloads import ALL_WORKLOADS

        known = {"workload", "config", "scale", "machine_overrides",
                 "workload_kwargs"}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(
                f"unknown sweep point keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        for required in ("workload", "config"):
            if required not in raw:
                raise ConfigError(f"sweep point lacks {required!r}")
        workload = str(raw["workload"])
        config = str(raw["config"])
        scale = str(raw.get("scale", "small"))
        if workload not in ALL_WORKLOADS:
            raise ConfigError(
                f"unknown workload {workload!r}; "
                f"known: {sorted(ALL_WORKLOADS)}"
            )
        if config not in CONFIGS:
            raise ConfigError(
                f"unknown config {config!r}; known: {sorted(CONFIGS)}"
            )
        if scale not in _SCALES:
            raise ConfigError(f"unknown scale {scale!r}")
        overrides = raw.get("machine_overrides") or {}
        kwargs = raw.get("workload_kwargs") or {}
        for name, value in (("machine_overrides", overrides),
                            ("workload_kwargs", kwargs)):
            if not isinstance(value, Mapping):
                raise ConfigError(f"sweep point {name} must be a mapping, "
                                  f"got {type(value).__name__}")
        return cls(
            workload=workload, config=config, scale=scale,
            machine_overrides=tuple(sorted(overrides.items())),
            workload_kwargs=tuple(sorted(kwargs.items())),
        )

    def machine(self, base: MachineParams) -> MachineParams:
        return derive_machine(base, dict(self.machine_overrides))

    def trace_key(self) -> Tuple[str, str]:
        """Functional cache key: dataset identity, no machine params."""
        return functional_key(self.workload, self.scale,
                              dict(self.workload_kwargs))

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config,
            "scale": self.scale,
            "machine_overrides": {k: v for k, v in self.machine_overrides},
            "workload_kwargs": {k: v for k, v in self.workload_kwargs},
        }

    def content_hash(self, base: MachineParams) -> str:
        """Content hash of (spec point, code-relevant params).

        Machine axes enter through the digest of the fully *derived*
        machine, so two spec spellings of the same machine share a hash
        and a change to the base machine invalidates every row.
        """
        blob = json.dumps({
            "point": self.as_dict(),
            "machine": machine_digest(self.machine(base)),
            "store_version": STORE_VERSION,
        }, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class SweepSpec:
    """A validated, expandable sweep description."""

    name: str
    workloads: Tuple[str, ...]
    configs: Tuple[str, ...]
    scale: str = "small"
    base: str = "experiment"
    machine_axes: Dict[str, Tuple] = field(default_factory=dict)
    workload_axes: Dict[str, Tuple] = field(default_factory=dict)
    #: when true, the scheduler may statically skip design points whose
    #: AN-C cost bounds are dominated by already-stored results (see
    #: repro.dse.prune). Skipped points become explicit "pruned" rows —
    #: nothing is dropped silently. Off by default.
    prune: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "SweepSpec":
        unknown = set(raw) - _SPEC_KEYS
        if unknown:
            raise ConfigError(
                f"unknown sweep spec keys {sorted(unknown)}; "
                f"known: {sorted(_SPEC_KEYS)}"
            )
        for required in ("name", "workloads", "configs"):
            if required not in raw:
                raise ConfigError(f"sweep spec lacks {required!r}")
        spec = cls(
            name=str(raw["name"]),
            workloads=tuple(raw["workloads"]),
            configs=tuple(raw["configs"]),
            scale=str(raw.get("scale", "small")),
            base=str(raw.get("base", "experiment")),
            machine_axes=dict(_axis_items(raw.get("machine_axes", {}))),
            workload_axes=dict(_axis_items(raw.get("workload_axes", {}))),
            prune=bool(raw.get("prune", False)),
        )
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path) as f:
            try:
                raw = json.load(f)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"sweep spec {path}: {exc}") from None
        return cls.from_dict(raw)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Fail fast on anything expansion or simulation would reject."""
        from ..sim.system import CONFIGS
        from ..workloads import ALL_WORKLOADS

        if not self.workloads:
            raise ConfigError(f"sweep {self.name!r}: no workloads")
        if not self.configs:
            raise ConfigError(f"sweep {self.name!r}: no configs")
        if self.scale not in _SCALES:
            raise ConfigError(
                f"sweep {self.name!r}: unknown scale {self.scale!r}"
            )
        for w in self.workloads:
            if w not in ALL_WORKLOADS:
                raise ConfigError(
                    f"sweep {self.name!r}: unknown workload {w!r}; "
                    f"known: {sorted(ALL_WORKLOADS)}"
                )
        for c in self.configs:
            if c not in CONFIGS:
                raise ConfigError(
                    f"sweep {self.name!r}: unknown config {c!r}; "
                    f"known: {sorted(CONFIGS)}"
                )
        # every machine-axis combination must derive a valid machine
        base = self.base_machine()
        for overrides in self._machine_combos():
            derive_machine(base, dict(overrides))

    def base_machine(self) -> MachineParams:
        return base_machine(self.base)

    # ------------------------------------------------------------------
    def _machine_combos(self) -> List[Tuple[Tuple[str, object], ...]]:
        items = _axis_items(self.machine_axes)
        keys = [k for k, _ in items]
        combos = itertools.product(*(vals for _, vals in items))
        return [tuple(zip(keys, combo)) for combo in combos]

    def _workload_combos(self) -> List[Tuple[Tuple[str, object], ...]]:
        items = _axis_items(self.workload_axes)
        keys = [k for k, _ in items]
        combos = itertools.product(*(vals for _, vals in items))
        return [tuple(zip(keys, combo)) for combo in combos]

    def points(self) -> List[SweepPoint]:
        """The expanded run matrix, in trace-sharing-friendly order:
        all machine/config points of one dataset are consecutive."""
        out = []
        for workload in self.workloads:
            for wkw in self._workload_combos():
                for mo in self._machine_combos():
                    for config in self.configs:
                        out.append(SweepPoint(
                            workload=workload, config=config,
                            scale=self.scale, machine_overrides=mo,
                            workload_kwargs=wkw,
                        ))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scale": self.scale,
            "base": self.base,
            "workloads": list(self.workloads),
            "configs": list(self.configs),
            "machine_axes": {k: list(v)
                             for k, v in sorted(self.machine_axes.items())},
            "workload_axes": {k: list(v)
                              for k, v in sorted(self.workload_axes.items())},
            "prune": self.prune,
        }


def shipped_specs() -> Dict[str, str]:
    """Name -> path of every spec JSON shipped under ``dse/specs/``."""
    out = {}
    if os.path.isdir(SHIPPED_SPEC_DIR):
        for entry in sorted(os.listdir(SHIPPED_SPEC_DIR)):
            if entry.endswith(".json"):
                out[entry[:-5]] = os.path.join(SHIPPED_SPEC_DIR, entry)
    return out


def load_spec(name_or_path: str) -> SweepSpec:
    """Resolve a shipped spec name (``wss``, ``clocking``, ``smoke``) or
    a filesystem path to a validated :class:`SweepSpec`."""
    shipped = shipped_specs()
    if name_or_path in shipped:
        return SweepSpec.from_file(shipped[name_or_path])
    if os.path.exists(name_or_path):
        return SweepSpec.from_file(name_or_path)
    raise ConfigError(
        f"no sweep spec named {name_or_path!r} (shipped: "
        f"{sorted(shipped)}) and no such file"
    )


__all__ = [
    "SHIPPED_SPEC_DIR", "STORE_VERSION", "SweepPoint", "SweepSpec",
    "load_spec", "shipped_specs",
]

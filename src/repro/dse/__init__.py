"""Design-space exploration (DSE): declarative machine/workload sweeps.

The paper's §VI-E studies each hand-roll a loop over one parameter
(fdtd-2d's grid size, the accelerator clock). This package generalizes
them: a :class:`~repro.dse.spec.SweepSpec` — a small dict or JSON file —
declares axes over *machine* parameters (any dotted
:class:`~repro.params.MachineParams` path, plus aliases like
``accel_freq_ghz``), over workload dataset kwargs, over workloads and
over offload configurations. The spec expands into a run matrix; the
scheduler shards points across worker processes, reuses the functional
trace cache so a dataset is interpreted once and replayed across every
machine point, and streams completed points into a crash-safe JSON-lines
store keyed by content hash, so a killed sweep resumes with ``--resume``
by skipping already-stored points. Reporting computes per-axis
sensitivity tables and the energy/time Pareto frontier.

Entry points::

    python -m repro.dse --spec wss --report          # shipped spec
    python -m repro.dse --spec my_sweep.json --jobs 8 --resume

    from repro.dse import load_spec, run_sweep, format_report
    result = run_sweep(load_spec("clocking"), jobs=4)
"""

from .report import format_report, pareto_frontier, sensitivity_tables
from .scheduler import SweepResult, run_sweep
from .spec import (
    SHIPPED_SPEC_DIR,
    SweepPoint,
    SweepSpec,
    load_spec,
    shipped_specs,
)
from .store import ResultStore, row_text

__all__ = [
    "SHIPPED_SPEC_DIR", "SweepPoint", "SweepSpec", "SweepResult",
    "ResultStore", "format_report", "load_spec", "pareto_frontier",
    "row_text", "run_sweep", "sensitivity_tables", "shipped_specs",
]

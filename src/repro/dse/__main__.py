"""Design-space sweep CLI.

Usage::

    python -m repro.dse --spec wss --report            # shipped spec
    python -m repro.dse --spec sweep.json --jobs 8
    python -m repro.dse --spec clocking --resume       # continue a
                                                       # killed sweep
    python -m repro.dse --list-specs
    python -m repro.dse --spec smoke --dry-run         # expansion only

Every completed point is appended to a crash-safe JSON-lines store
(default ``dse-<name>.jsonl``; ``--store`` overrides). ``--resume``
skips points already stored ``ok`` and retries ``failed`` ones, so a
killed sweep continues where it stopped and a finished sweep becomes a
no-op whose ``--report`` is pure post-processing. Exit status is 1 when
any point ends ``failed`` or any measured metric escapes its AN-C
static bound, 2 for bad specs/arguments.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..errors import ConfigError
from ..obs import OBS
from .report import bound_escapes, format_report
from .scheduler import run_sweep
from .spec import load_spec, shipped_specs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Declarative design-space sweeps over machine "
                    "parameters, workloads and offload configurations.",
    )
    parser.add_argument("--spec", default=None,
                        help="sweep spec: a shipped name "
                             f"({', '.join(sorted(shipped_specs()))}) "
                             "or a JSON file path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--store", default=None,
                        help="result store path "
                             "(default: dse-<name>.jsonl)")
    parser.add_argument("--resume", action="store_true",
                        help="skip points already stored ok; retry "
                             "failed ones")
    parser.add_argument("--report", action="store_true",
                        help="print sensitivity tables and the "
                             "energy/time Pareto frontier")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    parser.add_argument("--stats", action="store_true",
                        help="append the run-observability report")
    parser.add_argument("--dry-run", action="store_true",
                        help="expand and print the point matrix, run "
                             "nothing")
    parser.add_argument("--list-specs", action="store_true",
                        help="list shipped sweep specs and exit")
    args = parser.parse_args(argv)

    if args.list_specs:
        for name, path in sorted(shipped_specs().items()):
            print(f"{name:12} {path}")
        return 0
    if not args.spec:
        parser.error("--spec is required (or use --list-specs)")

    try:
        spec = load_spec(args.spec)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    points = spec.points()
    if args.dry_run:
        print(f"sweep {spec.name!r}: {len(points)} points "
              f"({len(spec.workloads)} workloads x "
              f"{len(spec.configs)} configs, scale={spec.scale}, "
              f"base={spec.base})")
        for point in points:
            print(f"  {point.workload:>5} x {point.config:<12} "
                  f"machine={dict(point.machine_overrides)} "
                  f"dataset={dict(point.workload_kwargs)}")
        return 0

    store_path = args.store or f"dse-{spec.name}.jsonl"
    start = time.time()

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    result = run_sweep(
        spec, jobs=args.jobs, store_path=store_path,
        resume=args.resume, progress=progress,
    )
    failed = result.failed_rows()
    print(f"sweep {spec.name!r}: {len(result.rows)} points in "
          f"{time.time() - start:.1f}s "
          f"({len(result.ok_rows())} ok, {len(failed)} failed, "
          f"{len(result.pruned_rows())} pruned, "
          f"{result.skipped} resumed) -> {store_path}")
    if args.report:
        report = format_report(result)
        print(report)
        if args.out:
            with open(args.out, "w") as f:
                f.write(report)
            print(f"report written to {args.out}")
    if args.stats:
        print(OBS.report())
    escapes = bound_escapes(result)
    for e in escapes:
        print(f"error: AN-C bound escape: {e['point']['workload']} x "
              f"{e['point']['config']} {e['metric']} measured "
              f"{e['measured']:g} outside [{e['lo']:g}, {e['hi']:g}]",
              file=sys.stderr)
    return 1 if (failed or escapes) else 0


if __name__ == "__main__":
    sys.exit(main())
